//! A boundary-tag heap allocator in the dlmalloc-2003 style — deliberately
//! *without* integrity checks.
//!
//! All metadata (chunk headers, free-list links) lives **inside simulated
//! memory**, directly adjacent to user payloads. Overflowing an allocation
//! therefore corrupts the next chunk's header and free-list pointers, and
//! `free()`'s classic `unlink` macro then performs an attacker-controlled
//! 8-byte write — the exact heap-smashing attack of the paper's §3.4 demo
//! (and of Fetzer & Xiao's SRDS'01 paper the demo references). The
//! HEALERS *security wrapper* (crate `guardian` + `wrappergen`) detects
//! the corruption before `unlink` runs.
//!
//! ## Chunk layout
//!
//! ```text
//!  chunk base C ->  +------------------+
//!                   | prev_size  (u64) |   size of previous chunk, only
//!                   +------------------+   valid if PREV_INUSE clear
//!                   | size | flags     |   total chunk size (mult. of 16)
//!  payload P   ->   +------------------+   bit0 = PREV_INUSE
//!                   | fd (when free)   |
//!                   | bk (when free)   |
//!                   | ... payload ...  |
//!  next chunk  ->   +------------------+
//! ```

use simproc::layout::{HEAP_BASE, HEAP_MAX};
use simproc::{errno, Access, CVal, Fault, Proc, VirtAddr};

use crate::state::{FREELIST_HEAD, HEAP_TOP};

/// Chunk header size (prev_size + size words).
pub const HDR: u64 = 16;
/// Minimum chunk size (header + room for fd/bk when freed).
pub const MIN_CHUNK: u64 = 32;
/// `PREV_INUSE` flag bit in the size word.
pub const PREV_INUSE: u64 = 1;
/// Heap growth increment when the wilderness runs dry.
const GROW_STEP: u64 = 0x1_0000;
/// Host-safety backstop: maximum free-list nodes visited per operation.
/// A corrupted circular list otherwise loops forever on an unmetered
/// process; real code would spin — we classify it as a hang.
const SCAN_CAP: u32 = 100_000;

fn align16(n: u64) -> u64 {
    n.saturating_add(15) & !15
}

/// Rounds a request up to its chunk size (saturating: absurd requests
/// saturate and are rejected by `malloc`'s arena-size guard).
pub fn chunk_size_for(request: u64) -> u64 {
    align16(request.saturating_add(HDR)).max(MIN_CHUNK)
}

/// Initialises the heap: the whole initial mapping becomes the top
/// (wilderness) chunk and the free list is empty (head self-linked).
pub fn init_heap(p: &mut Proc) -> Result<(), Fault> {
    let heap_end = heap_end(p);
    p.mem.write_u64(HEAP_TOP, HEAP_BASE.get())?;
    // Top chunk header: size = whole arena, previous (nonexistent) in use.
    p.mem.write_u64(HEAP_BASE, 0)?;
    p.mem.write_u64(HEAP_BASE.add(8), heap_end.diff(HEAP_BASE) | PREV_INUSE)?;
    // Empty circular free list.
    p.mem.write_u64(FREELIST_HEAD, FREELIST_HEAD.get())?;
    p.mem.write_u64(FREELIST_HEAD.add(8), FREELIST_HEAD.get())?;
    Ok(())
}

fn heap_end(p: &Proc) -> VirtAddr {
    p.mem.region_at(HEAP_BASE).map(|r| r.end()).unwrap_or(HEAP_BASE)
}

fn read_size(p: &mut Proc, chunk: VirtAddr) -> Result<(u64, u64), Fault> {
    let word = p.read_u64(chunk.add(8))?;
    Ok((word & !15, word & 15))
}

fn write_size(p: &mut Proc, chunk: VirtAddr, size: u64, flags: u64) -> Result<(), Fault> {
    p.write_u64(chunk.add(8), size | flags)
}

fn set_prev_inuse(p: &mut Proc, chunk: VirtAddr, inuse: bool) -> Result<(), Fault> {
    let word = p.read_u64(chunk.add(8))?;
    let new = if inuse { word | PREV_INUSE } else { word & !PREV_INUSE };
    p.write_u64(chunk.add(8), new)
}

/// The classic unchecked unlink: `FD->bk = BK; BK->fd = FD;`.
///
/// With corrupted `fd`/`bk` this is an arbitrary 8-byte write — kept
/// faithful on purpose.
fn unlink(p: &mut Proc, payload: VirtAddr) -> Result<(), Fault> {
    let fd = p.read_ptr(payload)?;
    let bk = p.read_ptr(payload.add(8))?;
    p.write_ptr(fd.add(8), bk)?;
    p.write_ptr(bk, fd)?;
    Ok(())
}

/// Inserts a free chunk's payload at the list head.
fn insert(p: &mut Proc, payload: VirtAddr) -> Result<(), Fault> {
    let first = p.read_ptr(FREELIST_HEAD)?;
    p.write_ptr(payload, first)?;
    p.write_ptr(payload.add(8), FREELIST_HEAD)?;
    p.write_ptr(first.add(8), payload)?;
    p.write_ptr(FREELIST_HEAD, payload)?;
    Ok(())
}

/// `malloc(n)`: first-fit over the free list, falling back to the
/// wilderness, growing the arena up to [`HEAP_MAX`].
///
/// Returns the payload pointer, or `NULL` with `errno = ENOMEM`.
///
/// # Errors
///
/// Propagates memory faults — a corrupted free list can fault or hang.
pub fn malloc(p: &mut Proc, n: u64) -> Result<VirtAddr, Fault> {
    if n >= HEAP_MAX {
        p.set_errno(errno::ENOMEM);
        return Ok(VirtAddr::NULL);
    }
    let need = chunk_size_for(n);

    // First fit through the free list.
    let mut cur = p.read_ptr(FREELIST_HEAD)?;
    let mut visited = 0u32;
    while cur != FREELIST_HEAD {
        visited += 1;
        if visited > SCAN_CAP {
            return Err(Fault::Hang);
        }
        let chunk = cur.sub(HDR);
        let (size, flags) = read_size(p, chunk)?;
        if size >= need {
            unlink(p, cur)?;
            if size - need >= MIN_CHUNK {
                // Split: the tail stays free.
                let rem_chunk = chunk.add(need);
                let rem_size = size - need;
                write_size(p, chunk, need, flags)?;
                write_size(p, rem_chunk, rem_size, PREV_INUSE)?;
                // Boundary tag for the chunk after the remainder.
                let after = rem_chunk.add(rem_size);
                if after < heap_end(p) {
                    p.write_u64(after, rem_size)?;
                    set_prev_inuse(p, after, false)?;
                }
                insert(p, rem_chunk.add(HDR))?;
            } else {
                // Hand out the whole chunk.
                let next = chunk.add(size);
                if next < heap_end(p) {
                    set_prev_inuse(p, next, true)?;
                }
            }
            return Ok(chunk.add(HDR));
        }
        cur = p.read_ptr(cur)?;
    }

    // Wilderness allocation.
    loop {
        let top = p.read_ptr(HEAP_TOP)?;
        let end = heap_end(p);
        let (top_size, top_flags) = read_size(p, top)?;
        debug_assert_eq!(top.add(top_size), end, "top chunk spans to arena end");
        if top_size >= need + MIN_CHUNK {
            write_size(p, top, need, top_flags)?;
            let new_top = top.add(need);
            p.write_u64(HEAP_TOP, new_top.get())?;
            p.write_u64(new_top, 0)?;
            write_size(p, new_top, top_size - need, PREV_INUSE)?;
            return Ok(top.add(HDR));
        }
        // Grow the arena.
        let cur_len = end.diff(HEAP_BASE);
        if cur_len >= HEAP_MAX {
            p.set_errno(errno::ENOMEM);
            return Ok(VirtAddr::NULL);
        }
        let step = GROW_STEP.min(HEAP_MAX - cur_len).max(need + MIN_CHUNK - top_size);
        if cur_len + step > HEAP_MAX || p.mem.grow(HEAP_BASE, step).is_err() {
            p.set_errno(errno::ENOMEM);
            return Ok(VirtAddr::NULL);
        }
        write_size(p, top, top_size + step, top_flags)?;
    }
}

/// `free(ptr)`: boundary-tag coalescing with the classic unlink. A null
/// pointer is ignored (per the standard); everything else is trusted —
/// wild pointers fault, corrupted neighbours redirect the unlink write.
///
/// # Errors
///
/// Propagates memory faults.
pub fn free(p: &mut Proc, ptr: VirtAddr) -> Result<(), Fault> {
    if ptr.is_null() {
        return Ok(());
    }
    let mut chunk = ptr.sub(HDR);
    let (mut size, flags) = read_size(p, chunk)?;

    // Backward coalesce.
    if flags & PREV_INUSE == 0 {
        let prev_size = p.read_u64(chunk)?;
        let prev = chunk.sub(prev_size);
        unlink(p, prev.add(HDR))?;
        chunk = prev;
        size += prev_size;
    }

    // Forward coalesce / merge into top.
    let top = p.read_ptr(HEAP_TOP)?;
    let next = chunk.add(size);
    if next == top {
        // Merge into the wilderness. Free chunks never neighbour free
        // chunks, so the chunk before the new top is in use.
        let (top_size, _) = read_size(p, top)?;
        p.write_u64(HEAP_TOP, chunk.get())?;
        write_size(p, chunk, size + top_size, PREV_INUSE)?;
        return Ok(());
    }

    // A chunk is free iff the chunk after it has PREV_INUSE clear. With a
    // corrupted `next` header this read lands wherever the attacker aimed
    // it — faulting or misleading us, exactly like the real macro.
    let next_inuse = {
        let (next_size, _) = read_size(p, next)?;
        let nextnext = next.add(next_size);
        let (_, nnflags) = read_size(p, nextnext)?;
        nnflags & PREV_INUSE != 0
    };
    if !next_inuse {
        // *** The attack surface: next's fd/bk may be attacker data. ***
        let (next_size, _) = read_size(p, next)?;
        unlink(p, next.add(HDR))?;
        size += next_size;
    }

    // Free chunks never neighbour free chunks, so whatever now precedes
    // the merged chunk is in use.
    write_size(p, chunk, size, PREV_INUSE)?;

    // Boundary tag + clear next's PREV_INUSE.
    let after = chunk.add(size);
    if after < heap_end(p) {
        p.write_u64(after, size)?;
        set_prev_inuse(p, after, false)?;
    }
    insert(p, chunk.add(HDR))
}

/// Usable payload bytes of an allocation (reads the chunk header).
pub fn usable_size(p: &mut Proc, ptr: VirtAddr) -> Result<u64, Fault> {
    let (size, _) = read_size(p, ptr.sub(HDR))?;
    Ok(size - HDR)
}

/// `calloc(nmemb, size)` with the overflow check real 2003 libcs lacked
/// — except we *do* check, because `calloc` overflow was fixed even then.
pub fn calloc(p: &mut Proc, nmemb: u64, size: u64) -> Result<VirtAddr, Fault> {
    let total = match nmemb.checked_mul(size) {
        Some(t) => t,
        None => {
            p.set_errno(errno::ENOMEM);
            return Ok(VirtAddr::NULL);
        }
    };
    let ptr = malloc(p, total)?;
    if !ptr.is_null() {
        // Zero in bounded chunks to stay fuel-accountable.
        let zeros = vec![0u8; total as usize];
        p.write_bytes(ptr, &zeros)?;
    }
    Ok(ptr)
}

/// `realloc(ptr, n)`.
pub fn realloc(p: &mut Proc, ptr: VirtAddr, n: u64) -> Result<VirtAddr, Fault> {
    if ptr.is_null() {
        return malloc(p, n);
    }
    if n == 0 {
        free(p, ptr)?;
        return Ok(VirtAddr::NULL);
    }
    let old_usable = usable_size(p, ptr)?;
    if old_usable >= n {
        return Ok(ptr);
    }
    let new_ptr = malloc(p, n)?;
    if new_ptr.is_null() {
        return Ok(VirtAddr::NULL);
    }
    let data = p.read_bytes(ptr, old_usable)?;
    p.write_bytes(new_ptr, &data)?;
    free(p, ptr)?;
    Ok(new_ptr)
}

/// Host-side heap inspection for tests and invariant checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Chunk base address.
    pub base: VirtAddr,
    /// Total chunk size.
    pub size: u64,
    /// Whether the *previous* chunk is in use.
    pub prev_inuse: bool,
    /// Whether this chunk is on the free list.
    pub free: bool,
    /// Whether this is the top (wilderness) chunk.
    pub is_top: bool,
}

/// Walks the heap chunk by chunk (host-side; does not consume fuel).
///
/// # Errors
///
/// Returns a descriptive error string if the chunk chain is corrupt.
pub fn walk(p: &Proc) -> Result<Vec<ChunkInfo>, String> {
    let end = heap_end(p);
    let top =
        p.mem.read_ptr(HEAP_TOP).map_err(|e| format!("top pointer unreadable: {e}"))?;
    let free_set = free_list(p)?;
    let mut out = Vec::new();
    let mut cur = HEAP_BASE;
    let mut guard = 0;
    while cur < end {
        guard += 1;
        if guard > 1_000_000 {
            return Err("heap walk did not terminate".into());
        }
        let word = p
            .mem
            .read_u64(cur.add(8))
            .map_err(|e| format!("header unreadable at {cur}: {e}"))?;
        let size = word & !15;
        if size < MIN_CHUNK || size % 16 != 0 {
            return Err(format!("bad chunk size {size:#x} at {cur}"));
        }
        let payload = cur.add(HDR);
        out.push(ChunkInfo {
            base: cur,
            size,
            prev_inuse: word & PREV_INUSE != 0,
            free: free_set.contains(&payload),
            is_top: cur == top,
        });
        cur = cur.add(size);
    }
    if cur != end {
        return Err(format!("chunks overrun arena end: {cur} != {end}"));
    }
    Ok(out)
}

/// Collects free-list payload addresses (host-side).
///
/// # Errors
///
/// Returns an error string when the list is corrupt (cycles, bad links).
pub fn free_list(p: &Proc) -> Result<Vec<VirtAddr>, String> {
    let mut out = Vec::new();
    let mut cur = p
        .mem
        .read_ptr(FREELIST_HEAD)
        .map_err(|e| format!("free list head unreadable: {e}"))?;
    while cur != FREELIST_HEAD {
        if out.contains(&cur) {
            return Err(format!("free list cycle at {cur}"));
        }
        if out.len() > SCAN_CAP as usize {
            return Err("free list too long".into());
        }
        out.push(cur);
        cur = p
            .mem
            .read_ptr(cur)
            .map_err(|e| format!("free list link unreadable at {cur}: {e}"))?;
    }
    Ok(out)
}

/// Visits every chunk in the arena chain without allocating, calling
/// `f(base, size, prev_inuse, is_top)` per chunk. Validation (and the
/// errors it can produce) mirrors [`walk`] exactly — including the
/// up-front free-list validation — so callers that treat `Err` as
/// "heap too corrupt to vouch for anything" defer in exactly the same
/// cases. Chunk *freeness* is not computed here; use
/// [`free_list_lookup`] for the one chunk of interest.
fn visit_chunks(
    p: &Proc,
    mut f: impl FnMut(VirtAddr, u64, bool, bool),
) -> Result<(), String> {
    let end = heap_end(p);
    let top =
        p.mem.read_ptr(HEAP_TOP).map_err(|e| format!("top pointer unreadable: {e}"))?;
    free_list_lookup(p, None)?;
    let mut cur = HEAP_BASE;
    let mut guard = 0;
    while cur < end {
        guard += 1;
        if guard > 1_000_000 {
            return Err("heap walk did not terminate".into());
        }
        let word = p
            .mem
            .read_u64(cur.add(8))
            .map_err(|e| format!("header unreadable at {cur}: {e}"))?;
        let size = word & !15;
        if size < MIN_CHUNK || size % 16 != 0 {
            return Err(format!("bad chunk size {size:#x} at {cur}"));
        }
        f(cur, size, word & PREV_INUSE != 0, cur == top);
        cur = cur.add(size);
    }
    if cur != end {
        return Err(format!("chunks overrun arena end: {cur} != {end}"));
    }
    Ok(())
}

/// Alloc-free free-list scan: validates the list under [`free_list`]'s
/// caps (a cycle shows up as an over-cap list) and reports whether
/// `payload` is on it. `Ok`/`Err` outcomes match `free_list` for every
/// list; only the cycle error *message* differs.
fn free_list_lookup(p: &Proc, payload: Option<VirtAddr>) -> Result<bool, String> {
    let mut found = false;
    let mut seen = 0u64;
    let mut cur = p
        .mem
        .read_ptr(FREELIST_HEAD)
        .map_err(|e| format!("free list head unreadable: {e}"))?;
    while cur != FREELIST_HEAD {
        if seen > SCAN_CAP as u64 {
            return Err("free list too long".into());
        }
        seen += 1;
        if payload == Some(cur) {
            found = true;
        }
        cur = p
            .mem
            .read_ptr(cur)
            .map_err(|e| format!("free list link unreadable at {cur}: {e}"))?;
    }
    Ok(found)
}

/// Alloc-free liveness check: is `ptr` the payload address of a live
/// (allocated, non-top) chunk of a fully valid heap? Exactly equivalent
/// to walking the heap with [`walk`] and testing
/// `payload == ptr && !free && !is_top`, but without building the chunk
/// or free-list vectors.
pub fn live_payload(p: &Proc, ptr: VirtAddr) -> bool {
    let mut hit: Option<bool> = None; // is_top of the chunk whose payload == ptr
    if visit_chunks(p, |base, _size, _prev_inuse, is_top| {
        if base.add(HDR) == ptr {
            hit = Some(is_top);
        }
    })
    .is_err()
    {
        return false; // heap too corrupt to vouch for
    }
    match hit {
        Some(false) => !free_list_lookup(p, Some(ptr)).unwrap_or(true),
        _ => false,
    }
}

/// Checks all allocator invariants; returns a description of the first
/// violation.
///
/// # Errors
///
/// See above.
pub fn check_invariants(p: &Proc) -> Result<(), String> {
    let chunks = walk(p)?;
    let Some(last) = chunks.last() else {
        return Err("empty heap".into());
    };
    if !last.is_top {
        return Err("last chunk is not top".into());
    }
    // No two adjacent free chunks; prev_inuse bits consistent.
    for w in chunks.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        if a.free && b.free {
            return Err(format!("adjacent free chunks at {} and {}", a.base, b.base));
        }
        if a.free == b.prev_inuse && !b.is_top {
            return Err(format!(
                "prev_inuse of {} ({}) inconsistent with freeness of {} ({})",
                b.base, b.prev_inuse, a.base, a.free
            ));
        }
        if a.free {
            // Boundary tag: next.prev_size == a.size
            let tag = p
                .mem
                .read_u64(b.base)
                .map_err(|e| format!("boundary tag unreadable: {e}"))?;
            if tag != a.size {
                return Err(format!(
                    "boundary tag mismatch at {}: {} != {}",
                    b.base, tag, a.size
                ));
            }
        }
    }
    // Every free-list entry is a walked free chunk.
    let free_addrs = free_list(p)?;
    for f in &free_addrs {
        if !chunks.iter().any(|c| c.base.add(HDR) == *f && c.free) {
            return Err(format!("free list entry {f} is not a free chunk"));
        }
    }
    Ok(())
}

/// An allocation-aware extent oracle: inside the heap arena, a pointer's
/// writable/readable extent ends at its *chunk* boundary (writing past it
/// corrupts allocator metadata — what the security wrapper must prevent);
/// free chunks, the wilderness and chunk headers are not legal targets at
/// all. Outside the heap it defers to [`simproc::RegionOracle`].
#[derive(Debug, Clone, Copy, Default)]
pub struct HeapOracle;

impl HeapOracle {
    /// Creates the oracle.
    pub fn new() -> Self {
        HeapOracle
    }

    /// The extent from `addr` to the end of its live chunk's payload, or
    /// `None` if `addr` is not inside live payload (or the heap is too
    /// corrupt to walk — fall back to region extents then, like a real
    /// wrapper would).
    fn chunk_extent(&self, proc: &Proc, addr: VirtAddr) -> Option<Option<u64>> {
        if !in_heap(proc, addr) {
            return None; // not our jurisdiction
        }
        // Alloc-free walk: validate the whole chain (any corruption means
        // deferring to the region oracle, exactly as the vector-building
        // `walk` did) while remembering the chunk containing `addr`.
        let mut hit: Option<(VirtAddr, u64, bool)> = None;
        if visit_chunks(proc, |base, size, _prev_inuse, is_top| {
            if addr >= base && addr < base.add(size) {
                hit = Some((base, size, is_top));
            }
        })
        .is_err()
        {
            return None; // corrupted heap: defer to region oracle
        }
        let Some((base, size, is_top)) = hit else {
            return Some(None);
        };
        let payload = base.add(HDR);
        if is_top || addr < payload {
            return Some(None); // header / wilderness
        }
        match free_list_lookup(proc, Some(payload)) {
            Ok(true) => Some(None), // free chunk
            Ok(false) => Some(Some(base.add(size).diff(addr))),
            Err(_) => None,
        }
    }
}

impl simproc::ExtentOracle for HeapOracle {
    fn writable_extent(&self, proc: &Proc, addr: VirtAddr) -> Option<u64> {
        match self.chunk_extent(proc, addr) {
            Some(ext) => ext,
            None => simproc::RegionOracle::new().writable_extent(proc, addr),
        }
    }

    fn readable_extent(&self, proc: &Proc, addr: VirtAddr) -> Option<u64> {
        match self.chunk_extent(proc, addr) {
            Some(ext) => ext,
            None => simproc::RegionOracle::new().readable_extent(proc, addr),
        }
    }
}

/// Convenience: `malloc` as a [`CVal`] host function result.
pub fn malloc_val(p: &mut Proc, n: u64) -> Result<CVal, Fault> {
    Ok(CVal::Ptr(malloc(p, n)?))
}

/// Whether `ptr` lies inside the heap arena.
pub fn in_heap(p: &Proc, ptr: VirtAddr) -> bool {
    ptr >= HEAP_BASE && ptr < heap_end(p)
}

/// Whether `addr` is readable heap payload right now (host-side helper).
pub fn heap_readable(p: &Proc, addr: VirtAddr, len: u64) -> bool {
    in_heap(p, addr) && p.mem.check(addr, len, Access::Read).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc_with_heap() -> Proc {
        let mut p = Proc::new();
        init_heap(&mut p).unwrap();
        p
    }

    #[test]
    fn absurd_request_sizes_are_rejected_without_overflow() {
        let mut p = proc_with_heap();
        for n in [u64::MAX, u64::MAX - 15, u64::MAX - 16, HEAP_MAX, HEAP_MAX + 1] {
            let ptr = malloc(&mut p, n).unwrap();
            assert!(ptr.is_null(), "malloc({n:#x})");
            assert_eq!(p.errno(), errno::ENOMEM);
        }
        assert_eq!(chunk_size_for(u64::MAX), !15u64);
        check_invariants(&p).unwrap();
    }

    #[test]
    fn malloc_returns_aligned_distinct_payloads() {
        let mut p = proc_with_heap();
        let a = malloc(&mut p, 24).unwrap();
        let b = malloc(&mut p, 100).unwrap();
        assert!(!a.is_null() && !b.is_null());
        assert!(a.is_aligned(16));
        assert!(b.is_aligned(16));
        assert!(b.diff(a) >= chunk_size_for(24));
        check_invariants(&p).unwrap();
    }

    #[test]
    fn free_and_reuse() {
        let mut p = proc_with_heap();
        let a = malloc(&mut p, 64).unwrap();
        let _b = malloc(&mut p, 64).unwrap(); // pin: prevents top-merge
        free(&mut p, a).unwrap();
        check_invariants(&p).unwrap();
        let c = malloc(&mut p, 48).unwrap();
        assert_eq!(c, a, "freed chunk is reused first-fit");
        check_invariants(&p).unwrap();
    }

    #[test]
    fn free_null_is_noop() {
        let mut p = proc_with_heap();
        free(&mut p, VirtAddr::NULL).unwrap();
        check_invariants(&p).unwrap();
    }

    #[test]
    fn forward_coalesce() {
        let mut p = proc_with_heap();
        let a = malloc(&mut p, 32).unwrap();
        let b = malloc(&mut p, 32).unwrap();
        let _pin = malloc(&mut p, 32).unwrap();
        free(&mut p, b).unwrap();
        free(&mut p, a).unwrap(); // a coalesces forward with b
        check_invariants(&p).unwrap();
        let merged = malloc(&mut p, 80).unwrap(); // only fits if merged
        assert_eq!(merged, a);
    }

    #[test]
    fn backward_coalesce() {
        let mut p = proc_with_heap();
        let a = malloc(&mut p, 32).unwrap();
        let b = malloc(&mut p, 32).unwrap();
        let _pin = malloc(&mut p, 32).unwrap();
        free(&mut p, a).unwrap();
        free(&mut p, b).unwrap(); // b coalesces backward into a
        check_invariants(&p).unwrap();
        let merged = malloc(&mut p, 80).unwrap();
        assert_eq!(merged, a);
    }

    #[test]
    fn top_merge_keeps_single_top() {
        let mut p = proc_with_heap();
        let a = malloc(&mut p, 64).unwrap();
        free(&mut p, a).unwrap();
        let chunks = walk(&p).unwrap();
        assert_eq!(chunks.len(), 1, "{chunks:?}");
        assert!(chunks[0].is_top);
    }

    #[test]
    fn usable_size_at_least_request() {
        let mut p = proc_with_heap();
        for n in [1u64, 15, 16, 17, 100, 4096] {
            let ptr = malloc(&mut p, n).unwrap();
            assert!(usable_size(&mut p, ptr).unwrap() >= n);
        }
    }

    #[test]
    fn calloc_zeroes() {
        let mut p = proc_with_heap();
        // Dirty a chunk, free it, calloc it back.
        let a = malloc(&mut p, 64).unwrap();
        let _pin = malloc(&mut p, 16).unwrap();
        p.write_bytes(a, &[0xAA; 64]).unwrap();
        free(&mut p, a).unwrap();
        let b = calloc(&mut p, 16, 4).unwrap();
        assert_eq!(b, a);
        assert_eq!(p.read_bytes(b, 64).unwrap(), vec![0u8; 64]);
    }

    #[test]
    fn calloc_overflow_returns_null() {
        let mut p = proc_with_heap();
        let ptr = calloc(&mut p, u64::MAX / 2, 4).unwrap();
        assert!(ptr.is_null());
        assert_eq!(p.errno(), errno::ENOMEM);
    }

    #[test]
    fn realloc_preserves_data() {
        let mut p = proc_with_heap();
        let a = malloc(&mut p, 16).unwrap();
        p.write_bytes(a, b"0123456789abcdef").unwrap();
        let b = realloc(&mut p, a, 4096).unwrap();
        assert_eq!(p.read_bytes(b, 16).unwrap(), b"0123456789abcdef");
        check_invariants(&p).unwrap();
    }

    #[test]
    fn realloc_shrink_keeps_pointer() {
        let mut p = proc_with_heap();
        let a = malloc(&mut p, 100).unwrap();
        let b = realloc(&mut p, a, 10).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn realloc_null_is_malloc_and_zero_is_free() {
        let mut p = proc_with_heap();
        let a = realloc(&mut p, VirtAddr::NULL, 32).unwrap();
        assert!(!a.is_null());
        let z = realloc(&mut p, a, 0).unwrap();
        assert!(z.is_null());
        check_invariants(&p).unwrap();
    }

    #[test]
    fn heap_grows_and_exhausts() {
        let mut p = proc_with_heap();
        // Allocate beyond the initial arena — must grow.
        let big = malloc(&mut p, simproc::layout::HEAP_INITIAL).unwrap();
        assert!(!big.is_null());
        check_invariants(&p).unwrap();
        // Exhaust the whole arena.
        let too_big = malloc(&mut p, HEAP_MAX).unwrap();
        assert!(too_big.is_null());
        assert_eq!(p.errno(), errno::ENOMEM);
    }

    #[test]
    fn many_allocations_stay_consistent() {
        let mut p = proc_with_heap();
        let mut live = Vec::new();
        for i in 0..200u64 {
            let ptr = malloc(&mut p, (i * 7) % 256 + 1).unwrap();
            assert!(!ptr.is_null());
            live.push(ptr);
            if i % 3 == 0 {
                let victim = live.remove((i as usize * 5) % live.len());
                free(&mut p, victim).unwrap();
            }
        }
        check_invariants(&p).unwrap();
        for ptr in live {
            free(&mut p, ptr).unwrap();
        }
        check_invariants(&p).unwrap();
    }

    #[test]
    fn heap_oracle_bounds_extents_to_chunks() {
        use simproc::ExtentOracle;
        let mut p = proc_with_heap();
        let a = malloc(&mut p, 40).unwrap();
        let b = malloc(&mut p, 40).unwrap();
        let _pin = malloc(&mut p, 16).unwrap();
        let o = HeapOracle::new();
        let ext = o.writable_extent(&p, a).unwrap();
        assert_eq!(ext, usable_size(&mut p, a).unwrap());
        // Interior pointer.
        let ext8 = o.writable_extent(&p, a.add(8)).unwrap();
        assert_eq!(ext8, ext - 8);
        // Chunk header is off limits.
        assert_eq!(o.writable_extent(&p, a.sub(8)), None);
        // Freed chunk is off limits.
        free(&mut p, b).unwrap();
        assert_eq!(o.writable_extent(&p, b), None);
        // The wilderness is off limits.
        let top = p.mem.read_ptr(crate::state::HEAP_TOP).unwrap();
        assert_eq!(o.writable_extent(&p, top.add(HDR)), None);
        // Outside the heap it behaves like the region oracle.
        let d = p.alloc_data_zeroed(16);
        assert!(o.writable_extent(&p, d).unwrap() >= 16);
        assert_eq!(o.readable_extent(&p, simproc::layout::WILD_ADDR), None);
        assert_eq!(o.readable_extent(&p, a).unwrap(), ext);
    }

    #[test]
    fn free_wild_pointer_faults() {
        let mut p = proc_with_heap();
        let err = free(&mut p, simproc::layout::WILD_ADDR).unwrap_err();
        assert!(matches!(err, Fault::Segv { .. }));
    }

    #[test]
    fn overflow_corrupts_unlink_into_arbitrary_write() {
        // The §3.4 attack in miniature: A allocated next to free B;
        // overflowing A rewrites B's fd/bk; free(A) forward-coalesces and
        // unlink(B) writes attacker-chosen data to an attacker-chosen
        // address.
        let mut p = proc_with_heap();
        let a = malloc(&mut p, 32).unwrap();
        let b = malloc(&mut p, 32).unwrap();
        let _pin = malloc(&mut p, 32).unwrap();
        free(&mut p, b).unwrap(); // B now free, adjacent after A

        let target = p.alloc_data_zeroed(16); // pretend GOT/atexit slot
        let payload_buf = p.alloc_data_zeroed(32); // attacker's "shellcode" home

        // Overflow A by 32 bytes: clobbers B's header (prev_size, size)
        // then B's fd/bk. Keep B's size word intact so free() still
        // coalesces; point fd at (target - 8) and bk at the payload
        // buffer (unlink also writes *bk = fd, so bk must be writable —
        // which is why real exploits jump over the clobbered bytes).
        let b_chunk = b.sub(HDR);
        let (b_size, b_flags) = read_size(&mut p, b_chunk).unwrap();
        let mut payload = Vec::new();
        payload.extend_from_slice(&[0x41; 32]); // A's legitimate 32 bytes
        payload.extend_from_slice(&0u64.to_le_bytes()); // B.prev_size
        payload.extend_from_slice(&(b_size | b_flags).to_le_bytes()); // B.size
        payload.extend_from_slice(&(target.get() - 8).to_le_bytes()); // B.fd
        payload.extend_from_slice(&payload_buf.get().to_le_bytes()); // B.bk
        p.write_bytes(a, &payload).unwrap(); // the overflowing strcpy

        // free(A): coalesce forward with "free" B -> unlink writes
        // *(fd+8) = bk  ==> *target = payload_buf.
        let result = free(&mut p, a);
        assert!(result.is_ok(), "{result:?}");
        assert_eq!(p.mem.read_u64(target).unwrap(), payload_buf.get());
        // ... and *bk = fd clobbered the payload's first word.
        assert_eq!(p.mem.read_u64(payload_buf).unwrap(), target.get() - 8);
    }
}
