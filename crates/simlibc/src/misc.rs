//! Process-lifetime and miscellaneous functions: `exit`/`atexit` (the
//! §3.4 attack's control-flow hijack runs through the `atexit` table),
//! `abort`, `rand`/`srand`, `system`, `time`, `getpid`, `sleep`.

use simproc::{errno, CVal, Fault, Proc};

use crate::state::{ATEXIT_COUNT, ATEXIT_SLOTS, ATEXIT_TABLE, RAND_SEED};
use crate::util::{arg, enter, ok_int};

/// The process id every simulated process reports.
pub const SIM_PID: i64 = 4242;
/// The wall clock of the simulation: June 2003, when HEALERS was
/// presented at DSN.
pub const SIM_TIME: i64 = 1_055_548_800;

/// `int rand(void);` — the classic LCG, state in libc's data segment.
pub fn rand(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    let _ = args;
    enter(p)?;
    let seed = p.read_u64(RAND_SEED)?;
    let next = seed.wrapping_mul(1103515245).wrapping_add(12345);
    p.write_u64(RAND_SEED, next)?;
    ok_int(((next >> 16) & 0x7fff) as i64)
}

/// `void srand(unsigned int seed);`
pub fn srand(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    p.write_u64(RAND_SEED, arg(args, 0).as_usize())?;
    Ok(CVal::Void)
}

/// `int rand_r(unsigned int *seedp);` — crashes on a wild seed pointer.
pub fn rand_r(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let seedp = arg(args, 0).as_ptr();
    let seed = p.read_u32(seedp)? as u64;
    let next = seed.wrapping_mul(1103515245).wrapping_add(12345);
    p.write_u32(seedp, next as u32)?;
    ok_int(((next >> 16) & 0x7fff) as i64)
}

/// `int atexit(void (*function)(void));`
pub fn atexit(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let func = arg(args, 0).as_ptr();
    let count = p.read_u64(ATEXIT_COUNT)?;
    if count >= ATEXIT_SLOTS {
        return ok_int(-1);
    }
    p.write_ptr(ATEXIT_TABLE.add(count * 8), func)?;
    p.write_u64(ATEXIT_COUNT, count + 1)?;
    ok_int(0)
}

/// `void exit(int status);` — runs `atexit` handlers LIFO through the
/// call table. A handler slot overwritten by the unlink attack transfers
/// control to the attacker here.
pub fn exit(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let status = arg(args, 0).as_int() as i32;
    let mut count = p.read_u64(ATEXIT_COUNT)?;
    while count > 0 {
        count -= 1;
        p.write_u64(ATEXIT_COUNT, count)?;
        let handler = p.read_ptr(ATEXIT_TABLE.add(count * 8))?;
        if handler.is_null() {
            continue;
        }
        p.call_function(handler, &[])?;
    }
    Err(p.exit(status))
}

/// `void abort(void);`
pub fn abort(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    let _ = args;
    enter(p)?;
    Err(Fault::abort("abort() called"))
}

/// `int system(const char *command);` — reads the command (crashing on
/// wild pointers), then reports that no shell is available.
pub fn system(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let cmd = arg(args, 0);
    if cmd.is_null() {
        // system(NULL) asks "is a shell available?" — no.
        return ok_int(0);
    }
    let _command = p.read_cstr(cmd.as_ptr())?;
    p.set_errno(errno::ENOENT);
    ok_int(-1)
}

/// `time_t time(time_t *tloc);`
pub fn time(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let tloc = arg(args, 0).as_ptr();
    if !tloc.is_null() {
        p.write_u64(tloc, SIM_TIME as u64)?;
    }
    ok_int(SIM_TIME)
}

/// `pid_t getpid(void);`
pub fn getpid(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    let _ = args;
    enter(p)?;
    ok_int(SIM_PID)
}

/// `unsigned int sleep(unsigned int seconds);` — burns simulated cycles.
pub fn sleep(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let seconds = arg(args, 0).as_usize().min(1 << 20);
    p.consume_fuel(seconds * 1000)?;
    ok_int(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::libc_proc;
    use simproc::layout::WILD_ADDR;
    use simproc::SHELLCODE_MAGIC;

    #[test]
    fn rand_is_deterministic_after_srand() {
        let mut p = libc_proc();
        srand(&mut p, &[CVal::Int(42)]).unwrap();
        let a1 = rand(&mut p, &[]).unwrap();
        let a2 = rand(&mut p, &[]).unwrap();
        srand(&mut p, &[CVal::Int(42)]).unwrap();
        assert_eq!(rand(&mut p, &[]).unwrap(), a1);
        assert_eq!(rand(&mut p, &[]).unwrap(), a2);
        assert!((0..=0x7fff).contains(&a1.as_int()));
    }

    #[test]
    fn rand_r_uses_caller_state_and_crashes_wild() {
        let mut p = libc_proc();
        let seedp = p.alloc_data(&7u32.to_le_bytes());
        let v1 = rand_r(&mut p, &[CVal::Ptr(seedp)]).unwrap();
        let v2 = rand_r(&mut p, &[CVal::Ptr(seedp)]).unwrap();
        assert_ne!(v1, v2);
        assert!(matches!(
            rand_r(&mut p, &[CVal::Ptr(WILD_ADDR)]).unwrap_err(),
            Fault::Segv { .. }
        ));
    }

    fn handler_marker(p: &mut Proc, _args: &[CVal]) -> Result<CVal, Fault> {
        p.kernel.stdout.extend_from_slice(b"[handler]");
        Ok(CVal::Void)
    }

    #[test]
    fn exit_runs_atexit_handlers_lifo() {
        fn h2(p: &mut Proc, _a: &[CVal]) -> Result<CVal, Fault> {
            p.kernel.stdout.extend_from_slice(b"2");
            Ok(CVal::Void)
        }
        fn h1(p: &mut Proc, _a: &[CVal]) -> Result<CVal, Fault> {
            p.kernel.stdout.extend_from_slice(b"1");
            Ok(CVal::Void)
        }
        let mut p = libc_proc();
        let a1 = p.register_host_fn("h1", h1);
        let a2 = p.register_host_fn("h2", h2);
        atexit(&mut p, &[CVal::Ptr(a1)]).unwrap();
        atexit(&mut p, &[CVal::Ptr(a2)]).unwrap();
        let err = exit(&mut p, &[CVal::Int(3)]).unwrap_err();
        assert_eq!(err, Fault::Exit(3));
        assert_eq!(p.kernel.stdout_text(), "21", "LIFO order");
        assert_eq!(p.exit_status(), Some(3));
    }

    #[test]
    fn atexit_table_fills_up() {
        let mut p = libc_proc();
        let h = p.register_host_fn("h", handler_marker);
        for _ in 0..ATEXIT_SLOTS {
            assert_eq!(atexit(&mut p, &[CVal::Ptr(h)]).unwrap(), CVal::Int(0));
        }
        assert_eq!(atexit(&mut p, &[CVal::Ptr(h)]).unwrap(), CVal::Int(-1));
    }

    #[test]
    fn corrupted_atexit_slot_hijacks_exit() {
        // The back half of the §3.4 attack: the unlink wrote the
        // shellcode address into the atexit table; exit() then calls it.
        let mut p = libc_proc();
        p.kernel.root_privilege = true;
        let payload = p.alloc_data(SHELLCODE_MAGIC);
        p.mem.write_u64(ATEXIT_COUNT, 1).unwrap();
        p.mem.write_ptr(ATEXIT_TABLE, payload).unwrap();
        let err = exit(&mut p, &[CVal::Int(0)]).unwrap_err();
        assert!(matches!(err, Fault::WildJump { .. }));
        assert!(p.kernel.shell_spawned, "attacker got a root shell");
    }

    #[test]
    fn abort_aborts() {
        let mut p = libc_proc();
        assert!(matches!(abort(&mut p, &[]).unwrap_err(), Fault::Abort { .. }));
    }

    #[test]
    fn system_reads_command_then_fails() {
        let mut p = libc_proc();
        let cmd = p.alloc_cstr("/bin/sh");
        assert_eq!(system(&mut p, &[CVal::Ptr(cmd)]).unwrap(), CVal::Int(-1));
        assert_eq!(p.errno(), errno::ENOENT);
        assert_eq!(system(&mut p, &[CVal::NULL]).unwrap(), CVal::Int(0));
        assert!(matches!(
            system(&mut p, &[CVal::Ptr(WILD_ADDR)]).unwrap_err(),
            Fault::Segv { .. }
        ));
    }

    #[test]
    fn time_and_getpid() {
        let mut p = libc_proc();
        assert_eq!(time(&mut p, &[CVal::NULL]).unwrap(), CVal::Int(SIM_TIME));
        let tloc = p.alloc_data_zeroed(8);
        time(&mut p, &[CVal::Ptr(tloc)]).unwrap();
        assert_eq!(p.read_u64(tloc).unwrap(), SIM_TIME as u64);
        assert_eq!(getpid(&mut p, &[]).unwrap(), CVal::Int(SIM_PID));
    }

    #[test]
    fn sleep_burns_cycles() {
        let mut p = libc_proc();
        let before = p.cycles();
        sleep(&mut p, &[CVal::Int(3)]).unwrap();
        assert!(p.cycles() >= before + 3000);
    }
}
