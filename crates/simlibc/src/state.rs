//! Fixed locations of the C library's private state.
//!
//! Real libc keeps its free-list heads, `strtok` cursor, `rand` seed and
//! `atexit` table in its own data segment — *inside the process image*,
//! where buffer overflows can reach them. We do the same: everything
//! below lives in the first page of the simulated data segment
//! ([`simproc::layout::LIBC_PRIVATE_BASE`]), so attacks and fault
//! injection interact with library state exactly as they would in C.

use simproc::layout::LIBC_PRIVATE_BASE;
use simproc::VirtAddr;

/// Free-list head pseudo-chunk: `fd` at +0, `bk` at +8.
pub const FREELIST_HEAD: VirtAddr = LIBC_PRIVATE_BASE;
/// Word holding the base address of the heap's top (wilderness) chunk.
pub const HEAP_TOP: VirtAddr = VirtAddr::new(LIBC_PRIVATE_BASE.get() + 0x10);
/// `rand`/`srand` seed word.
pub const RAND_SEED: VirtAddr = VirtAddr::new(LIBC_PRIVATE_BASE.get() + 0x18);
/// `strtok` continuation pointer.
pub const STRTOK_SAVE: VirtAddr = VirtAddr::new(LIBC_PRIVATE_BASE.get() + 0x20);
/// Number of registered `atexit` handlers.
pub const ATEXIT_COUNT: VirtAddr = VirtAddr::new(LIBC_PRIVATE_BASE.get() + 0x28);
/// Start of the `atexit` handler table ([`ATEXIT_SLOTS`] pointers).
/// Lives on the same writable page as the heap metadata — the classic
/// unlink-write target.
pub const ATEXIT_TABLE: VirtAddr = VirtAddr::new(LIBC_PRIVATE_BASE.get() + 0x30);
/// Capacity of the `atexit` table.
pub const ATEXIT_SLOTS: u64 = 32;
/// Pointer to the `environ` array (a `char**`).
pub const ENVIRON_PTR: VirtAddr = VirtAddr::new(LIBC_PRIVATE_BASE.get() + 0x130);
/// Base address of the ctype classification table (set at init).
pub const CTYPE_TABLE_PTR: VirtAddr = VirtAddr::new(LIBC_PRIVATE_BASE.get() + 0x138);
/// Static buffer returned by `strerror` (64 bytes).
pub const STRERROR_BUF: VirtAddr = VirtAddr::new(LIBC_PRIVATE_BASE.get() + 0x140);
/// Size of the `strerror` buffer.
pub const STRERROR_BUF_LEN: u64 = 64;

/// Magic stored at offset 0 of every simulated `FILE` object.
pub const FILE_MAGIC: u64 = 0x0045_4C49_4646_4C45; // "ELIFFLE" + version

#[cfg(test)]
mod tests {
    use super::*;
    use simproc::layout::{DATA_CURSOR_START, LIBC_PRIVATE_SIZE};

    #[test]
    fn state_fits_in_private_page() {
        let end = STRERROR_BUF.add(STRERROR_BUF_LEN);
        assert!(end <= LIBC_PRIVATE_BASE.add(LIBC_PRIVATE_SIZE));
        assert!(end <= DATA_CURSOR_START);
    }

    #[test]
    fn fields_do_not_overlap() {
        let spans = [
            (FREELIST_HEAD, 16),
            (HEAP_TOP, 8),
            (RAND_SEED, 8),
            (STRTOK_SAVE, 8),
            (ATEXIT_COUNT, 8),
            (ATEXIT_TABLE, ATEXIT_SLOTS * 8),
            (ENVIRON_PTR, 8),
            (CTYPE_TABLE_PTR, 8),
            (STRERROR_BUF, STRERROR_BUF_LEN),
        ];
        for w in spans.windows(2) {
            let (a, alen) = w[0];
            let (b, _) = w[1];
            assert!(a.add(alen) <= b, "{a} + {alen} overlaps {b}");
        }
    }
}
