//! The `printf` format engine shared by `sprintf`, `snprintf`, `printf`
//! and `fprintf` — complete with the era's sharp edges: `%s` dereferences
//! whatever pointer it is given, and `%n` performs a write through an
//! argument pointer (the format-string-attack primitive).

use simproc::{CVal, Fault, Proc};

use crate::util::arg;

/// Formats `fmt` (a simulated-memory C string) with `args`, returning the
/// rendered bytes.
///
/// Supported conversions: `%d %i %u %x %X %o %c %s %p %f %%` and `%n`,
/// with optional `-`/`0` flags, width, precision (strings and floats) and
/// `l`/`ll`/`z`/`h` length modifiers (which all collapse to 64-bit here).
///
/// # Errors
///
/// Propagates memory faults from reading the format, `%s` sources and
/// `%n` targets.
pub fn format(
    p: &mut Proc,
    fmt: simproc::VirtAddr,
    args: &[CVal],
) -> Result<Vec<u8>, Fault> {
    let fmt_bytes = p.read_cstr(fmt)?;
    let mut out = Vec::with_capacity(fmt_bytes.len());
    let mut argi = 0usize;
    let mut i = 0usize;

    while i < fmt_bytes.len() {
        let b = fmt_bytes[i];
        if b != b'%' {
            out.push(b);
            i += 1;
            continue;
        }
        i += 1;
        if i >= fmt_bytes.len() {
            out.push(b'%');
            break;
        }
        // Flags.
        let mut left = false;
        let mut zero = false;
        loop {
            match fmt_bytes.get(i) {
                Some(b'-') => {
                    left = true;
                    i += 1;
                }
                Some(b'0') => {
                    zero = true;
                    i += 1;
                }
                Some(b'+') | Some(b' ') | Some(b'#') => i += 1,
                _ => break,
            }
        }
        // Width.
        let mut width = 0usize;
        while let Some(d) = fmt_bytes.get(i).filter(|d| d.is_ascii_digit()) {
            width = width * 10 + (d - b'0') as usize;
            i += 1;
        }
        // Precision.
        let mut precision: Option<usize> = None;
        if fmt_bytes.get(i) == Some(&b'.') {
            i += 1;
            let mut prec = 0usize;
            while let Some(d) = fmt_bytes.get(i).filter(|d| d.is_ascii_digit()) {
                prec = prec * 10 + (d - b'0') as usize;
                i += 1;
            }
            precision = Some(prec);
        }
        // Length modifiers (collapsed).
        while matches!(fmt_bytes.get(i), Some(b'l') | Some(b'h') | Some(b'z') | Some(b'q'))
        {
            i += 1;
        }
        let Some(&conv) = fmt_bytes.get(i) else {
            out.push(b'%');
            break;
        };
        i += 1;

        let push_padded = |out: &mut Vec<u8>, body: Vec<u8>| {
            let pad = width.saturating_sub(body.len());
            if left {
                out.extend_from_slice(&body);
                out.extend(std::iter::repeat_n(b' ', pad));
            } else {
                let fill = if zero { b'0' } else { b' ' };
                out.extend(std::iter::repeat_n(fill, pad));
                out.extend_from_slice(&body);
            }
        };

        match conv {
            b'%' => out.push(b'%'),
            b'd' | b'i' => {
                let v = arg(args, argi).as_int();
                argi += 1;
                push_padded(&mut out, v.to_string().into_bytes());
            }
            b'u' => {
                let v = arg(args, argi).as_usize();
                argi += 1;
                push_padded(&mut out, v.to_string().into_bytes());
            }
            b'x' => {
                let v = arg(args, argi).as_usize();
                argi += 1;
                push_padded(&mut out, format!("{v:x}").into_bytes());
            }
            b'X' => {
                let v = arg(args, argi).as_usize();
                argi += 1;
                push_padded(&mut out, format!("{v:X}").into_bytes());
            }
            b'o' => {
                let v = arg(args, argi).as_usize();
                argi += 1;
                push_padded(&mut out, format!("{v:o}").into_bytes());
            }
            b'p' => {
                let v = arg(args, argi).as_usize();
                argi += 1;
                push_padded(&mut out, format!("0x{v:x}").into_bytes());
            }
            b'c' => {
                let v = arg(args, argi).as_int() as u8;
                argi += 1;
                push_padded(&mut out, vec![v]);
            }
            b'f' | b'g' | b'e' => {
                let v = arg(args, argi).as_f64();
                argi += 1;
                let prec = precision.unwrap_or(6);
                push_padded(&mut out, format!("{v:.prec$}").into_bytes());
            }
            b's' => {
                // Dereferences the argument — NULL or wild %s arguments
                // crash, the classic printf failure.
                let ptr = arg(args, argi).as_ptr();
                argi += 1;
                let mut s = p.read_cstr(ptr)?;
                if let Some(prec) = precision {
                    s.truncate(prec);
                }
                push_padded(&mut out, s);
            }
            b'n' => {
                // Writes the byte count so far through the pointer — the
                // format-string attack primitive, preserved faithfully.
                let ptr = arg(args, argi).as_ptr();
                argi += 1;
                p.write_u32(ptr, out.len() as u32)?;
            }
            other => {
                out.push(b'%');
                out.push(other);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::libc_proc;
    use simproc::layout::WILD_ADDR;
    use simproc::VirtAddr;

    fn run(p: &mut Proc, fmt: &str, args: &[CVal]) -> String {
        let f = p.alloc_cstr(fmt);
        String::from_utf8_lossy(&format(p, f, args).unwrap()).into_owned()
    }

    #[test]
    fn basic_conversions() {
        let mut p = libc_proc();
        assert_eq!(run(&mut p, "n=%d!", &[CVal::Int(-7)]), "n=-7!");
        assert_eq!(run(&mut p, "%u", &[CVal::Int(7)]), "7");
        assert_eq!(
            run(&mut p, "%x|%X|%o", &[CVal::Int(255), CVal::Int(255), CVal::Int(8)]),
            "ff|FF|10"
        );
        assert_eq!(run(&mut p, "%c%c", &[CVal::Int(104), CVal::Int(105)]), "hi");
        assert_eq!(run(&mut p, "100%%", &[]), "100%");
        assert_eq!(run(&mut p, "%p", &[CVal::Ptr(VirtAddr::new(0x10))]), "0x10");
    }

    #[test]
    fn string_conversion() {
        let mut p = libc_proc();
        let s = p.alloc_cstr("world");
        assert_eq!(run(&mut p, "hello %s", &[CVal::Ptr(s)]), "hello world");
        assert_eq!(run(&mut p, "%.3s", &[CVal::Ptr(s)]), "wor");
        assert_eq!(run(&mut p, "[%8s]", &[CVal::Ptr(s)]), "[   world]");
        assert_eq!(run(&mut p, "[%-8s]", &[CVal::Ptr(s)]), "[world   ]");
    }

    #[test]
    fn width_and_zero_pad() {
        let mut p = libc_proc();
        assert_eq!(run(&mut p, "[%5d]", &[CVal::Int(42)]), "[   42]");
        assert_eq!(run(&mut p, "[%05d]", &[CVal::Int(42)]), "[00042]");
        assert_eq!(run(&mut p, "[%-5d]", &[CVal::Int(42)]), "[42   ]");
    }

    #[test]
    fn float_precision() {
        let mut p = libc_proc();
        assert_eq!(run(&mut p, "%f", &[CVal::F64(1.5)]), "1.500000");
        assert_eq!(run(&mut p, "%.2f", &[CVal::F64(2.567)]), "2.57");
    }

    #[test]
    fn length_modifiers_are_accepted() {
        let mut p = libc_proc();
        assert_eq!(
            run(&mut p, "%ld %zu %lld", &[CVal::Int(1), CVal::Int(2), CVal::Int(3)]),
            "1 2 3"
        );
    }

    #[test]
    fn null_s_argument_crashes() {
        let mut p = libc_proc();
        let f = p.alloc_cstr("%s");
        let err = format(&mut p, f, &[CVal::NULL]).unwrap_err();
        assert!(matches!(err, Fault::Segv { .. }));
    }

    #[test]
    fn percent_n_writes_count() {
        let mut p = libc_proc();
        let slot = p.alloc_data_zeroed(4);
        let f = p.alloc_cstr("abcd%n");
        format(&mut p, f, &[CVal::Ptr(slot)]).unwrap();
        assert_eq!(p.read_u32(slot).unwrap(), 4);
        // ... and through a wild pointer it is an attack that faults.
        let f2 = p.alloc_cstr("%n");
        assert!(matches!(
            format(&mut p, f2, &[CVal::Ptr(WILD_ADDR)]).unwrap_err(),
            Fault::Segv { .. }
        ));
    }

    #[test]
    fn missing_args_render_as_garbage_zero() {
        let mut p = libc_proc();
        assert_eq!(run(&mut p, "%d", &[]), "0");
    }

    #[test]
    fn trailing_percent_is_literal() {
        let mut p = libc_proc();
        assert_eq!(run(&mut p, "50%", &[]), "50%");
        assert_eq!(run(&mut p, "%!", &[]), "%!");
    }
}
