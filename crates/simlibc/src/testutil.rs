//! Test fixtures shared by this crate's unit tests and by downstream
//! crates' test suites.

use simproc::Proc;

use crate::setup::{init_libc, init_libc_with_env};

/// A fresh process with libc state initialised (heap + ctype table).
pub fn libc_proc() -> Proc {
    let mut p = Proc::new();
    init_libc(&mut p).expect("fresh image cannot fault");
    p
}

/// [`libc_proc`] with an initial environment.
pub fn libc_proc_with_env(vars: &[(&str, &str)]) -> Proc {
    let mut p = Proc::new();
    init_libc_with_env(&mut p, vars).expect("fresh image cannot fault");
    p
}
