//! `<wctype.h>` subset — including `wctrans`, the function whose generated
//! wrapper the paper prints in Figure 3.

use simproc::{CVal, Fault, Proc};

use crate::util::{arg, enter, ok_int};

/// Descriptor values returned by [`wctrans`].
pub const TRANS_TOLOWER: i64 = 1;
/// See [`TRANS_TOLOWER`].
pub const TRANS_TOUPPER: i64 = 2;

/// `wctrans_t wctrans(const char *name);` — looks up a character mapping
/// by name. Crashes on invalid pointers (it must read the name); returns
/// `0` for unknown names.
pub fn wctrans(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let name = arg(args, 0).as_ptr();
    let bytes = p.read_cstr(name)?;
    match bytes.as_slice() {
        b"tolower" => ok_int(TRANS_TOLOWER),
        b"toupper" => ok_int(TRANS_TOUPPER),
        _ => ok_int(0),
    }
}

/// `wint_t towctrans(wint_t wc, wctrans_t desc);`
pub fn towctrans(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let wc = arg(args, 0).as_int();
    match arg(args, 1).as_int() {
        TRANS_TOLOWER => ok_int(ascii_lower(wc)),
        TRANS_TOUPPER => ok_int(ascii_upper(wc)),
        _ => {
            p.set_errno(simproc::errno::EINVAL);
            ok_int(wc)
        }
    }
}

const WCTYPE_NAMES: &[&str] = &[
    "alnum", "alpha", "blank", "cntrl", "digit", "graph", "lower", "print", "punct",
    "space", "upper", "xdigit",
];

/// `wctype_t wctype(const char *name);`
pub fn wctype(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let name = arg(args, 0).as_ptr();
    let bytes = p.read_cstr(name)?;
    let name = String::from_utf8_lossy(&bytes);
    match WCTYPE_NAMES.iter().position(|n| *n == name) {
        Some(i) => ok_int(i as i64 + 1),
        None => ok_int(0),
    }
}

/// `int iswctype(wint_t wc, wctype_t desc);` — wide classification is
/// table-free and robust for any `wc` (unlike the narrow `ctype` family).
pub fn iswctype(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let wc = arg(args, 0).as_int();
    let desc = arg(args, 1).as_int();
    let Ok(idx) = usize::try_from(desc - 1) else {
        return ok_int(0);
    };
    let Some(name) = WCTYPE_NAMES.get(idx) else {
        return ok_int(0);
    };
    let c = match u8::try_from(wc) {
        Ok(c) => c as char,
        Err(_) => return ok_int(0),
    };
    let hit = match *name {
        "alnum" => c.is_ascii_alphanumeric(),
        "alpha" => c.is_ascii_alphabetic(),
        "blank" => c == ' ' || c == '\t',
        "cntrl" => c.is_ascii_control(),
        "digit" => c.is_ascii_digit(),
        "graph" => c.is_ascii_graphic(),
        "lower" => c.is_ascii_lowercase(),
        "print" => c.is_ascii_graphic() || c == ' ',
        "punct" => c.is_ascii_punctuation(),
        "space" => c.is_ascii_whitespace() || c as u8 == 0x0b,
        "upper" => c.is_ascii_uppercase(),
        "xdigit" => c.is_ascii_hexdigit(),
        _ => false,
    };
    ok_int(hit as i64)
}

fn ascii_lower(wc: i64) -> i64 {
    if (b'A' as i64..=b'Z' as i64).contains(&wc) {
        wc + 32
    } else {
        wc
    }
}

fn ascii_upper(wc: i64) -> i64 {
    if (b'a' as i64..=b'z' as i64).contains(&wc) {
        wc - 32
    } else {
        wc
    }
}

/// `wint_t towlower(wint_t wc);`
pub fn towlower(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    ok_int(ascii_lower(arg(args, 0).as_int()))
}

/// `wint_t towupper(wint_t wc);`
pub fn towupper(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    ok_int(ascii_upper(arg(args, 0).as_int()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::libc_proc;
    use simproc::layout::WILD_ADDR;

    #[test]
    fn wctrans_known_names() {
        let mut p = libc_proc();
        let lo = p.alloc_cstr("tolower");
        let up = p.alloc_cstr("toupper");
        let junk = p.alloc_cstr("frobnicate");
        assert_eq!(wctrans(&mut p, &[CVal::Ptr(lo)]).unwrap(), CVal::Int(TRANS_TOLOWER));
        assert_eq!(wctrans(&mut p, &[CVal::Ptr(up)]).unwrap(), CVal::Int(TRANS_TOUPPER));
        assert_eq!(wctrans(&mut p, &[CVal::Ptr(junk)]).unwrap(), CVal::Int(0));
    }

    #[test]
    fn wctrans_crashes_on_bad_pointer() {
        // Exactly the API failure HEALERS wraps in Figure 3.
        let mut p = libc_proc();
        assert!(matches!(wctrans(&mut p, &[CVal::NULL]).unwrap_err(), Fault::Segv { .. }));
        assert!(matches!(
            wctrans(&mut p, &[CVal::Ptr(WILD_ADDR)]).unwrap_err(),
            Fault::Segv { .. }
        ));
    }

    #[test]
    fn towctrans_maps() {
        let mut p = libc_proc();
        let a =
            towctrans(&mut p, &[CVal::Int(b'A' as i64), CVal::Int(TRANS_TOLOWER)]).unwrap();
        assert_eq!(a, CVal::Int(b'a' as i64));
        let b =
            towctrans(&mut p, &[CVal::Int(b'a' as i64), CVal::Int(TRANS_TOUPPER)]).unwrap();
        assert_eq!(b, CVal::Int(b'A' as i64));
        // Bad descriptor: identity + EINVAL, no crash.
        let c = towctrans(&mut p, &[CVal::Int(b'a' as i64), CVal::Int(99)]).unwrap();
        assert_eq!(c, CVal::Int(b'a' as i64));
        assert_eq!(p.errno(), simproc::errno::EINVAL);
    }

    #[test]
    fn wctype_and_iswctype() {
        let mut p = libc_proc();
        let alpha = p.alloc_cstr("alpha");
        let d = wctype(&mut p, &[CVal::Ptr(alpha)]).unwrap();
        assert_ne!(d, CVal::Int(0));
        let yes = iswctype(&mut p, &[CVal::Int(b'x' as i64), d]).unwrap();
        assert_eq!(yes, CVal::Int(1));
        let no = iswctype(&mut p, &[CVal::Int(b'1' as i64), d]).unwrap();
        assert_eq!(no, CVal::Int(0));
        // Garbage descriptor and wc never crash wide functions.
        assert_eq!(
            iswctype(&mut p, &[CVal::Int(1 << 40), CVal::Int(-5)]).unwrap(),
            CVal::Int(0)
        );
    }

    #[test]
    fn tow_simple() {
        let mut p = libc_proc();
        assert_eq!(
            towlower(&mut p, &[CVal::Int(b'Z' as i64)]).unwrap(),
            CVal::Int(b'z' as i64)
        );
        assert_eq!(
            towupper(&mut p, &[CVal::Int(b'q' as i64)]).unwrap(),
            CVal::Int(b'Q' as i64)
        );
        assert_eq!(towlower(&mut p, &[CVal::Int(5000)]).unwrap(), CVal::Int(5000));
    }
}
