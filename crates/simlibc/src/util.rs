//! Shared helpers for simulated C functions.

use simproc::{CVal, Fault, Proc, VirtAddr};

/// Fetches argument `i`; missing arguments read as garbage zero, the way
/// a real C call with too few arguments reads whatever is in the register.
pub(crate) fn arg(args: &[CVal], i: usize) -> CVal {
    args.get(i).copied().unwrap_or(CVal::Int(0))
}

/// Charges the fixed call-entry fuel.
pub(crate) fn enter(p: &mut Proc) -> Result<(), Fault> {
    p.consume_fuel(5)
}

/// `Ok(CVal::Int(v))`.
pub(crate) fn ok_int(v: i64) -> Result<CVal, Fault> {
    Ok(CVal::Int(v))
}

/// `Ok(CVal::Ptr(a))`.
pub(crate) fn ok_ptr(a: VirtAddr) -> Result<CVal, Fault> {
    Ok(CVal::Ptr(a))
}

/// ASCII lowercase for comparisons.
pub(crate) fn lower(b: u8) -> u8 {
    b.to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_args_read_as_zero() {
        assert_eq!(arg(&[], 0), CVal::Int(0));
        assert_eq!(arg(&[CVal::Int(7)], 0), CVal::Int(7));
        assert_eq!(arg(&[CVal::Int(7)], 3), CVal::Int(0));
    }
}
