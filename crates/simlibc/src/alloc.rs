//! `malloc`/`free`/`calloc`/`realloc` as library symbols (thin host-fn
//! wrappers over the [`crate::heap`] allocator).

use simproc::{CVal, Fault, Proc};

use crate::heap;
use crate::util::{arg, enter};

/// `void *malloc(size_t size);`
pub fn malloc(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    Ok(CVal::Ptr(heap::malloc(p, arg(args, 0).as_usize())?))
}

/// `void free(void *ptr);`
pub fn free(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    heap::free(p, arg(args, 0).as_ptr())?;
    Ok(CVal::Void)
}

/// `void *calloc(size_t nmemb, size_t size);`
pub fn calloc(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    Ok(CVal::Ptr(heap::calloc(p, arg(args, 0).as_usize(), arg(args, 1).as_usize())?))
}

/// `void *realloc(void *ptr, size_t size);`
pub fn realloc(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    Ok(CVal::Ptr(heap::realloc(p, arg(args, 0).as_ptr(), arg(args, 1).as_usize())?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::libc_proc;

    #[test]
    fn symbol_forms_delegate() {
        let mut p = libc_proc();
        let a = malloc(&mut p, &[CVal::Int(64)]).unwrap();
        assert!(!a.is_null());
        p.write_bytes(a.as_ptr(), &[7u8; 64]).unwrap();
        let b = realloc(&mut p, &[a, CVal::Int(128)]).unwrap();
        assert_eq!(p.read_bytes(b.as_ptr(), 64).unwrap(), vec![7u8; 64]);
        free(&mut p, &[b]).unwrap();
        let c = calloc(&mut p, &[CVal::Int(4), CVal::Int(8)]).unwrap();
        assert_eq!(p.read_bytes(c.as_ptr(), 32).unwrap(), vec![0u8; 32]);
        crate::heap::check_invariants(&p).unwrap();
    }

    #[test]
    fn free_wild_faults() {
        let mut p = libc_proc();
        let err = free(&mut p, &[CVal::Ptr(simproc::layout::WILD_ADDR)]).unwrap_err();
        assert!(matches!(err, Fault::Segv { .. }));
    }
}
