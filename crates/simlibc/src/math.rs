//! `libsimm.so.1` — a small second shared library, so the application-
//! inspection demo (paper §3.2, Figure 4) has more than one `NEEDED`
//! entry to display and the system library list (§3.1) is non-trivial.

use simproc::{errno, CVal, Fault, Proc};

use crate::util::{arg, enter, ok_int};
use crate::SymbolDef;

/// Library name of the math library.
pub const MATH_LIB_NAME: &str = "libsimm.so.1";

/// `long mgcd(long a, long b);`
pub fn mgcd(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let mut a = arg(args, 0).as_int().wrapping_abs();
    let mut b = arg(args, 1).as_int().wrapping_abs();
    while b != 0 {
        p.consume_fuel(1)?;
        let t = b;
        b = a % b;
        a = t;
    }
    ok_int(a)
}

/// `long mpow(long base, long exp);` — wraps on overflow, loops on huge
/// exponents (fuel turns that into a hang, which the injector reports).
pub fn mpow(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let base = arg(args, 0).as_int();
    let exp = arg(args, 1).as_int();
    let mut acc = 1i64;
    let mut i = 0i64;
    while i < exp {
        p.consume_fuel(1)?;
        acc = acc.wrapping_mul(base);
        i += 1;
    }
    ok_int(acc)
}

/// `double msqrt(double x);` — Newton's method; negative input sets
/// `errno = EINVAL` and returns 0 (a graceful error, for contrast).
pub fn msqrt(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let x = arg(args, 0).as_f64();
    if x < 0.0 {
        p.set_errno(errno::EINVAL);
        return Ok(CVal::F64(0.0));
    }
    if x == 0.0 {
        return Ok(CVal::F64(0.0));
    }
    let mut guess = x.max(1.0);
    for _ in 0..64 {
        p.consume_fuel(1)?;
        let next = 0.5 * (guess + x / guess);
        if (next - guess).abs() < 1e-12 * guess {
            break;
        }
        guess = next;
    }
    Ok(CVal::F64(guess))
}

/// `double mnorm(const double *vec, size_t n);` — the library's fragile
/// pointer function: dereferences `vec` with no checks.
pub fn mnorm(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let vec = arg(args, 0).as_ptr();
    let n = arg(args, 1).as_usize();
    let mut sum = 0f64;
    let mut i = 0u64;
    while i < n {
        let bits = p.read_u64(vec.add(i * 8))?;
        let v = f64::from_bits(bits);
        sum += v * v;
        i += 1;
    }
    Ok(CVal::F64(sum.sqrt()))
}

/// `long mfact(long n);` — recursive factorial: deep recursion with a
/// huge `n` burns fuel (hang) and wraps (silent corruption).
pub fn mfact(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let n = arg(args, 0).as_int();
    let mut acc = 1i64;
    let mut i = 2i64;
    while i <= n {
        p.consume_fuel(1)?;
        acc = acc.wrapping_mul(i);
        i += 1;
    }
    ok_int(acc)
}

/// The math library's symbol table.
pub fn math_symbols() -> Vec<SymbolDef> {
    vec![
        SymbolDef { name: "mgcd", proto: "long mgcd(long a, long b);", imp: mgcd },
        SymbolDef { name: "mpow", proto: "long mpow(long base, long exp);", imp: mpow },
        SymbolDef { name: "msqrt", proto: "double msqrt(double x);", imp: msqrt },
        SymbolDef {
            name: "mnorm",
            proto: "double mnorm(const double *vec, size_t n);",
            imp: mnorm,
        },
        SymbolDef { name: "mfact", proto: "long mfact(long n);", imp: mfact },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::libc_proc;
    use simproc::layout::WILD_ADDR;

    #[test]
    fn gcd_pow_fact() {
        let mut p = libc_proc();
        assert_eq!(mgcd(&mut p, &[CVal::Int(12), CVal::Int(18)]).unwrap(), CVal::Int(6));
        assert_eq!(mgcd(&mut p, &[CVal::Int(-12), CVal::Int(18)]).unwrap(), CVal::Int(6));
        assert_eq!(mpow(&mut p, &[CVal::Int(2), CVal::Int(10)]).unwrap(), CVal::Int(1024));
        assert_eq!(mpow(&mut p, &[CVal::Int(2), CVal::Int(-5)]).unwrap(), CVal::Int(1));
        assert_eq!(mfact(&mut p, &[CVal::Int(5)]).unwrap(), CVal::Int(120));
    }

    #[test]
    fn sqrt_converges_and_rejects_negative() {
        let mut p = libc_proc();
        let v = msqrt(&mut p, &[CVal::F64(2.0)]).unwrap().as_f64();
        assert!((v - std::f64::consts::SQRT_2).abs() < 1e-9);
        assert_eq!(msqrt(&mut p, &[CVal::F64(0.0)]).unwrap().as_f64(), 0.0);
        let e = msqrt(&mut p, &[CVal::F64(-1.0)]).unwrap().as_f64();
        assert_eq!(e, 0.0);
        assert_eq!(p.errno(), errno::EINVAL);
    }

    #[test]
    fn norm_computes_and_crashes_on_wild() {
        let mut p = libc_proc();
        let mut bytes = Vec::new();
        for v in [3.0f64, 4.0] {
            bytes.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        let vec = p.alloc_data(&bytes);
        let v = mnorm(&mut p, &[CVal::Ptr(vec), CVal::Int(2)]).unwrap().as_f64();
        assert!((v - 5.0).abs() < 1e-12);
        assert!(matches!(
            mnorm(&mut p, &[CVal::Ptr(WILD_ADDR), CVal::Int(2)]).unwrap_err(),
            Fault::Segv { .. }
        ));
    }

    #[test]
    fn huge_exponent_hangs_under_fuel() {
        let mut p = libc_proc();
        p.set_fuel_limit(Some(p.cycles() + 1000));
        let err = mpow(&mut p, &[CVal::Int(2), CVal::Int(i64::MAX)]).unwrap_err();
        assert_eq!(err, Fault::Hang);
    }
}
