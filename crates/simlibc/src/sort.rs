//! `qsort` and `bsearch` — the functions that exercise function-pointer
//! parameters (the comparator is called through the simulated call table,
//! so a corrupted comparator pointer hijacks control flow).

use simproc::{CVal, Fault, Proc};

use crate::util::{arg, enter, ok_ptr};

/// `void qsort(void *base, size_t nmemb, size_t size,
///             int (*compar)(const void *, const void *));`
///
/// Sorts in place in simulated memory (insertion sort — quadratic, which
/// under a fuel budget faithfully turns absurd `nmemb` values into
/// hangs). The comparator is invoked with *addresses of the elements*,
/// like the real API.
pub fn qsort(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let base = arg(args, 0).as_ptr();
    let nmemb = arg(args, 1).as_usize();
    let size = arg(args, 2).as_usize();
    let compar = arg(args, 3).as_ptr();
    if nmemb <= 1 {
        if nmemb == 1 {
            // Still touches the element, like many implementations.
            p.read_bytes(base, size)?;
        }
        return Ok(CVal::Void);
    }
    // size == 0: the real qsort loops uselessly; do one comparator call
    // per pair so fuel accounts for it, then return.
    for i in 1..nmemb {
        let mut j = i;
        while j > 0 {
            let a = base.add((j - 1) * size);
            let b = base.add(j * size);
            let cmp = p.call_function(compar, &[CVal::Ptr(a), CVal::Ptr(b)])?;
            if cmp.as_int() <= 0 {
                break;
            }
            // Swap elements a and b through a host-side temp.
            let va = p.read_bytes(a, size)?;
            let vb = p.read_bytes(b, size)?;
            p.write_bytes(a, &vb)?;
            p.write_bytes(b, &va)?;
            j -= 1;
        }
    }
    Ok(CVal::Void)
}

/// `void *bsearch(const void *key, const void *base, size_t nmemb,
///                size_t size, int (*compar)(const void *, const void *));`
pub fn bsearch(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let key = arg(args, 0).as_ptr();
    let base = arg(args, 1).as_ptr();
    let nmemb = arg(args, 2).as_usize();
    let size = arg(args, 3).as_usize();
    let compar = arg(args, 4).as_ptr();
    let mut lo = 0u64;
    let mut hi = nmemb;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let elem = base.add(mid * size);
        let cmp = p.call_function(compar, &[CVal::Ptr(key), CVal::Ptr(elem)])?.as_int();
        if cmp == 0 {
            return ok_ptr(elem);
        }
        if cmp < 0 {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(CVal::NULL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::libc_proc;
    use simproc::VirtAddr;

    /// `int cmp_i32(const void *a, const void *b)` registered as an
    /// in-process function, like a compiled comparator in the app's text.
    fn cmp_i32(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
        let a = p.read_u32(args[0].as_ptr())? as i32;
        let b = p.read_u32(args[1].as_ptr())? as i32;
        Ok(CVal::Int((a - b) as i64))
    }

    fn setup(values: &[i32]) -> (Proc, VirtAddr, VirtAddr) {
        let mut p = libc_proc();
        let mut bytes = Vec::new();
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let base = p.alloc_data(&bytes);
        let cmp = p.register_host_fn("cmp_i32", cmp_i32);
        (p, base, cmp)
    }

    fn read_values(p: &mut Proc, base: VirtAddr, n: usize) -> Vec<i32> {
        (0..n).map(|i| p.read_u32(base.add(i as u64 * 4)).unwrap() as i32).collect()
    }

    #[test]
    fn qsort_sorts() {
        let (mut p, base, cmp) = setup(&[5, -1, 3, 3, 0, 42, 7]);
        qsort(&mut p, &[CVal::Ptr(base), CVal::Int(7), CVal::Int(4), CVal::Ptr(cmp)])
            .unwrap();
        assert_eq!(read_values(&mut p, base, 7), vec![-1, 0, 3, 3, 5, 7, 42]);
    }

    #[test]
    fn qsort_empty_and_single() {
        let (mut p, base, cmp) = setup(&[9]);
        qsort(&mut p, &[CVal::Ptr(base), CVal::Int(0), CVal::Int(4), CVal::Ptr(cmp)])
            .unwrap();
        qsort(&mut p, &[CVal::Ptr(base), CVal::Int(1), CVal::Int(4), CVal::Ptr(cmp)])
            .unwrap();
        assert_eq!(read_values(&mut p, base, 1), vec![9]);
    }

    #[test]
    fn qsort_wild_comparator_is_a_wild_jump() {
        let (mut p, base, _) = setup(&[2, 1]);
        let err = qsort(
            &mut p,
            &[
                CVal::Ptr(base),
                CVal::Int(2),
                CVal::Int(4),
                CVal::Ptr(VirtAddr::new(0x1234)),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, Fault::WildJump { .. }));
    }

    #[test]
    fn qsort_huge_nmemb_crashes_or_hangs() {
        let (mut p, base, cmp) = setup(&[1, 2]);
        p.set_fuel_limit(Some(p.cycles() + 200_000));
        let err =
            qsort(&mut p, &[CVal::Ptr(base), CVal::Int(-1), CVal::Int(4), CVal::Ptr(cmp)])
                .unwrap_err();
        assert!(matches!(err, Fault::Segv { .. } | Fault::Hang), "{err}");
    }

    #[test]
    fn bsearch_finds_and_misses() {
        let (mut p, base, cmp) = setup(&[2, 4, 6, 8, 10]);
        let key = p.alloc_data(&6i32.to_le_bytes());
        let hit = bsearch(
            &mut p,
            &[CVal::Ptr(key), CVal::Ptr(base), CVal::Int(5), CVal::Int(4), CVal::Ptr(cmp)],
        )
        .unwrap();
        assert_eq!(hit.as_ptr(), base.add(8));
        let missing = p.alloc_data(&5i32.to_le_bytes());
        let none = bsearch(
            &mut p,
            &[
                CVal::Ptr(missing),
                CVal::Ptr(base),
                CVal::Int(5),
                CVal::Int(4),
                CVal::Ptr(cmp),
            ],
        )
        .unwrap();
        assert!(none.is_null());
    }
}
