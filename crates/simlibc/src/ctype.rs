//! `<ctype.h>` — table-driven, with the classic table-indexing fragility.
//!
//! Real libcs classify via `__ctype_b[c]`, a table indexed from `-1` (EOF)
//! to `255`. Calling `isalpha(300)` or `isalpha(-42)` indexes out of the
//! table — undefined behaviour that Ballista famously caught crashing
//! several libcs. We reproduce it: the table sits at the **very end of
//! the read-only data segment**, so a large `c` walks off the mapping and
//! faults, while a small negative `c` silently reads adjacent garbage.

use simproc::layout::{RODATA_BASE, RODATA_SIZE};
use simproc::{CVal, Fault, Proc, VirtAddr};

use crate::state::CTYPE_TABLE_PTR;
use crate::util::{arg, enter, ok_int};

/// Classification flag bits stored in the table.
pub mod flags {
    /// Uppercase letter.
    pub const UPPER: u16 = 1 << 0;
    /// Lowercase letter.
    pub const LOWER: u16 = 1 << 1;
    /// Decimal digit.
    pub const DIGIT: u16 = 1 << 2;
    /// Whitespace.
    pub const SPACE: u16 = 1 << 3;
    /// Punctuation.
    pub const PUNCT: u16 = 1 << 4;
    /// Control character.
    pub const CNTRL: u16 = 1 << 5;
    /// Hex digit.
    pub const XDIGIT: u16 = 1 << 6;
    /// Blank (space or tab).
    pub const BLANK: u16 = 1 << 7;
    /// Printable (including space).
    pub const PRINT: u16 = 1 << 8;
}

/// Number of table entries: EOF (−1) through 255.
pub const TABLE_ENTRIES: u64 = 257;

/// The table's fixed base: flush against the end of rodata so
/// out-of-range positive indices fault.
pub fn table_base() -> VirtAddr {
    RODATA_BASE.add(RODATA_SIZE - TABLE_ENTRIES * 2)
}

fn classify_host(c: u8) -> u16 {
    use flags::*;
    let ch = c as char;
    let mut f = 0u16;
    if ch.is_ascii_uppercase() {
        f |= UPPER;
    }
    if ch.is_ascii_lowercase() {
        f |= LOWER;
    }
    if ch.is_ascii_digit() {
        f |= DIGIT;
    }
    if ch.is_ascii_whitespace() || c == 0x0b {
        f |= SPACE;
    }
    if ch.is_ascii_punctuation() {
        f |= PUNCT;
    }
    if ch.is_ascii_control() {
        f |= CNTRL;
    }
    if ch.is_ascii_hexdigit() {
        f |= XDIGIT;
    }
    if c == b' ' || c == b'\t' {
        f |= BLANK;
    }
    if ch.is_ascii_graphic() || c == b' ' {
        f |= PRINT;
    }
    f
}

/// Writes the classification table into rodata and records its base.
/// Called once by library initialisation.
pub fn init_ctype_table(p: &mut Proc) -> Result<(), Fault> {
    let base = table_base();
    let mut bytes = Vec::with_capacity(TABLE_ENTRIES as usize * 2);
    bytes.extend_from_slice(&0u16.to_le_bytes()); // EOF entry
    for c in 0u16..=255 {
        bytes.extend_from_slice(&classify_host(c as u8).to_le_bytes());
    }
    assert!(p.mem.poke_bytes(base, &bytes), "rodata must be mapped");
    p.mem.write_u64(CTYPE_TABLE_PTR, base.get())?;
    Ok(())
}

/// The raw table lookup every `is*` function performs — with no range
/// check, like the real macro.
fn lookup(p: &mut Proc, c: i64) -> Result<u16, Fault> {
    let base = VirtAddr::new(p.read_u64(CTYPE_TABLE_PTR)?);
    let slot = base.offset(c.wrapping_add(1).wrapping_mul(2));
    let lo = p.read_u8(slot)?;
    let hi = p.read_u8(slot.add(1))?;
    Ok(u16::from_le_bytes([lo, hi]))
}

fn is_fn(p: &mut Proc, args: &[CVal], mask: u16) -> Result<CVal, Fault> {
    enter(p)?;
    let c = arg(args, 0).as_int();
    ok_int((lookup(p, c)? & mask != 0) as i64)
}

/// `int isalpha(int c);`
pub fn isalpha(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    is_fn(p, args, flags::UPPER | flags::LOWER)
}

/// `int isupper(int c);`
pub fn isupper(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    is_fn(p, args, flags::UPPER)
}

/// `int islower(int c);`
pub fn islower(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    is_fn(p, args, flags::LOWER)
}

/// `int isdigit(int c);`
pub fn isdigit(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    is_fn(p, args, flags::DIGIT)
}

/// `int isxdigit(int c);`
pub fn isxdigit(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    is_fn(p, args, flags::XDIGIT)
}

/// `int isalnum(int c);`
pub fn isalnum(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    is_fn(p, args, flags::UPPER | flags::LOWER | flags::DIGIT)
}

/// `int isspace(int c);`
pub fn isspace(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    is_fn(p, args, flags::SPACE)
}

/// `int isblank(int c);`
pub fn isblank(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    is_fn(p, args, flags::BLANK)
}

/// `int ispunct(int c);`
pub fn ispunct(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    is_fn(p, args, flags::PUNCT)
}

/// `int iscntrl(int c);`
pub fn iscntrl(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    is_fn(p, args, flags::CNTRL)
}

/// `int isprint(int c);`
pub fn isprint(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    is_fn(p, args, flags::PRINT)
}

/// `int isgraph(int c);`
pub fn isgraph(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let c = arg(args, 0).as_int();
    let f = lookup(p, c)?;
    ok_int((f & flags::PRINT != 0 && c != b' ' as i64) as i64)
}

/// `int isascii(int c);` — pure arithmetic, robust for any input (one of
/// the few; the injector should find no crashes here).
pub fn isascii(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let c = arg(args, 0).as_int();
    ok_int(((0..=127).contains(&c)) as i64)
}

/// `int tolower(int c);`
pub fn tolower(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let c = arg(args, 0).as_int();
    if lookup(p, c)? & flags::UPPER != 0 {
        ok_int(c + 32)
    } else {
        ok_int(c)
    }
}

/// `int toupper(int c);`
pub fn toupper(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let c = arg(args, 0).as_int();
    if lookup(p, c)? & flags::LOWER != 0 {
        ok_int(c - 32)
    } else {
        ok_int(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::libc_proc;

    #[test]
    fn classifications_match_ascii() {
        let mut p = libc_proc();
        type IsFn = fn(&mut Proc, &[CVal]) -> Result<CVal, Fault>;
        let cases: &[(IsFn, u8, i64)] = &[
            (isalpha as _, b'a', 1),
            (isalpha as _, b'1', 0),
            (isdigit as _, b'7', 1),
            (isdigit as _, b'x', 0),
            (isspace as _, b' ', 1),
            (isspace as _, b'\n', 1),
            (isupper as _, b'Q', 1),
            (islower as _, b'q', 1),
            (ispunct as _, b'!', 1),
            (iscntrl as _, 0x07, 1),
            (isxdigit as _, b'f', 1),
            (isxdigit as _, b'g', 0),
            (isalnum as _, b'z', 1),
            (isprint as _, b' ', 1),
            (isgraph as _, b' ', 0),
            (isgraph as _, b'#', 1),
            (isblank as _, b'\t', 1),
        ];
        for &(f, ch, expect) in cases {
            let r = f(&mut p, &[CVal::Int(ch as i64)]).unwrap();
            assert_eq!(r, CVal::Int(expect), "char {ch:?}");
        }
    }

    #[test]
    fn eof_is_classified_as_nothing() {
        let mut p = libc_proc();
        assert_eq!(isalpha(&mut p, &[CVal::Int(-1)]).unwrap(), CVal::Int(0));
        assert_eq!(isspace(&mut p, &[CVal::Int(-1)]).unwrap(), CVal::Int(0));
    }

    #[test]
    fn tolower_toupper_transform() {
        let mut p = libc_proc();
        assert_eq!(
            tolower(&mut p, &[CVal::Int(b'A' as i64)]).unwrap(),
            CVal::Int(b'a' as i64)
        );
        assert_eq!(
            tolower(&mut p, &[CVal::Int(b'a' as i64)]).unwrap(),
            CVal::Int(b'a' as i64)
        );
        assert_eq!(
            toupper(&mut p, &[CVal::Int(b'a' as i64)]).unwrap(),
            CVal::Int(b'A' as i64)
        );
        assert_eq!(
            toupper(&mut p, &[CVal::Int(b'#' as i64)]).unwrap(),
            CVal::Int(b'#' as i64)
        );
    }

    #[test]
    fn large_positive_argument_faults_off_the_table() {
        // The Ballista-style robustness failure this module exists for.
        let mut p = libc_proc();
        let err = isalpha(&mut p, &[CVal::Int(100_000)]).unwrap_err();
        assert!(matches!(err, Fault::Segv { .. }), "{err}");
    }

    #[test]
    fn small_negative_argument_reads_garbage_silently() {
        let mut p = libc_proc();
        // In range of rodata but before the table: silent wrong answer,
        // not a crash — also faithful.
        let r = isalpha(&mut p, &[CVal::Int(-200)]).unwrap();
        assert_eq!(r, CVal::Int(0));
    }

    #[test]
    fn hugely_negative_argument_faults() {
        let mut p = libc_proc();
        let err = isalpha(&mut p, &[CVal::Int(-10_000_000)]).unwrap_err();
        assert!(matches!(err, Fault::Segv { .. }));
    }

    #[test]
    fn isascii_is_robust_for_all_inputs() {
        let mut p = libc_proc();
        for c in [-1_000_000i64, -1, 0, 65, 127, 128, 1_000_000] {
            let r = isascii(&mut p, &[CVal::Int(c)]).unwrap();
            assert_eq!(r, CVal::Int((0..=127).contains(&c) as i64));
        }
    }
}
