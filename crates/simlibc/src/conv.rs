//! `<stdlib.h>` numeric conversions and integer arithmetic.

use simproc::{errno, CVal, Fault, Proc, VirtAddr};

use crate::util::{arg, enter, ok_int};

fn is_space(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\n' | b'\r' | 0x0b | 0x0c)
}

/// Shared integer scanner. Returns (value, end address, overflowed).
fn scan_int(p: &mut Proc, s: VirtAddr, base: u32) -> Result<(i128, VirtAddr, bool), Fault> {
    let mut cur = s;
    while is_space(p.read_u8(cur)?) {
        cur = cur.add(1);
    }
    let mut neg = false;
    match p.read_u8(cur)? {
        b'-' => {
            neg = true;
            cur = cur.add(1);
        }
        b'+' => cur = cur.add(1),
        _ => {}
    }
    let mut base = base;
    if base == 0 {
        let b0 = p.read_u8(cur)?;
        if b0 == b'0' {
            let b1 = p.read_u8(cur.add(1))?;
            if b1 == b'x' || b1 == b'X' {
                base = 16;
                cur = cur.add(2);
            } else {
                base = 8;
                cur = cur.add(1);
            }
        } else {
            base = 10;
        }
    } else if base == 16 {
        // Optional 0x prefix.
        if p.read_u8(cur)? == b'0' {
            let b1 = p.read_u8(cur.add(1))?;
            if b1 == b'x' || b1 == b'X' {
                cur = cur.add(2);
            }
        }
    }
    let mut value: i128 = 0;
    let mut any = false;
    let mut overflow = false;
    loop {
        let b = p.read_u8(cur)?;
        let digit = match b {
            b'0'..=b'9' => (b - b'0') as u32,
            b'a'..=b'z' => (b - b'a' + 10) as u32,
            b'A'..=b'Z' => (b - b'A' + 10) as u32,
            _ => break,
        };
        if digit >= base {
            break;
        }
        any = true;
        value = value.saturating_mul(base as i128).saturating_add(digit as i128);
        if value > u64::MAX as i128 {
            overflow = true;
            value = u64::MAX as i128;
        }
        cur = cur.add(1);
    }
    if !any {
        // No digits: endptr stays at the original string.
        return Ok((0, s, false));
    }
    Ok((if neg { -value } else { value }, cur, overflow))
}

/// `int atoi(const char *nptr);` — no error reporting, like the classic.
pub fn atoi(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let (v, _, _) = scan_int(p, arg(args, 0).as_ptr(), 10)?;
    ok_int(v as i32 as i64)
}

/// `long atol(const char *nptr);`
pub fn atol(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let (v, _, _) = scan_int(p, arg(args, 0).as_ptr(), 10)?;
    ok_int(v as i64)
}

/// `long long atoll(const char *nptr);`
pub fn atoll(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    atol(p, args)
}

/// `long strtol(const char *nptr, char **endptr, int base);`
pub fn strtol(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s = arg(args, 0).as_ptr();
    let endptr = arg(args, 1).as_ptr();
    let base = arg(args, 2).as_int();
    if base != 0 && !(2..=36).contains(&base) {
        p.set_errno(errno::EINVAL);
        if !endptr.is_null() {
            p.write_ptr(endptr, s)?;
        }
        return ok_int(0);
    }
    let (v, end, overflow) = scan_int(p, s, base as u32)?;
    if !endptr.is_null() {
        p.write_ptr(endptr, end)?; // wild endptr faults here — faithful
    }
    let clamped = if overflow || v > i64::MAX as i128 {
        p.set_errno(errno::ERANGE);
        i64::MAX
    } else if v < i64::MIN as i128 {
        p.set_errno(errno::ERANGE);
        i64::MIN
    } else {
        v as i64
    };
    ok_int(clamped)
}

/// `unsigned long strtoul(const char *nptr, char **endptr, int base);`
pub fn strtoul(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s = arg(args, 0).as_ptr();
    let endptr = arg(args, 1).as_ptr();
    let base = arg(args, 2).as_int();
    if base != 0 && !(2..=36).contains(&base) {
        p.set_errno(errno::EINVAL);
        if !endptr.is_null() {
            p.write_ptr(endptr, s)?;
        }
        return ok_int(0);
    }
    let (v, end, overflow) = scan_int(p, s, base as u32)?;
    if !endptr.is_null() {
        p.write_ptr(endptr, end)?;
    }
    let out = if overflow {
        p.set_errno(errno::ERANGE);
        u64::MAX
    } else if v < 0 {
        // strtoul negates, per the standard.
        (v as i64) as u64
    } else {
        v as u64
    };
    ok_int(out as i64)
}

/// Shared float scanner for `strtod`/`atof` (decimal + exponent only).
fn scan_double(p: &mut Proc, s: VirtAddr) -> Result<(f64, VirtAddr), Fault> {
    let mut cur = s;
    while is_space(p.read_u8(cur)?) {
        cur = cur.add(1);
    }
    let mut neg = false;
    match p.read_u8(cur)? {
        b'-' => {
            neg = true;
            cur = cur.add(1);
        }
        b'+' => cur = cur.add(1),
        _ => {}
    }
    let mut int_part = 0f64;
    let mut any = false;
    loop {
        let b = p.read_u8(cur)?;
        if !b.is_ascii_digit() {
            break;
        }
        any = true;
        int_part = int_part * 10.0 + (b - b'0') as f64;
        cur = cur.add(1);
    }
    let mut value = int_part;
    if p.read_u8(cur)? == b'.' {
        cur = cur.add(1);
        let mut scale = 0.1;
        loop {
            let b = p.read_u8(cur)?;
            if !b.is_ascii_digit() {
                break;
            }
            any = true;
            value += (b - b'0') as f64 * scale;
            scale *= 0.1;
            cur = cur.add(1);
        }
    }
    if !any {
        return Ok((0.0, s));
    }
    let b = p.read_u8(cur)?;
    if b == b'e' || b == b'E' {
        let mut ecur = cur.add(1);
        let mut eneg = false;
        match p.read_u8(ecur)? {
            b'-' => {
                eneg = true;
                ecur = ecur.add(1);
            }
            b'+' => ecur = ecur.add(1),
            _ => {}
        }
        let mut exp = 0i32;
        let mut eany = false;
        loop {
            let b = p.read_u8(ecur)?;
            if !b.is_ascii_digit() {
                break;
            }
            eany = true;
            exp = exp.saturating_mul(10).saturating_add((b - b'0') as i32);
            ecur = ecur.add(1);
        }
        if eany {
            cur = ecur;
            value *= 10f64.powi(if eneg { -exp } else { exp });
        }
    }
    Ok((if neg { -value } else { value }, cur))
}

/// `double strtod(const char *nptr, char **endptr);`
pub fn strtod(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s = arg(args, 0).as_ptr();
    let endptr = arg(args, 1).as_ptr();
    let (v, end) = scan_double(p, s)?;
    if !endptr.is_null() {
        p.write_ptr(endptr, end)?;
    }
    Ok(CVal::F64(v))
}

/// `double atof(const char *nptr);`
pub fn atof(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let (v, _) = scan_double(p, arg(args, 0).as_ptr())?;
    Ok(CVal::F64(v))
}

/// `int abs(int j);` — `abs(INT_MIN)` wraps, faithfully undefined.
pub fn abs(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let j = arg(args, 0).as_int() as i32;
    ok_int(j.wrapping_abs() as i64)
}

/// `long labs(long j);`
pub fn labs(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    ok_int(arg(args, 0).as_int().wrapping_abs())
}

/// `long long llabs(long long j);`
pub fn llabs(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    labs(p, args)
}

/// Packs a quotient/remainder pair the way the SysV ABI returns small
/// structs in a register: quotient in the low 32 bits, remainder in the
/// high 32 bits. [`unpack_div`] is the host-side accessor.
pub fn pack_div(quot: i32, rem: i32) -> i64 {
    ((rem as i64) << 32) | (quot as u32 as i64)
}

/// Unpacks a [`pack_div`] value into `(quot, rem)`.
pub fn unpack_div(v: i64) -> (i32, i32) {
    (v as i32, (v >> 32) as i32)
}

/// `div_t div(int numerator, int denominator);` — division by zero traps
/// (SIGFPE), the genuine article.
pub fn div(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let n = arg(args, 0).as_int() as i32;
    let d = arg(args, 1).as_int() as i32;
    if d == 0 {
        return Err(Fault::DivByZero { context: "div".into() });
    }
    ok_int(pack_div(n.wrapping_div(d), n.wrapping_rem(d)))
}

/// `ldiv_t ldiv(long numerator, long denominator);` — full 64-bit
/// division; only the quotient is returned in the packed value's low
/// half when it exceeds 32 bits (documented packing deviation).
pub fn ldiv(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let n = arg(args, 0).as_int();
    let d = arg(args, 1).as_int();
    if d == 0 {
        return Err(Fault::DivByZero { context: "ldiv".into() });
    }
    ok_int(pack_div(n.wrapping_div(d) as i32, n.wrapping_rem(d) as i32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::libc_proc;
    use simproc::layout::WILD_ADDR;

    #[test]
    fn atoi_parses() {
        let mut p = libc_proc();
        for (text, expect) in [
            ("42", 42i64),
            ("  -17", -17),
            ("+8ab", 8),
            ("junk", 0),
            ("", 0),
            ("2147483647", i32::MAX as i64),
        ] {
            let s = p.alloc_cstr(text);
            assert_eq!(
                atoi(&mut p, &[CVal::Ptr(s)]).unwrap(),
                CVal::Int(expect),
                "{text:?}"
            );
        }
    }

    #[test]
    fn atoi_crashes_on_null() {
        let mut p = libc_proc();
        assert!(matches!(atoi(&mut p, &[CVal::NULL]).unwrap_err(), Fault::Segv { .. }));
    }

    #[test]
    fn strtol_bases_and_endptr() {
        let mut p = libc_proc();
        let s = p.alloc_cstr("0x1fz");
        let endp = p.alloc_data_zeroed(8);
        let v = strtol(&mut p, &[CVal::Ptr(s), CVal::Ptr(endp), CVal::Int(0)]).unwrap();
        assert_eq!(v, CVal::Int(0x1f));
        let end = p.read_ptr(endp).unwrap();
        assert_eq!(p.read_cstr_lossy(end), "z");

        let oct = p.alloc_cstr("0755");
        let v = strtol(&mut p, &[CVal::Ptr(oct), CVal::NULL, CVal::Int(0)]).unwrap();
        assert_eq!(v, CVal::Int(0o755));

        let b36 = p.alloc_cstr("zz");
        let v = strtol(&mut p, &[CVal::Ptr(b36), CVal::NULL, CVal::Int(36)]).unwrap();
        assert_eq!(v, CVal::Int(35 * 36 + 35));
    }

    #[test]
    fn strtol_range_and_einval() {
        let mut p = libc_proc();
        let big = p.alloc_cstr("999999999999999999999999999");
        let v = strtol(&mut p, &[CVal::Ptr(big), CVal::NULL, CVal::Int(10)]).unwrap();
        assert_eq!(v, CVal::Int(i64::MAX));
        assert_eq!(p.errno(), errno::ERANGE);

        p.set_errno(0);
        let s = p.alloc_cstr("5");
        let v = strtol(&mut p, &[CVal::Ptr(s), CVal::NULL, CVal::Int(99)]).unwrap();
        assert_eq!(v, CVal::Int(0));
        assert_eq!(p.errno(), errno::EINVAL);
    }

    #[test]
    fn strtol_wild_endptr_faults() {
        let mut p = libc_proc();
        let s = p.alloc_cstr("12");
        let err = strtol(&mut p, &[CVal::Ptr(s), CVal::Ptr(WILD_ADDR), CVal::Int(10)])
            .unwrap_err();
        assert!(matches!(err, Fault::Segv { .. }));
    }

    #[test]
    fn strtoul_negation() {
        let mut p = libc_proc();
        let s = p.alloc_cstr("-1");
        let v = strtoul(&mut p, &[CVal::Ptr(s), CVal::NULL, CVal::Int(10)]).unwrap();
        assert_eq!(v.as_usize(), u64::MAX);
    }

    #[test]
    fn strtod_parses_floats() {
        let mut p = libc_proc();
        for (text, expect) in [
            ("3.5", 3.5f64),
            ("-0.25", -0.25),
            ("1e3", 1000.0),
            ("2.5e-2", 0.025),
            ("nonsense", 0.0),
        ] {
            let s = p.alloc_cstr(text);
            let v = strtod(&mut p, &[CVal::Ptr(s), CVal::NULL]).unwrap();
            assert!((v.as_f64() - expect).abs() < 1e-12, "{text}: {v}");
        }
        let s = p.alloc_cstr("1.5suffix");
        let endp = p.alloc_data_zeroed(8);
        strtod(&mut p, &[CVal::Ptr(s), CVal::Ptr(endp)]).unwrap();
        let end = p.read_ptr(endp).unwrap();
        assert_eq!(p.read_cstr_lossy(end), "suffix");
    }

    #[test]
    fn abs_family() {
        let mut p = libc_proc();
        assert_eq!(abs(&mut p, &[CVal::Int(-5)]).unwrap(), CVal::Int(5));
        assert_eq!(abs(&mut p, &[CVal::Int(5)]).unwrap(), CVal::Int(5));
        // The classic UB: abs(INT_MIN) == INT_MIN.
        assert_eq!(
            abs(&mut p, &[CVal::Int(i32::MIN as i64)]).unwrap(),
            CVal::Int(i32::MIN as i64)
        );
        assert_eq!(labs(&mut p, &[CVal::Int(-9)]).unwrap(), CVal::Int(9));
        assert_eq!(llabs(&mut p, &[CVal::Int(i64::MIN)]).unwrap(), CVal::Int(i64::MIN));
    }

    #[test]
    fn div_packs_quot_rem() {
        let mut p = libc_proc();
        let v = div(&mut p, &[CVal::Int(17), CVal::Int(5)]).unwrap();
        assert_eq!(unpack_div(v.as_int()), (3, 2));
        let v = div(&mut p, &[CVal::Int(-17), CVal::Int(5)]).unwrap();
        assert_eq!(unpack_div(v.as_int()), (-3, -2));
    }

    #[test]
    fn div_by_zero_traps() {
        let mut p = libc_proc();
        let err = div(&mut p, &[CVal::Int(1), CVal::Int(0)]).unwrap_err();
        assert!(matches!(err, Fault::DivByZero { .. }));
        let err = ldiv(&mut p, &[CVal::Int(1), CVal::Int(0)]).unwrap_err();
        assert!(matches!(err, Fault::DivByZero { .. }));
    }
}
