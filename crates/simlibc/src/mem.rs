//! `<string.h>` memory functions (`mem*`, plus the BSD legacy pair).

use simproc::{CVal, Fault, Proc};

use crate::util::{arg, enter, ok_int, ok_ptr};

/// `void *memcpy(void *dest, const void *src, size_t n);` — copies
/// forward, so overlapping ranges corrupt, exactly like the classic.
pub fn memcpy(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let dest = arg(args, 0).as_ptr();
    let src = arg(args, 1).as_ptr();
    let n = arg(args, 2).as_usize();
    let mut i = 0u64;
    while i < n {
        let b = p.read_u8(src.add(i))?;
        p.write_u8(dest.add(i), b)?;
        i += 1;
    }
    ok_ptr(dest)
}

/// `void *mempcpy(void *dest, const void *src, size_t n);`
pub fn mempcpy(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    let dest = arg(args, 0).as_ptr();
    let n = arg(args, 2).as_usize();
    memcpy(p, args)?;
    ok_ptr(dest.add(n))
}

/// `void *memmove(void *dest, const void *src, size_t n);` — handles
/// overlap correctly (memmove always did).
pub fn memmove(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let dest = arg(args, 0).as_ptr();
    let src = arg(args, 1).as_ptr();
    let n = arg(args, 2).as_usize();
    if dest <= src || src.add(n) <= dest {
        let mut i = 0u64;
        while i < n {
            let b = p.read_u8(src.add(i))?;
            p.write_u8(dest.add(i), b)?;
            i += 1;
        }
    } else {
        let mut i = n;
        while i > 0 {
            i -= 1;
            let b = p.read_u8(src.add(i))?;
            p.write_u8(dest.add(i), b)?;
        }
    }
    ok_ptr(dest)
}

/// `void *memset(void *s, int c, size_t n);`
pub fn memset(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s = arg(args, 0).as_ptr();
    let c = arg(args, 1).as_int() as u8;
    let n = arg(args, 2).as_usize();
    let mut i = 0u64;
    while i < n {
        p.write_u8(s.add(i), c)?;
        i += 1;
    }
    ok_ptr(s)
}

/// `int memcmp(const void *s1, const void *s2, size_t n);`
pub fn memcmp(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s1 = arg(args, 0).as_ptr();
    let s2 = arg(args, 1).as_ptr();
    let n = arg(args, 2).as_usize();
    let mut i = 0u64;
    while i < n {
        let a = p.read_u8(s1.add(i))?;
        let b = p.read_u8(s2.add(i))?;
        if a != b {
            return ok_int(a as i64 - b as i64);
        }
        i += 1;
    }
    ok_int(0)
}

/// `void *memchr(const void *s, int c, size_t n);`
pub fn memchr(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s = arg(args, 0).as_ptr();
    let c = arg(args, 1).as_int() as u8;
    let n = arg(args, 2).as_usize();
    let mut i = 0u64;
    while i < n {
        if p.read_u8(s.add(i))? == c {
            return ok_ptr(s.add(i));
        }
        i += 1;
    }
    Ok(CVal::NULL)
}

/// `void bzero(void *s, size_t n);` (legacy BSD)
pub fn bzero(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    memset(p, &[arg(args, 0), CVal::Int(0), arg(args, 1)])?;
    Ok(CVal::Void)
}

/// `void bcopy(const void *src, void *dest, size_t n);` (legacy BSD —
/// note the swapped argument order)
pub fn bcopy(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    memmove(p, &[arg(args, 1), arg(args, 0), arg(args, 2)])?;
    Ok(CVal::Void)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::libc_proc;
    use simproc::layout::WILD_ADDR;

    #[test]
    fn memcpy_roundtrip() {
        let mut p = libc_proc();
        let src = p.alloc_data(b"12345678");
        let dst = p.alloc_data_zeroed(8);
        let r = memcpy(&mut p, &[CVal::Ptr(dst), CVal::Ptr(src), CVal::Int(8)]).unwrap();
        assert_eq!(r.as_ptr(), dst);
        assert_eq!(p.read_bytes(dst, 8).unwrap(), b"12345678");
    }

    #[test]
    fn mempcpy_returns_end() {
        let mut p = libc_proc();
        let src = p.alloc_data(b"abc");
        let dst = p.alloc_data_zeroed(3);
        let r = mempcpy(&mut p, &[CVal::Ptr(dst), CVal::Ptr(src), CVal::Int(3)]).unwrap();
        assert_eq!(r.as_ptr(), dst.add(3));
    }

    #[test]
    fn memmove_handles_overlap_both_directions() {
        let mut p = libc_proc();
        let buf = p.alloc_data(b"abcdef\0\0");
        // Shift right by 2 within the same buffer.
        memmove(&mut p, &[CVal::Ptr(buf.add(2)), CVal::Ptr(buf), CVal::Int(6)]).unwrap();
        assert_eq!(p.read_bytes(buf, 8).unwrap(), b"ababcdef");
        // Shift left by 2.
        memmove(&mut p, &[CVal::Ptr(buf), CVal::Ptr(buf.add(2)), CVal::Int(6)]).unwrap();
        assert_eq!(p.read_bytes(buf, 6).unwrap(), b"abcdef");
    }

    #[test]
    fn memcpy_with_overlap_corrupts_like_the_classic() {
        let mut p = libc_proc();
        let buf = p.alloc_data(b"abcdef\0\0");
        memcpy(&mut p, &[CVal::Ptr(buf.add(2)), CVal::Ptr(buf), CVal::Int(6)]).unwrap();
        // Forward copy propagates the first two bytes over everything.
        assert_eq!(p.read_bytes(buf, 8).unwrap(), b"abababab".as_slice());
    }

    #[test]
    fn memset_and_memcmp_and_memchr() {
        let mut p = libc_proc();
        let a = p.alloc_data_zeroed(8);
        memset(&mut p, &[CVal::Ptr(a), CVal::Int(0x2A), CVal::Int(8)]).unwrap();
        assert_eq!(p.read_bytes(a, 8).unwrap(), vec![0x2A; 8]);
        let b = p.alloc_data(&[0x2A; 8]);
        assert_eq!(
            memcmp(&mut p, &[CVal::Ptr(a), CVal::Ptr(b), CVal::Int(8)]).unwrap(),
            CVal::Int(0)
        );
        p.write_u8(b.add(4), 0x2B).unwrap();
        assert!(
            memcmp(&mut p, &[CVal::Ptr(a), CVal::Ptr(b), CVal::Int(8)]).unwrap().as_int()
                < 0
        );
        let hit = memchr(&mut p, &[CVal::Ptr(b), CVal::Int(0x2B), CVal::Int(8)]).unwrap();
        assert_eq!(hit.as_ptr(), b.add(4));
        let miss = memchr(&mut p, &[CVal::Ptr(b), CVal::Int(0x77), CVal::Int(8)]).unwrap();
        assert!(miss.is_null());
    }

    #[test]
    fn legacy_bzero_bcopy() {
        let mut p = libc_proc();
        let a = p.alloc_data(&[1u8; 8]);
        bzero(&mut p, &[CVal::Ptr(a), CVal::Int(8)]).unwrap();
        assert_eq!(p.read_bytes(a, 8).unwrap(), vec![0u8; 8]);
        let src = p.alloc_data(b"xy");
        bcopy(&mut p, &[CVal::Ptr(src), CVal::Ptr(a), CVal::Int(2)]).unwrap();
        assert_eq!(p.read_bytes(a, 2).unwrap(), b"xy");
    }

    #[test]
    fn huge_size_argument_faults() {
        // memcpy(dst, src, (size_t)-1) — a Ballista classic.
        let mut p = libc_proc();
        let src = p.alloc_data(b"x");
        let dst = p.alloc_data_zeroed(1);
        p.set_fuel_limit(Some(p.cycles() + 100_000_000));
        let err =
            memcpy(&mut p, &[CVal::Ptr(dst), CVal::Ptr(src), CVal::Int(-1)]).unwrap_err();
        assert!(matches!(err, Fault::Segv { .. } | Fault::Hang), "{err}");
    }

    #[test]
    fn wild_pointers_fault() {
        let mut p = libc_proc();
        let ok = p.alloc_data_zeroed(4);
        for f in [memcpy, memmove, memcmp] {
            let err = f(&mut p, &[CVal::Ptr(ok), CVal::Ptr(WILD_ADDR), CVal::Int(4)])
                .unwrap_err();
            assert!(matches!(err, Fault::Segv { .. }));
        }
    }
}
