//! Library/process initialisation: the work the dynamic loader and libc
//! startup code do before `main`.

use simproc::{Fault, Proc};

use crate::{ctype, env, heap, math, symbols};

/// Initialises C-library state inside a fresh process: heap arena, ctype
/// table, empty atexit table.
///
/// # Errors
///
/// Propagates faults (none expected on a fresh image).
pub fn init_libc(p: &mut Proc) -> Result<(), Fault> {
    heap::init_heap(p)?;
    ctype::init_ctype_table(p)?;
    Ok(())
}

/// [`init_libc`] plus an initial environment block.
///
/// # Errors
///
/// Propagates faults (none expected on a fresh image).
pub fn init_libc_with_env(p: &mut Proc, vars: &[(&str, &str)]) -> Result<(), Fault> {
    init_libc(p)?;
    env::init_env(p, vars)
}

/// Builds a ready-to-run process: standard layout, initialised libc, a
/// default environment, and every libc + libm symbol registered in the
/// call table (so function pointers to library functions resolve).
pub fn init_process() -> Proc {
    let mut p = Proc::new();
    init_libc_with_env(
        &mut p,
        &[("PATH", "/bin:/usr/bin"), ("HOME", "/root"), ("TERM", "vt100")],
    )
    .expect("fresh image cannot fault");
    for sym in symbols().iter().chain(math::math_symbols().iter()) {
        p.register_host_fn(sym.name, sym.imp);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_process_is_ready() {
        let mut p = init_process();
        crate::heap::check_invariants(&p).unwrap();
        // Library functions are callable through their text addresses.
        let strlen_addr = p.funcs.addr_of(p.funcs.id_of("strlen").unwrap());
        let s = p.alloc_cstr("four");
        let r = p.call_function(strlen_addr, &[simproc::CVal::Ptr(s)]).unwrap();
        assert_eq!(r, simproc::CVal::Int(4));
    }

    #[test]
    fn init_process_has_environment() {
        let mut p = init_process();
        let name = p.alloc_cstr("PATH");
        let v = crate::env::getenv(&mut p, &[simproc::CVal::Ptr(name)]).unwrap();
        assert_eq!(p.read_cstr_lossy(v.as_ptr()), "/bin:/usr/bin");
    }
}
