//! `<string.h>` — implemented with the fragility profile of a 2003 libc.
//!
//! No function here validates its pointers: `strcpy` happily writes past
//! the end of any destination, `strlen` scans until it faults, `strcat`
//! of a wild pointer dereferences it. That is the point — these are the
//! behaviours the fault injector discovers and the generated wrappers
//! contain.

use simproc::{errno, CVal, Fault, Proc, VirtAddr};

use crate::heap;
use crate::state::{STRERROR_BUF, STRTOK_SAVE};
use crate::util::{arg, enter, lower, ok_int, ok_ptr};

/// `size_t strlen(const char *s);`
pub fn strlen(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s = arg(args, 0).as_ptr();
    let mut n = 0i64;
    let mut cur = s;
    while p.read_u8(cur)? != 0 {
        n += 1;
        cur = cur.add(1);
    }
    ok_int(n)
}

/// `size_t strnlen(const char *s, size_t maxlen);`
pub fn strnlen(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s = arg(args, 0).as_ptr();
    let maxlen = arg(args, 1).as_usize();
    let mut n = 0u64;
    let mut cur = s;
    while n < maxlen && p.read_u8(cur)? != 0 {
        n += 1;
        cur = cur.add(1);
    }
    ok_int(n as i64)
}

/// `char *strcpy(char *dest, const char *src);` — the unbounded classic.
pub fn strcpy(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let dest = arg(args, 0).as_ptr();
    let src = arg(args, 1).as_ptr();
    let mut i = 0u64;
    loop {
        let b = p.read_u8(src.add(i))?;
        p.write_u8(dest.add(i), b)?;
        if b == 0 {
            return ok_ptr(dest);
        }
        i += 1;
    }
}

/// `char *strncpy(char *dest, const char *src, size_t n);` — pads with
/// NULs, may leave the destination unterminated (faithfully).
pub fn strncpy(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let dest = arg(args, 0).as_ptr();
    let src = arg(args, 1).as_ptr();
    let n = arg(args, 2).as_usize();
    let mut i = 0u64;
    while i < n {
        let b = p.read_u8(src.add(i))?;
        p.write_u8(dest.add(i), b)?;
        i += 1;
        if b == 0 {
            break;
        }
    }
    while i < n {
        p.write_u8(dest.add(i), 0)?;
        i += 1;
    }
    ok_ptr(dest)
}

/// `char *strcat(char *dest, const char *src);`
pub fn strcat(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let dest = arg(args, 0).as_ptr();
    let src = arg(args, 1).as_ptr();
    let mut d = dest;
    while p.read_u8(d)? != 0 {
        d = d.add(1);
    }
    let mut i = 0u64;
    loop {
        let b = p.read_u8(src.add(i))?;
        p.write_u8(d.add(i), b)?;
        if b == 0 {
            return ok_ptr(dest);
        }
        i += 1;
    }
}

/// `char *strncat(char *dest, const char *src, size_t n);`
pub fn strncat(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let dest = arg(args, 0).as_ptr();
    let src = arg(args, 1).as_ptr();
    let n = arg(args, 2).as_usize();
    let mut d = dest;
    while p.read_u8(d)? != 0 {
        d = d.add(1);
    }
    let mut i = 0u64;
    while i < n {
        let b = p.read_u8(src.add(i))?;
        if b == 0 {
            break;
        }
        p.write_u8(d.add(i), b)?;
        i += 1;
    }
    p.write_u8(d.add(i), 0)?;
    ok_ptr(dest)
}

fn cmp_bytes(a: u8, b: u8) -> i64 {
    (a as i64) - (b as i64)
}

/// `int strcmp(const char *s1, const char *s2);`
pub fn strcmp(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s1 = arg(args, 0).as_ptr();
    let s2 = arg(args, 1).as_ptr();
    let mut i = 0u64;
    loop {
        let a = p.read_u8(s1.add(i))?;
        let b = p.read_u8(s2.add(i))?;
        if a != b || a == 0 {
            return ok_int(cmp_bytes(a, b));
        }
        i += 1;
    }
}

/// `int strncmp(const char *s1, const char *s2, size_t n);`
pub fn strncmp(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s1 = arg(args, 0).as_ptr();
    let s2 = arg(args, 1).as_ptr();
    let n = arg(args, 2).as_usize();
    let mut i = 0u64;
    while i < n {
        let a = p.read_u8(s1.add(i))?;
        let b = p.read_u8(s2.add(i))?;
        if a != b || a == 0 {
            return ok_int(cmp_bytes(a, b));
        }
        i += 1;
    }
    ok_int(0)
}

/// `int strcasecmp(const char *s1, const char *s2);`
pub fn strcasecmp(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s1 = arg(args, 0).as_ptr();
    let s2 = arg(args, 1).as_ptr();
    let mut i = 0u64;
    loop {
        let a = lower(p.read_u8(s1.add(i))?);
        let b = lower(p.read_u8(s2.add(i))?);
        if a != b || a == 0 {
            return ok_int(cmp_bytes(a, b));
        }
        i += 1;
    }
}

/// `int strncasecmp(const char *s1, const char *s2, size_t n);`
pub fn strncasecmp(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s1 = arg(args, 0).as_ptr();
    let s2 = arg(args, 1).as_ptr();
    let n = arg(args, 2).as_usize();
    let mut i = 0u64;
    while i < n {
        let a = lower(p.read_u8(s1.add(i))?);
        let b = lower(p.read_u8(s2.add(i))?);
        if a != b || a == 0 {
            return ok_int(cmp_bytes(a, b));
        }
        i += 1;
    }
    ok_int(0)
}

/// `char *strchr(const char *s, int c);`
pub fn strchr(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s = arg(args, 0).as_ptr();
    let c = arg(args, 1).as_int() as u8;
    let mut cur = s;
    loop {
        let b = p.read_u8(cur)?;
        if b == c {
            return ok_ptr(cur);
        }
        if b == 0 {
            return Ok(CVal::NULL);
        }
        cur = cur.add(1);
    }
}

/// `char *strrchr(const char *s, int c);`
pub fn strrchr(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s = arg(args, 0).as_ptr();
    let c = arg(args, 1).as_int() as u8;
    let mut cur = s;
    let mut found = VirtAddr::NULL;
    loop {
        let b = p.read_u8(cur)?;
        if b == c {
            found = cur;
        }
        if b == 0 {
            return ok_ptr(found);
        }
        cur = cur.add(1);
    }
}

/// `char *strstr(const char *haystack, const char *needle);`
pub fn strstr(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let hay = arg(args, 0).as_ptr();
    let needle = arg(args, 1).as_ptr();
    let first = p.read_u8(needle)?;
    if first == 0 {
        return ok_ptr(hay);
    }
    let mut base = hay;
    loop {
        let hb = p.read_u8(base)?;
        if hb == 0 {
            return Ok(CVal::NULL);
        }
        if hb == first {
            let mut i = 1u64;
            loop {
                let nb = p.read_u8(needle.add(i))?;
                if nb == 0 {
                    return ok_ptr(base);
                }
                if p.read_u8(base.add(i))? != nb {
                    break;
                }
                i += 1;
            }
        }
        base = base.add(1);
    }
}

/// Reads the delimiter set into a host bitmap (256 bits).
fn delim_set(p: &mut Proc, delim: VirtAddr) -> Result<[bool; 256], Fault> {
    let mut set = [false; 256];
    let mut cur = delim;
    loop {
        let b = p.read_u8(cur)?;
        if b == 0 {
            return Ok(set);
        }
        set[b as usize] = true;
        cur = cur.add(1);
    }
}

/// `size_t strspn(const char *s, const char *accept);`
pub fn strspn(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s = arg(args, 0).as_ptr();
    let accept = delim_set(p, arg(args, 1).as_ptr())?;
    let mut n = 0i64;
    let mut cur = s;
    loop {
        let b = p.read_u8(cur)?;
        if b == 0 || !accept[b as usize] {
            return ok_int(n);
        }
        n += 1;
        cur = cur.add(1);
    }
}

/// `size_t strcspn(const char *s, const char *reject);`
pub fn strcspn(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s = arg(args, 0).as_ptr();
    let reject = delim_set(p, arg(args, 1).as_ptr())?;
    let mut n = 0i64;
    let mut cur = s;
    loop {
        let b = p.read_u8(cur)?;
        if b == 0 || reject[b as usize] {
            return ok_int(n);
        }
        n += 1;
        cur = cur.add(1);
    }
}

/// `char *strpbrk(const char *s, const char *accept);`
pub fn strpbrk(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s = arg(args, 0).as_ptr();
    let accept = delim_set(p, arg(args, 1).as_ptr())?;
    let mut cur = s;
    loop {
        let b = p.read_u8(cur)?;
        if b == 0 {
            return Ok(CVal::NULL);
        }
        if accept[b as usize] {
            return ok_ptr(cur);
        }
        cur = cur.add(1);
    }
}

/// Common tokeniser behind `strtok`/`strtok_r`.
fn tok(p: &mut Proc, s: CVal, delim: VirtAddr, save: VirtAddr) -> Result<CVal, Fault> {
    let set = delim_set(p, delim)?;
    let mut cur = if s.is_null() {
        let saved = p.read_ptr(save)?;
        if saved.is_null() {
            return Ok(CVal::NULL);
        }
        saved
    } else {
        s.as_ptr()
    };
    // Skip leading delimiters.
    loop {
        let b = p.read_u8(cur)?;
        if b == 0 {
            p.write_ptr(save, VirtAddr::NULL)?;
            return Ok(CVal::NULL);
        }
        if !set[b as usize] {
            break;
        }
        cur = cur.add(1);
    }
    let token = cur;
    // Find token end.
    loop {
        let b = p.read_u8(cur)?;
        if b == 0 {
            p.write_ptr(save, VirtAddr::NULL)?;
            return ok_ptr(token);
        }
        if set[b as usize] {
            p.write_u8(cur, 0)?; // strtok mutates its input
            p.write_ptr(save, cur.add(1))?;
            return ok_ptr(token);
        }
        cur = cur.add(1);
    }
}

/// `char *strtok(char *s, const char *delim);` — hidden global state,
/// like the original.
pub fn strtok(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    tok(p, arg(args, 0), arg(args, 1).as_ptr(), STRTOK_SAVE)
}

/// `char *strtok_r(char *s, const char *delim, char **saveptr);`
pub fn strtok_r(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let save = arg(args, 2).as_ptr();
    // Touch the save pointer first: a wild saveptr faults immediately.
    tok(p, arg(args, 0), arg(args, 1).as_ptr(), save)
}

/// `char *strsep(char **stringp, const char *delim);`
pub fn strsep(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let stringp = arg(args, 0).as_ptr();
    let delim = arg(args, 1).as_ptr();
    let s = p.read_ptr(stringp)?;
    if s.is_null() {
        return Ok(CVal::NULL);
    }
    let set = delim_set(p, delim)?;
    let mut cur = s;
    loop {
        let b = p.read_u8(cur)?;
        if b == 0 {
            p.write_ptr(stringp, VirtAddr::NULL)?;
            return ok_ptr(s);
        }
        if set[b as usize] {
            p.write_u8(cur, 0)?;
            p.write_ptr(stringp, cur.add(1))?;
            return ok_ptr(s);
        }
        cur = cur.add(1);
    }
}

/// `char *strdup(const char *s);`
pub fn strdup(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s = arg(args, 0).as_ptr();
    let bytes = p.read_cstr(s)?;
    let dst = heap::malloc(p, bytes.len() as u64 + 1)?;
    if dst.is_null() {
        return Ok(CVal::NULL);
    }
    p.write_cstr(dst, &bytes)?;
    ok_ptr(dst)
}

/// `char *strndup(const char *s, size_t n);`
pub fn strndup(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s = arg(args, 0).as_ptr();
    let n = arg(args, 1).as_usize();
    let mut bytes = Vec::new();
    let mut cur = s;
    while (bytes.len() as u64) < n {
        let b = p.read_u8(cur)?;
        if b == 0 {
            break;
        }
        bytes.push(b);
        cur = cur.add(1);
    }
    let dst = heap::malloc(p, bytes.len() as u64 + 1)?;
    if dst.is_null() {
        return Ok(CVal::NULL);
    }
    p.write_cstr(dst, &bytes)?;
    ok_ptr(dst)
}

/// `size_t strlcpy(char *dst, const char *src, size_t size);` — the BSD
/// "safe" copy: always NUL-terminates within `size`, returns
/// `strlen(src)`. Robust by design — the fault injector should derive a
/// much weaker contract for it than for `strcpy`.
pub fn strlcpy(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let dst = arg(args, 0).as_ptr();
    let src = arg(args, 1).as_ptr();
    let size = arg(args, 2).as_usize();
    let mut i = 0u64;
    loop {
        let b = p.read_u8(src.add(i))?;
        if i + 1 < size {
            p.write_u8(dst.add(i), b)?;
        }
        if b == 0 {
            break;
        }
        i += 1;
    }
    if size > 0 && i + 1 >= size {
        p.write_u8(dst.add(size - 1), 0)?;
    }
    ok_int(i as i64) // strlen(src)
}

/// `size_t strlcat(char *dst, const char *src, size_t size);`
pub fn strlcat(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let dst = arg(args, 0).as_ptr();
    let src = arg(args, 1).as_ptr();
    let size = arg(args, 2).as_usize();
    // Length of dst, but never scanning past `size`.
    let mut dlen = 0u64;
    while dlen < size && p.read_u8(dst.add(dlen))? != 0 {
        dlen += 1;
    }
    let mut slen = 0u64;
    loop {
        let b = p.read_u8(src.add(slen))?;
        if b == 0 {
            break;
        }
        if dlen + slen + 1 < size {
            p.write_u8(dst.add(dlen + slen), b)?;
        }
        slen += 1;
    }
    if dlen < size {
        p.write_u8(dst.add((dlen + slen).min(size - 1)), 0)?;
    }
    ok_int((dlen + slen) as i64)
}

/// `char *strerror(int errnum);` — returns the classic static buffer.
pub fn strerror(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let e = arg(args, 0).as_int() as i32;
    let msg = errno::strerror_text(e);
    let bytes = msg.as_bytes();
    let n = bytes.len().min(crate::state::STRERROR_BUF_LEN as usize - 1);
    p.write_bytes(STRERROR_BUF, &bytes[..n])?;
    p.write_u8(STRERROR_BUF.add(n as u64), 0)?;
    ok_ptr(STRERROR_BUF)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::libc_proc;
    use simproc::layout::WILD_ADDR;

    #[test]
    fn strlen_counts() {
        let mut p = libc_proc();
        let s = p.alloc_cstr("hello");
        assert_eq!(strlen(&mut p, &[CVal::Ptr(s)]).unwrap(), CVal::Int(5));
        let empty = p.alloc_cstr("");
        assert_eq!(strlen(&mut p, &[CVal::Ptr(empty)]).unwrap(), CVal::Int(0));
    }

    #[test]
    fn strlen_crashes_on_null_and_wild() {
        let mut p = libc_proc();
        assert!(matches!(strlen(&mut p, &[CVal::NULL]).unwrap_err(), Fault::Segv { .. }));
        assert!(matches!(
            strlen(&mut p, &[CVal::Ptr(WILD_ADDR)]).unwrap_err(),
            Fault::Segv { .. }
        ));
    }

    #[test]
    fn strcpy_copies_and_returns_dest() {
        let mut p = libc_proc();
        let src = p.alloc_cstr("data");
        let dst = p.alloc_data_zeroed(16);
        let r = strcpy(&mut p, &[CVal::Ptr(dst), CVal::Ptr(src)]).unwrap();
        assert_eq!(r, CVal::Ptr(dst));
        assert_eq!(p.read_cstr_lossy(dst), "data");
    }

    #[test]
    fn strcpy_overflows_silently_within_mapped_memory() {
        // The defining fragility: a too-small destination is clobbered
        // without complaint as long as memory stays mapped.
        let mut p = libc_proc();
        let src = p.alloc_cstr("AAAAAAAAAAAAAAAA");
        let dst = p.alloc_data_zeroed(4);
        let marker = p.alloc_data(b"MARK");
        strcpy(&mut p, &[CVal::Ptr(dst), CVal::Ptr(src)]).unwrap();
        let after = p.read_bytes(marker, 4).unwrap();
        assert_eq!(after, b"AAAA", "neighbouring data was overwritten");
    }

    #[test]
    fn strncpy_pads_and_truncates() {
        let mut p = libc_proc();
        let src = p.alloc_cstr("ab");
        let dst = p.alloc_data(&[0xFFu8; 8]);
        strncpy(&mut p, &[CVal::Ptr(dst), CVal::Ptr(src), CVal::Int(6)]).unwrap();
        assert_eq!(p.read_bytes(dst, 8).unwrap(), b"ab\0\0\0\0\xFF\xFF");
        // Truncation leaves no terminator.
        let long = p.alloc_cstr("abcdef");
        let small = p.alloc_data(&[0xFFu8; 4]);
        strncpy(&mut p, &[CVal::Ptr(small), CVal::Ptr(long), CVal::Int(3)]).unwrap();
        assert_eq!(p.read_bytes(small, 4).unwrap(), b"abc\xFF");
    }

    #[test]
    fn strcat_appends() {
        let mut p = libc_proc();
        let dst = p.alloc_data_zeroed(16);
        p.write_cstr(dst, b"foo").unwrap();
        let src = p.alloc_cstr("bar");
        strcat(&mut p, &[CVal::Ptr(dst), CVal::Ptr(src)]).unwrap();
        assert_eq!(p.read_cstr_lossy(dst), "foobar");
    }

    #[test]
    fn strncat_always_terminates() {
        let mut p = libc_proc();
        let dst = p.alloc_data_zeroed(16);
        p.write_cstr(dst, b"foo").unwrap();
        let src = p.alloc_cstr("barbaz");
        strncat(&mut p, &[CVal::Ptr(dst), CVal::Ptr(src), CVal::Int(3)]).unwrap();
        assert_eq!(p.read_cstr_lossy(dst), "foobar");
    }

    #[test]
    fn strcmp_orders() {
        let mut p = libc_proc();
        let a = p.alloc_cstr("apple");
        let b = p.alloc_cstr("apricot");
        let eq = strcmp(&mut p, &[CVal::Ptr(a), CVal::Ptr(a)]).unwrap();
        assert_eq!(eq, CVal::Int(0));
        assert!(strcmp(&mut p, &[CVal::Ptr(a), CVal::Ptr(b)]).unwrap().as_int() < 0);
        assert!(strcmp(&mut p, &[CVal::Ptr(b), CVal::Ptr(a)]).unwrap().as_int() > 0);
    }

    #[test]
    fn strncmp_bounded() {
        let mut p = libc_proc();
        let a = p.alloc_cstr("abcX");
        let b = p.alloc_cstr("abcY");
        assert_eq!(
            strncmp(&mut p, &[CVal::Ptr(a), CVal::Ptr(b), CVal::Int(3)]).unwrap(),
            CVal::Int(0)
        );
        assert!(
            strncmp(&mut p, &[CVal::Ptr(a), CVal::Ptr(b), CVal::Int(4)]).unwrap().as_int()
                < 0
        );
    }

    #[test]
    fn strcasecmp_ignores_case() {
        let mut p = libc_proc();
        let a = p.alloc_cstr("HeLLo");
        let b = p.alloc_cstr("hello");
        assert_eq!(
            strcasecmp(&mut p, &[CVal::Ptr(a), CVal::Ptr(b)]).unwrap(),
            CVal::Int(0)
        );
        let c = p.alloc_cstr("HELLOZ");
        assert_eq!(
            strncasecmp(&mut p, &[CVal::Ptr(b), CVal::Ptr(c), CVal::Int(5)]).unwrap(),
            CVal::Int(0)
        );
    }

    #[test]
    fn strchr_and_strrchr() {
        let mut p = libc_proc();
        let s = p.alloc_cstr("banana");
        let first = strchr(&mut p, &[CVal::Ptr(s), CVal::Int(b'a' as i64)]).unwrap();
        assert_eq!(first.as_ptr(), s.add(1));
        let last = strrchr(&mut p, &[CVal::Ptr(s), CVal::Int(b'a' as i64)]).unwrap();
        assert_eq!(last.as_ptr(), s.add(5));
        let none = strchr(&mut p, &[CVal::Ptr(s), CVal::Int(b'z' as i64)]).unwrap();
        assert!(none.is_null());
        // strchr(s, 0) finds the terminator.
        let term = strchr(&mut p, &[CVal::Ptr(s), CVal::Int(0)]).unwrap();
        assert_eq!(term.as_ptr(), s.add(6));
    }

    #[test]
    fn strstr_finds_substrings() {
        let mut p = libc_proc();
        let hay = p.alloc_cstr("the quick brown fox");
        let needle = p.alloc_cstr("brown");
        let hit = strstr(&mut p, &[CVal::Ptr(hay), CVal::Ptr(needle)]).unwrap();
        assert_eq!(hit.as_ptr(), hay.add(10));
        let missing = p.alloc_cstr("purple");
        assert!(strstr(&mut p, &[CVal::Ptr(hay), CVal::Ptr(missing)]).unwrap().is_null());
        let empty = p.alloc_cstr("");
        let all = strstr(&mut p, &[CVal::Ptr(hay), CVal::Ptr(empty)]).unwrap();
        assert_eq!(all.as_ptr(), hay);
    }

    #[test]
    fn spn_cspn_pbrk() {
        let mut p = libc_proc();
        let s = p.alloc_cstr("123abc");
        let digits = p.alloc_cstr("0123456789");
        assert_eq!(
            strspn(&mut p, &[CVal::Ptr(s), CVal::Ptr(digits)]).unwrap(),
            CVal::Int(3)
        );
        assert_eq!(
            strcspn(&mut p, &[CVal::Ptr(s), CVal::Ptr(digits)]).unwrap(),
            CVal::Int(0)
        );
        let letters = p.alloc_cstr("abc");
        let hit = strpbrk(&mut p, &[CVal::Ptr(s), CVal::Ptr(letters)]).unwrap();
        assert_eq!(hit.as_ptr(), s.add(3));
        let none = p.alloc_cstr("xyz");
        assert!(strpbrk(&mut p, &[CVal::Ptr(s), CVal::Ptr(none)]).unwrap().is_null());
    }

    #[test]
    fn strtok_walks_tokens() {
        let mut p = libc_proc();
        let s = p.alloc_data(b"a,b;;c\0");
        let delim = p.alloc_cstr(",;");
        let t1 = strtok(&mut p, &[CVal::Ptr(s), CVal::Ptr(delim)]).unwrap();
        assert_eq!(p.read_cstr_lossy(t1.as_ptr()), "a");
        let t2 = strtok(&mut p, &[CVal::NULL, CVal::Ptr(delim)]).unwrap();
        assert_eq!(p.read_cstr_lossy(t2.as_ptr()), "b");
        let t3 = strtok(&mut p, &[CVal::NULL, CVal::Ptr(delim)]).unwrap();
        assert_eq!(p.read_cstr_lossy(t3.as_ptr()), "c");
        let done = strtok(&mut p, &[CVal::NULL, CVal::Ptr(delim)]).unwrap();
        assert!(done.is_null());
    }

    #[test]
    fn strtok_r_uses_caller_state() {
        let mut p = libc_proc();
        let s = p.alloc_data(b"x y\0");
        let delim = p.alloc_cstr(" ");
        let save = p.alloc_data_zeroed(8);
        let t1 =
            strtok_r(&mut p, &[CVal::Ptr(s), CVal::Ptr(delim), CVal::Ptr(save)]).unwrap();
        assert_eq!(p.read_cstr_lossy(t1.as_ptr()), "x");
        let t2 =
            strtok_r(&mut p, &[CVal::NULL, CVal::Ptr(delim), CVal::Ptr(save)]).unwrap();
        assert_eq!(p.read_cstr_lossy(t2.as_ptr()), "y");
    }

    #[test]
    fn strsep_consumes() {
        let mut p = libc_proc();
        let s = p.alloc_data(b"k=v\0");
        let sp = p.alloc_data_zeroed(8);
        p.write_ptr(sp, s).unwrap();
        let eq = p.alloc_cstr("=");
        let k = strsep(&mut p, &[CVal::Ptr(sp), CVal::Ptr(eq)]).unwrap();
        assert_eq!(p.read_cstr_lossy(k.as_ptr()), "k");
        let v = strsep(&mut p, &[CVal::Ptr(sp), CVal::Ptr(eq)]).unwrap();
        assert_eq!(p.read_cstr_lossy(v.as_ptr()), "v");
        let done = strsep(&mut p, &[CVal::Ptr(sp), CVal::Ptr(eq)]).unwrap();
        assert!(done.is_null());
    }

    #[test]
    fn strdup_allocates_copy() {
        let mut p = libc_proc();
        let s = p.alloc_cstr("dup me");
        let d = strdup(&mut p, &[CVal::Ptr(s)]).unwrap();
        assert_ne!(d.as_ptr(), s);
        assert_eq!(p.read_cstr_lossy(d.as_ptr()), "dup me");
        let nd = strndup(&mut p, &[CVal::Ptr(s), CVal::Int(3)]).unwrap();
        assert_eq!(p.read_cstr_lossy(nd.as_ptr()), "dup");
    }

    #[test]
    fn strerror_returns_static_buffer() {
        let mut p = libc_proc();
        let m = strerror(&mut p, &[CVal::Int(errno::ENOENT as i64)]).unwrap();
        assert_eq!(m.as_ptr(), STRERROR_BUF);
        assert_eq!(p.read_cstr_lossy(m.as_ptr()), "No such file or directory");
    }

    #[test]
    fn unterminated_scan_hangs_under_fuel_budget() {
        let mut p = libc_proc();
        // A huge unterminated heap buffer: strlen keeps walking.
        let buf = heap::malloc(&mut p, 0x10000).unwrap();
        let junk = vec![b'x'; 0x10000];
        p.mem.write_bytes(buf, &junk).unwrap();
        p.set_fuel_limit(Some(p.cycles() + 1000));
        let err = strlen(&mut p, &[CVal::Ptr(buf)]).unwrap_err();
        assert_eq!(err, Fault::Hang);
    }
}

#[cfg(test)]
mod strl_tests {
    use super::*;
    use crate::testutil::libc_proc;

    #[test]
    fn strlcpy_truncates_and_terminates() {
        let mut p = libc_proc();
        let src = p.alloc_cstr("0123456789");
        let dst = p.alloc_data(&[0xFFu8; 8]);
        let r = strlcpy(&mut p, &[CVal::Ptr(dst), CVal::Ptr(src), CVal::Int(5)]).unwrap();
        assert_eq!(r, CVal::Int(10), "returns strlen(src)");
        assert_eq!(p.read_cstr_lossy(dst), "0123");
        // Fits entirely.
        let short = p.alloc_cstr("ab");
        strlcpy(&mut p, &[CVal::Ptr(dst), CVal::Ptr(short), CVal::Int(8)]).unwrap();
        assert_eq!(p.read_cstr_lossy(dst), "ab");
        // size == 0 writes nothing.
        let marker = p.alloc_data(&[0x77u8; 4]);
        strlcpy(&mut p, &[CVal::Ptr(marker), CVal::Ptr(short), CVal::Int(0)]).unwrap();
        assert_eq!(p.read_bytes(marker, 4).unwrap(), vec![0x77; 4]);
    }

    #[test]
    fn strlcat_appends_within_bound() {
        let mut p = libc_proc();
        let dst = p.alloc_data_zeroed(8);
        p.write_cstr(dst, b"ab").unwrap();
        let src = p.alloc_cstr("cdefgh");
        let r = strlcat(&mut p, &[CVal::Ptr(dst), CVal::Ptr(src), CVal::Int(8)]).unwrap();
        assert_eq!(r, CVal::Int(8), "total length it tried to create");
        assert_eq!(p.read_cstr_lossy(dst), "abcdefg", "truncated to size-1");
    }

    #[test]
    fn strl_functions_never_write_past_size() {
        // The property that distinguishes them from strcpy/strcat: a
        // guard byte right after `size` survives any source length.
        let mut p = libc_proc();
        let dst = p.alloc_data_zeroed(16);
        let guard = p.alloc_data(&[0xAB]);
        assert_eq!(guard, dst.add(16));
        let long = p.alloc_cstr(&"x".repeat(300));
        strlcpy(&mut p, &[CVal::Ptr(dst), CVal::Ptr(long), CVal::Int(16)]).unwrap();
        assert_eq!(p.read_u8(guard).unwrap(), 0xAB);
        strlcat(&mut p, &[CVal::Ptr(dst), CVal::Ptr(long), CVal::Int(16)]).unwrap();
        assert_eq!(p.read_u8(guard).unwrap(), 0xAB);
    }
}
