//! `getenv`/`setenv`/`unsetenv`/`putenv` over an `environ` array living
//! in simulated memory (heap-allocated, leaking old arrays on growth —
//! like the real thing).

use simproc::{errno, CVal, Fault, Proc, VirtAddr};

use crate::heap;
use crate::state::ENVIRON_PTR;
use crate::util::{arg, enter, ok_int, ok_ptr};

/// Builds the initial environment block. Called by library init.
///
/// # Errors
///
/// Propagates allocation faults (the fixtures are small; none expected).
pub fn init_env(p: &mut Proc, vars: &[(&str, &str)]) -> Result<(), Fault> {
    let array = heap::malloc(p, (vars.len() as u64 + 1) * 8)?;
    assert!(!array.is_null(), "env array allocation");
    for (i, (k, v)) in vars.iter().enumerate() {
        let entry = alloc_entry(p, k.as_bytes(), v.as_bytes())?;
        p.write_ptr(array.add(i as u64 * 8), entry)?;
    }
    p.write_ptr(array.add(vars.len() as u64 * 8), VirtAddr::NULL)?;
    p.mem.write_u64(ENVIRON_PTR, array.get())?;
    Ok(())
}

fn alloc_entry(p: &mut Proc, k: &[u8], v: &[u8]) -> Result<VirtAddr, Fault> {
    let mut s = Vec::with_capacity(k.len() + v.len() + 1);
    s.extend_from_slice(k);
    s.push(b'=');
    s.extend_from_slice(v);
    let ptr = heap::malloc(p, s.len() as u64 + 1)?;
    if !ptr.is_null() {
        p.write_cstr(ptr, &s)?;
    }
    Ok(ptr)
}

/// Looks for `name` in the environ array; returns
/// `(slot index, value address)` of the match.
fn find(p: &mut Proc, name: &[u8]) -> Result<Option<(u64, VirtAddr)>, Fault> {
    let array = VirtAddr::new(p.read_u64(ENVIRON_PTR)?);
    if array.is_null() {
        return Ok(None);
    }
    let mut i = 0u64;
    loop {
        let entry = p.read_ptr(array.add(i * 8))?;
        if entry.is_null() {
            return Ok(None);
        }
        // Compare "name=" prefix byte by byte in simulated memory.
        let mut j = 0u64;
        let matched = loop {
            let b = p.read_u8(entry.add(j))?;
            if (j as usize) < name.len() {
                if b != name[j as usize] {
                    break false;
                }
            } else {
                break b == b'=';
            }
            j += 1;
        };
        if matched {
            return Ok(Some((i, entry.add(name.len() as u64 + 1))));
        }
        i += 1;
    }
}

/// `char *getenv(const char *name);`
pub fn getenv(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let name = p.read_cstr(arg(args, 0).as_ptr())?;
    match find(p, &name)? {
        Some((_, value)) => ok_ptr(value),
        None => Ok(CVal::NULL),
    }
}

/// `int setenv(const char *name, const char *value, int overwrite);`
pub fn setenv(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let name = p.read_cstr(arg(args, 0).as_ptr())?;
    if name.is_empty() || name.contains(&b'=') {
        p.set_errno(errno::EINVAL);
        return ok_int(-1);
    }
    let value = p.read_cstr(arg(args, 1).as_ptr())?;
    let overwrite = arg(args, 2).as_int() != 0;
    if let Some((slot, _)) = find(p, &name)? {
        if !overwrite {
            return ok_int(0);
        }
        let entry = alloc_entry(p, &name, &value)?;
        if entry.is_null() {
            return ok_int(-1);
        }
        let array = VirtAddr::new(p.read_u64(ENVIRON_PTR)?);
        p.write_ptr(array.add(slot * 8), entry)?;
        return ok_int(0);
    }
    // Append: allocate a bigger array, leak the old one (faithful).
    let old = VirtAddr::new(p.read_u64(ENVIRON_PTR)?);
    let mut entries = Vec::new();
    if !old.is_null() {
        let mut i = 0u64;
        loop {
            let e = p.read_ptr(old.add(i * 8))?;
            if e.is_null() {
                break;
            }
            entries.push(e);
            i += 1;
        }
    }
    let entry = alloc_entry(p, &name, &value)?;
    if entry.is_null() {
        return ok_int(-1);
    }
    entries.push(entry);
    let array = heap::malloc(p, (entries.len() as u64 + 1) * 8)?;
    if array.is_null() {
        return ok_int(-1);
    }
    for (i, e) in entries.iter().enumerate() {
        p.write_ptr(array.add(i as u64 * 8), *e)?;
    }
    p.write_ptr(array.add(entries.len() as u64 * 8), VirtAddr::NULL)?;
    p.mem.write_u64(ENVIRON_PTR, array.get())?;
    ok_int(0)
}

/// `int unsetenv(const char *name);`
pub fn unsetenv(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let name = p.read_cstr(arg(args, 0).as_ptr())?;
    if name.is_empty() || name.contains(&b'=') {
        p.set_errno(errno::EINVAL);
        return ok_int(-1);
    }
    while let Some((slot, _)) = find(p, &name)? {
        // Shift the tail down over the removed slot.
        let array = VirtAddr::new(p.read_u64(ENVIRON_PTR)?);
        let mut i = slot;
        loop {
            let next = p.read_ptr(array.add((i + 1) * 8))?;
            p.write_ptr(array.add(i * 8), next)?;
            if next.is_null() {
                break;
            }
            i += 1;
        }
    }
    ok_int(0)
}

/// `int putenv(char *string);` — inserts the caller's pointer directly,
/// so later mutation of the string mutates the environment (faithful).
pub fn putenv(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let string = arg(args, 0).as_ptr();
    let bytes = p.read_cstr(string)?;
    let Some(eq) = bytes.iter().position(|b| *b == b'=') else {
        // glibc putenv without '=' removes the name.
        return unsetenv(p, &[CVal::Ptr(string)]);
    };
    let name = &bytes[..eq];
    if let Some((slot, _)) = find(p, name)? {
        let array = VirtAddr::new(p.read_u64(ENVIRON_PTR)?);
        p.write_ptr(array.add(slot * 8), string)?;
        return ok_int(0);
    }
    let old = VirtAddr::new(p.read_u64(ENVIRON_PTR)?);
    let mut entries = Vec::new();
    if !old.is_null() {
        let mut i = 0u64;
        loop {
            let e = p.read_ptr(old.add(i * 8))?;
            if e.is_null() {
                break;
            }
            entries.push(e);
            i += 1;
        }
    }
    entries.push(string);
    let array = heap::malloc(p, (entries.len() as u64 + 1) * 8)?;
    if array.is_null() {
        return ok_int(-1);
    }
    for (i, e) in entries.iter().enumerate() {
        p.write_ptr(array.add(i as u64 * 8), *e)?;
    }
    p.write_ptr(array.add(entries.len() as u64 * 8), VirtAddr::NULL)?;
    p.mem.write_u64(ENVIRON_PTR, array.get())?;
    ok_int(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::libc_proc_with_env;
    use simproc::layout::WILD_ADDR;

    #[test]
    fn getenv_finds_initial_vars() {
        let mut p = libc_proc_with_env(&[("PATH", "/bin:/usr/bin"), ("HOME", "/root")]);
        let name = p.alloc_cstr("HOME");
        let v = getenv(&mut p, &[CVal::Ptr(name)]).unwrap();
        assert_eq!(p.read_cstr_lossy(v.as_ptr()), "/root");
        let missing = p.alloc_cstr("NOPE");
        assert!(getenv(&mut p, &[CVal::Ptr(missing)]).unwrap().is_null());
        // Prefix must not match.
        let prefix = p.alloc_cstr("HO");
        assert!(getenv(&mut p, &[CVal::Ptr(prefix)]).unwrap().is_null());
    }

    #[test]
    fn getenv_crashes_on_wild_name() {
        let mut p = libc_proc_with_env(&[]);
        assert!(matches!(
            getenv(&mut p, &[CVal::Ptr(WILD_ADDR)]).unwrap_err(),
            Fault::Segv { .. }
        ));
        assert!(matches!(getenv(&mut p, &[CVal::NULL]).unwrap_err(), Fault::Segv { .. }));
    }

    #[test]
    fn setenv_appends_and_overwrites() {
        let mut p = libc_proc_with_env(&[("A", "1")]);
        let (k, v2) = (p.alloc_cstr("B"), p.alloc_cstr("2"));
        assert_eq!(
            setenv(&mut p, &[CVal::Ptr(k), CVal::Ptr(v2), CVal::Int(0)]).unwrap(),
            CVal::Int(0)
        );
        let got = getenv(&mut p, &[CVal::Ptr(k)]).unwrap();
        assert_eq!(p.read_cstr_lossy(got.as_ptr()), "2");

        // overwrite=0 keeps the old value.
        let v3 = p.alloc_cstr("3");
        setenv(&mut p, &[CVal::Ptr(k), CVal::Ptr(v3), CVal::Int(0)]).unwrap();
        let got = getenv(&mut p, &[CVal::Ptr(k)]).unwrap();
        assert_eq!(p.read_cstr_lossy(got.as_ptr()), "2");

        // overwrite=1 replaces it.
        setenv(&mut p, &[CVal::Ptr(k), CVal::Ptr(v3), CVal::Int(1)]).unwrap();
        let got = getenv(&mut p, &[CVal::Ptr(k)]).unwrap();
        assert_eq!(p.read_cstr_lossy(got.as_ptr()), "3");
    }

    #[test]
    fn setenv_rejects_bad_names() {
        let mut p = libc_proc_with_env(&[]);
        let bad = p.alloc_cstr("A=B");
        let v = p.alloc_cstr("x");
        assert_eq!(
            setenv(&mut p, &[CVal::Ptr(bad), CVal::Ptr(v), CVal::Int(1)]).unwrap(),
            CVal::Int(-1)
        );
        assert_eq!(p.errno(), errno::EINVAL);
        let empty = p.alloc_cstr("");
        assert_eq!(
            setenv(&mut p, &[CVal::Ptr(empty), CVal::Ptr(v), CVal::Int(1)]).unwrap(),
            CVal::Int(-1)
        );
    }

    #[test]
    fn unsetenv_removes() {
        let mut p = libc_proc_with_env(&[("A", "1"), ("B", "2"), ("C", "3")]);
        let b = p.alloc_cstr("B");
        assert_eq!(unsetenv(&mut p, &[CVal::Ptr(b)]).unwrap(), CVal::Int(0));
        assert!(getenv(&mut p, &[CVal::Ptr(b)]).unwrap().is_null());
        // Others survive.
        let c = p.alloc_cstr("C");
        let got = getenv(&mut p, &[CVal::Ptr(c)]).unwrap();
        assert_eq!(p.read_cstr_lossy(got.as_ptr()), "3");
    }

    #[test]
    fn putenv_inserts_live_pointer() {
        let mut p = libc_proc_with_env(&[]);
        let s = p.alloc_data(b"KEY=orig\0");
        putenv(&mut p, &[CVal::Ptr(s)]).unwrap();
        let k = p.alloc_cstr("KEY");
        let got = getenv(&mut p, &[CVal::Ptr(k)]).unwrap();
        assert_eq!(p.read_cstr_lossy(got.as_ptr()), "orig");
        // Mutating the caller's buffer mutates the environment.
        p.write_cstr(s, b"KEY=live").unwrap();
        let got = getenv(&mut p, &[CVal::Ptr(k)]).unwrap();
        assert_eq!(p.read_cstr_lossy(got.as_ptr()), "live");
    }
}
