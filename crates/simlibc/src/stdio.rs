//! A `<stdio.h>` subset over the simulated kernel's file system. `FILE`
//! objects are heap allocations (magic + fd), so a wild `FILE*` faults on
//! the first dereference and a dangling one reads garbage — both faithful
//! failure modes.

use simproc::{CVal, Fault, OpenMode, Proc, VirtAddr};

use crate::fmt::format;
use crate::heap;
use crate::state::FILE_MAGIC;
use crate::util::{arg, enter, ok_int, ok_ptr};

/// C `EOF`.
pub const EOF: i64 = -1;

/// Reads a `FILE*`'s fd, validating the magic. Wild pointers fault here;
/// readable non-FILE memory yields `None` (later reported as `EBADF`).
fn file_fd(p: &mut Proc, file: VirtAddr) -> Result<Option<i32>, Fault> {
    let magic = p.read_u64(file)?;
    if magic != FILE_MAGIC {
        p.set_errno(simproc::errno::EBADF);
        return Ok(None);
    }
    Ok(Some(p.read_u64(file.add(8))? as i32))
}

/// `FILE *fopen(const char *path, const char *mode);`
pub fn fopen(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let path = p.read_cstr(arg(args, 0).as_ptr())?;
    let mode_str = p.read_cstr(arg(args, 1).as_ptr())?;
    let Some(mode) = OpenMode::parse(&String::from_utf8_lossy(&mode_str)) else {
        p.set_errno(simproc::errno::EINVAL);
        return Ok(CVal::NULL);
    };
    let path = String::from_utf8_lossy(&path).into_owned();
    match p.kernel.open(&path, mode) {
        Ok(fd) => {
            let file = heap::malloc(p, 16)?;
            if file.is_null() {
                return Ok(CVal::NULL);
            }
            p.write_u64(file, FILE_MAGIC)?;
            p.write_u64(file.add(8), fd as u64)?;
            ok_ptr(file)
        }
        Err(e) => {
            p.set_errno(e.errno());
            Ok(CVal::NULL)
        }
    }
}

/// `int fclose(FILE *stream);`
pub fn fclose(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let file = arg(args, 0).as_ptr();
    let Some(fd) = file_fd(p, file)? else {
        return ok_int(EOF);
    };
    let r = p.kernel.close(fd);
    // Poison the magic so a double fclose reads EBADF (use-after-free of
    // the FILE itself is still possible through the heap, faithfully).
    p.write_u64(file, 0xDEAD)?;
    heap::free(p, file)?;
    match r {
        Ok(()) => ok_int(0),
        Err(e) => {
            p.set_errno(e.errno());
            ok_int(EOF)
        }
    }
}

/// `int fgetc(FILE *stream);`
pub fn fgetc(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let Some(fd) = file_fd(p, arg(args, 0).as_ptr())? else {
        return ok_int(EOF);
    };
    match p.kernel.read(fd, 1) {
        Ok(bytes) if bytes.is_empty() => ok_int(EOF),
        Ok(bytes) => ok_int(bytes[0] as i64),
        Err(e) => {
            p.set_errno(e.errno());
            ok_int(EOF)
        }
    }
}

/// `char *fgets(char *s, int size, FILE *stream);`
pub fn fgets(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s = arg(args, 0).as_ptr();
    let size = arg(args, 1).as_int();
    let Some(fd) = file_fd(p, arg(args, 2).as_ptr())? else {
        return Ok(CVal::NULL);
    };
    if size <= 0 {
        // Real fgets with size<=0 is UB; glibc returns NULL.
        return Ok(CVal::NULL);
    }
    if size == 1 {
        // ISO C: room only for the terminator — store "" and succeed.
        p.write_u8(s, 0)?;
        return ok_ptr(s);
    }
    let mut written = 0u64;
    let limit = (size - 1) as u64;
    while written < limit {
        let bytes = match p.kernel.read(fd, 1) {
            Ok(b) => b,
            Err(e) => {
                p.set_errno(e.errno());
                return Ok(CVal::NULL);
            }
        };
        let Some(&b) = bytes.first() else { break };
        p.write_u8(s.add(written), b)?;
        written += 1;
        if b == b'\n' {
            break;
        }
    }
    if written == 0 {
        return Ok(CVal::NULL);
    }
    p.write_u8(s.add(written), 0)?;
    ok_ptr(s)
}

/// `int fputc(int c, FILE *stream);`
pub fn fputc(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let c = arg(args, 0).as_int() as u8;
    let Some(fd) = file_fd(p, arg(args, 1).as_ptr())? else {
        return ok_int(EOF);
    };
    match p.kernel.write(fd, &[c]) {
        Ok(_) => ok_int(c as i64),
        Err(e) => {
            p.set_errno(e.errno());
            ok_int(EOF)
        }
    }
}

/// `int fputs(const char *s, FILE *stream);`
pub fn fputs(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s = p.read_cstr(arg(args, 0).as_ptr())?;
    let Some(fd) = file_fd(p, arg(args, 1).as_ptr())? else {
        return ok_int(EOF);
    };
    match p.kernel.write(fd, &s) {
        Ok(_) => ok_int(s.len() as i64),
        Err(e) => {
            p.set_errno(e.errno());
            ok_int(EOF)
        }
    }
}

/// `size_t fread(void *ptr, size_t size, size_t nmemb, FILE *stream);`
pub fn fread(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let ptr = arg(args, 0).as_ptr();
    let size = arg(args, 1).as_usize();
    let nmemb = arg(args, 2).as_usize();
    let Some(fd) = file_fd(p, arg(args, 3).as_ptr())? else {
        return ok_int(0);
    };
    if size == 0 || nmemb == 0 {
        return ok_int(0);
    }
    let total = size.saturating_mul(nmemb);
    let bytes = match p.kernel.read(fd, total as usize) {
        Ok(b) => b,
        Err(e) => {
            p.set_errno(e.errno());
            return ok_int(0);
        }
    };
    p.write_bytes(ptr, &bytes)?; // short dest buffer overflows, faithfully
    ok_int(bytes.len() as i64 / size as i64)
}

/// `size_t fwrite(const void *ptr, size_t size, size_t nmemb, FILE *stream);`
pub fn fwrite(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let ptr = arg(args, 0).as_ptr();
    let size = arg(args, 1).as_usize();
    let nmemb = arg(args, 2).as_usize();
    let Some(fd) = file_fd(p, arg(args, 3).as_ptr())? else {
        return ok_int(0);
    };
    if size == 0 || nmemb == 0 {
        return ok_int(0);
    }
    let total = size.saturating_mul(nmemb);
    let data = p.read_bytes(ptr, total)?;
    match p.kernel.write(fd, &data) {
        Ok(_) => ok_int(nmemb as i64),
        Err(e) => {
            p.set_errno(e.errno());
            ok_int(0)
        }
    }
}

/// `int feof(FILE *stream);`
pub fn feof(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let Some(fd) = file_fd(p, arg(args, 0).as_ptr())? else {
        return ok_int(0);
    };
    match p.kernel.at_eof(fd) {
        Ok(eof) => ok_int(eof as i64),
        Err(e) => {
            p.set_errno(e.errno());
            ok_int(0)
        }
    }
}

/// `int fflush(FILE *stream);` — everything is unbuffered here; flushing
/// `NULL` (all streams) is allowed, a wild stream still faults.
pub fn fflush(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let file = arg(args, 0).as_ptr();
    if file.is_null() {
        return ok_int(0);
    }
    match file_fd(p, file)? {
        Some(_) => ok_int(0),
        None => ok_int(EOF),
    }
}

/// `int puts(const char *s);`
pub fn puts(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let s = p.read_cstr(arg(args, 0).as_ptr())?;
    p.kernel.write(1, &s).ok();
    p.kernel.write(1, b"\n").ok();
    ok_int(s.len() as i64 + 1)
}

/// `int putchar(int c);`
pub fn putchar(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let c = arg(args, 0).as_int() as u8;
    p.kernel.write(1, &[c]).ok();
    ok_int(c as i64)
}

/// `int printf(const char *format, ...);`
pub fn printf(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let rendered = format(p, arg(args, 0).as_ptr(), &args[1.min(args.len())..])?;
    p.kernel.write(1, &rendered).ok();
    ok_int(rendered.len() as i64)
}

/// `int fprintf(FILE *stream, const char *format, ...);`
pub fn fprintf(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let Some(fd) = file_fd(p, arg(args, 0).as_ptr())? else {
        return ok_int(-1);
    };
    let rendered = format(p, arg(args, 1).as_ptr(), &args[2.min(args.len())..])?;
    match p.kernel.write(fd, &rendered) {
        Ok(n) => ok_int(n as i64),
        Err(e) => {
            p.set_errno(e.errno());
            ok_int(-1)
        }
    }
}

/// `int sprintf(char *str, const char *format, ...);` — the unbounded
/// classic; the security wrapper's favourite target after `strcpy`.
pub fn sprintf(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let dst = arg(args, 0).as_ptr();
    let rendered = format(p, arg(args, 1).as_ptr(), &args[2.min(args.len())..])?;
    p.write_bytes(dst, &rendered)?;
    p.write_u8(dst.add(rendered.len() as u64), 0)?;
    ok_int(rendered.len() as i64)
}

/// `int snprintf(char *str, size_t size, const char *format, ...);`
pub fn snprintf(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let dst = arg(args, 0).as_ptr();
    let size = arg(args, 1).as_usize();
    let rendered = format(p, arg(args, 2).as_ptr(), &args[3.min(args.len())..])?;
    if size > 0 {
        let n = rendered.len().min(size as usize - 1);
        p.write_bytes(dst, &rendered[..n])?;
        p.write_u8(dst.add(n as u64), 0)?;
    }
    ok_int(rendered.len() as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::libc_proc;
    use simproc::layout::WILD_ADDR;

    fn open(p: &mut Proc, path: &str, mode: &str) -> CVal {
        let pa = p.alloc_cstr(path);
        let mo = p.alloc_cstr(mode);
        fopen(p, &[CVal::Ptr(pa), CVal::Ptr(mo)]).unwrap()
    }

    #[test]
    fn fopen_write_read_roundtrip() {
        let mut p = libc_proc();
        let f = open(&mut p, "out.txt", "w");
        assert!(!f.is_null());
        let s = p.alloc_cstr("line one\n");
        assert_eq!(fputs(&mut p, &[CVal::Ptr(s), f]).unwrap(), CVal::Int(9));
        fputc(&mut p, &[CVal::Int(b'!' as i64), f]).unwrap();
        fclose(&mut p, &[f]).unwrap();
        assert_eq!(p.kernel.file("out.txt").unwrap(), b"line one\n!");

        let f = open(&mut p, "out.txt", "r");
        let buf = p.alloc_data_zeroed(64);
        let r = fgets(&mut p, &[CVal::Ptr(buf), CVal::Int(64), f]).unwrap();
        assert_eq!(r.as_ptr(), buf);
        assert_eq!(p.read_cstr_lossy(buf), "line one\n");
        let r2 = fgets(&mut p, &[CVal::Ptr(buf), CVal::Int(64), f]).unwrap();
        assert_eq!(p.read_cstr_lossy(r2.as_ptr()), "!");
        assert!(fgets(&mut p, &[CVal::Ptr(buf), CVal::Int(64), f]).unwrap().is_null());
        assert_eq!(feof(&mut p, &[f]).unwrap(), CVal::Int(1));
        fclose(&mut p, &[f]).unwrap();
    }

    #[test]
    fn fgets_size_one_stores_empty_string() {
        let mut p = libc_proc();
        let f = open(&mut p, "t", "w");
        let x = p.alloc_cstr("x");
        fputs(&mut p, &[CVal::Ptr(x), f]).ok();
        fclose(&mut p, &[f]).unwrap();
        let f = open(&mut p, "t", "r");
        let buf = p.alloc_data(&[0xFFu8; 4]);
        let r = fgets(&mut p, &[CVal::Ptr(buf), CVal::Int(1), f]).unwrap();
        assert_eq!(r.as_ptr(), buf, "returns s, not NULL");
        assert_eq!(p.read_u8(buf).unwrap(), 0, "stored the empty string");
        assert_eq!(p.read_u8(buf.add(1)).unwrap(), 0xFF, "wrote nothing else");
    }

    #[test]
    fn fopen_missing_file_sets_enoent() {
        let mut p = libc_proc();
        let f = open(&mut p, "missing", "r");
        assert!(f.is_null());
        assert_eq!(p.errno(), simproc::errno::ENOENT);
        let g = open(&mut p, "x", "frobnicate");
        assert!(g.is_null());
        assert_eq!(p.errno(), simproc::errno::EINVAL);
    }

    #[test]
    fn wild_file_pointer_faults() {
        let mut p = libc_proc();
        for f in
            [fgetc as fn(&mut Proc, &[CVal]) -> Result<CVal, Fault>, fclose as _, feof as _]
        {
            let err = f(&mut p, &[CVal::Ptr(WILD_ADDR)]).unwrap_err();
            assert!(matches!(err, Fault::Segv { .. }));
        }
    }

    #[test]
    fn non_file_memory_is_ebadf_not_crash() {
        let mut p = libc_proc();
        let fake = p.alloc_data_zeroed(16);
        assert_eq!(fgetc(&mut p, &[CVal::Ptr(fake)]).unwrap(), CVal::Int(EOF));
        assert_eq!(p.errno(), simproc::errno::EBADF);
    }

    #[test]
    fn double_fclose_is_ebadf() {
        let mut p = libc_proc();
        let f = open(&mut p, "t", "w");
        assert_eq!(fclose(&mut p, &[f]).unwrap(), CVal::Int(0));
        assert_eq!(fclose(&mut p, &[f]).unwrap(), CVal::Int(EOF));
    }

    #[test]
    fn fread_fwrite_binary() {
        let mut p = libc_proc();
        let f = open(&mut p, "bin", "w");
        let data = p.alloc_data(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let written =
            fwrite(&mut p, &[CVal::Ptr(data), CVal::Int(4), CVal::Int(2), f]).unwrap();
        assert_eq!(written, CVal::Int(2));
        fclose(&mut p, &[f]).unwrap();

        let f = open(&mut p, "bin", "r");
        let buf = p.alloc_data_zeroed(8);
        let read = fread(&mut p, &[CVal::Ptr(buf), CVal::Int(4), CVal::Int(2), f]).unwrap();
        assert_eq!(read, CVal::Int(2));
        assert_eq!(p.read_bytes(buf, 8).unwrap(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
        fclose(&mut p, &[f]).unwrap();
    }

    #[test]
    fn puts_and_printf_hit_stdout() {
        let mut p = libc_proc();
        let s = p.alloc_cstr("hello");
        puts(&mut p, &[CVal::Ptr(s)]).unwrap();
        let f = p.alloc_cstr("%d+%d\n");
        printf(&mut p, &[CVal::Ptr(f), CVal::Int(2), CVal::Int(3)]).unwrap();
        putchar(&mut p, &[CVal::Int(b'.' as i64)]).unwrap();
        assert_eq!(p.kernel.stdout_text(), "hello\n2+3\n.");
    }

    #[test]
    fn sprintf_unbounded_snprintf_bounded() {
        let mut p = libc_proc();
        let dst = p.alloc_data_zeroed(32);
        let f = p.alloc_cstr("%s-%d");
        let world = p.alloc_cstr("world");
        let n = sprintf(
            &mut p,
            &[CVal::Ptr(dst), CVal::Ptr(f), CVal::Ptr(world), CVal::Int(9)],
        )
        .unwrap();
        assert_eq!(n, CVal::Int(7));
        assert_eq!(p.read_cstr_lossy(dst), "world-9");

        let small = p.alloc_data_zeroed(4);
        let n = snprintf(
            &mut p,
            &[CVal::Ptr(small), CVal::Int(4), CVal::Ptr(f), CVal::Ptr(world), CVal::Int(9)],
        )
        .unwrap();
        assert_eq!(n, CVal::Int(7), "returns the would-be length");
        assert_eq!(p.read_cstr_lossy(small), "wor");
    }

    #[test]
    fn fprintf_writes_to_file() {
        let mut p = libc_proc();
        let f = open(&mut p, "log", "w");
        let fmt = p.alloc_cstr("pid=%d");
        fprintf(&mut p, &[f, CVal::Ptr(fmt), CVal::Int(7)]).unwrap();
        fclose(&mut p, &[f]).unwrap();
        assert_eq!(p.kernel.file("log").unwrap(), b"pid=7");
    }

    #[test]
    fn fflush_null_ok_wild_faults() {
        let mut p = libc_proc();
        assert_eq!(fflush(&mut p, &[CVal::NULL]).unwrap(), CVal::Int(0));
        assert!(matches!(
            fflush(&mut p, &[CVal::Ptr(WILD_ADDR)]).unwrap_err(),
            Fault::Segv { .. }
        ));
    }
}
