//! `sscanf` — the input-side sibling of the printf engine, with its own
//! era-faithful sharp edge: `%s` copies a whitespace-delimited token into
//! the caller's buffer *without any bound*, the other classic overflow
//! (`gets`' cousin).

use simproc::{CVal, Fault, Proc};

use crate::util::{arg, enter, ok_int};

fn is_space(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\n' | b'\r' | 0x0b | 0x0c)
}

/// `int sscanf(const char *str, const char *format, ...);`
///
/// Supported conversions: `%d %i %u %x %c %s %%` with optional width, and
/// literal/whitespace matching. Returns the number of successful
/// conversions (0 on immediate mismatch, like the original; the paper's
/// era had no `EOF` distinction for string scanning worth modelling).
pub fn sscanf(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    enter(p)?;
    let mut input = arg(args, 0).as_ptr();
    let fmt = p.read_cstr(arg(args, 1).as_ptr())?;
    let out_args = &args[2.min(args.len())..];
    let mut converted = 0i64;
    let mut argi = 0usize;

    let mut i = 0usize;
    while i < fmt.len() {
        let f = fmt[i];
        if is_space(f) {
            // Whitespace in the format skips any amount of input space.
            while is_space(p.read_u8(input)?) {
                input = input.add(1);
            }
            i += 1;
            continue;
        }
        if f != b'%' {
            // Literal match.
            if p.read_u8(input)? != f {
                return ok_int(converted);
            }
            input = input.add(1);
            i += 1;
            continue;
        }
        i += 1;
        if fmt.get(i) == Some(&b'%') {
            if p.read_u8(input)? != b'%' {
                return ok_int(converted);
            }
            input = input.add(1);
            i += 1;
            continue;
        }
        // Width.
        let mut width = 0usize;
        while let Some(d) = fmt.get(i).filter(|d| d.is_ascii_digit()) {
            width = width * 10 + (d - b'0') as usize;
            i += 1;
        }
        // Length modifiers collapse.
        while matches!(fmt.get(i), Some(b'l') | Some(b'h') | Some(b'z')) {
            i += 1;
        }
        let Some(&conv) = fmt.get(i) else { break };
        i += 1;
        let dest = arg(out_args, argi).as_ptr();
        argi += 1;

        match conv {
            b'd' | b'i' | b'u' | b'x' => {
                while is_space(p.read_u8(input)?) {
                    input = input.add(1);
                }
                let base: i64 = if conv == b'x' { 16 } else { 10 };
                let mut neg = false;
                let mut cur = input;
                match p.read_u8(cur)? {
                    b'-' if conv != b'u' => {
                        neg = true;
                        cur = cur.add(1);
                    }
                    b'+' => cur = cur.add(1),
                    _ => {}
                }
                let mut value = 0i64;
                let mut digits = 0usize;
                loop {
                    if width > 0 && digits >= width {
                        break;
                    }
                    let b = p.read_u8(cur)?;
                    let d = match b {
                        b'0'..=b'9' => (b - b'0') as i64,
                        b'a'..=b'f' if base == 16 => (b - b'a' + 10) as i64,
                        b'A'..=b'F' if base == 16 => (b - b'A' + 10) as i64,
                        _ => break,
                    };
                    value = value.wrapping_mul(base).wrapping_add(d);
                    digits += 1;
                    cur = cur.add(1);
                }
                if digits == 0 {
                    return ok_int(converted);
                }
                if neg {
                    value = -value;
                }
                // %d stores an int (4 bytes) — through whatever pointer
                // the caller gave us. Wild pointers fault, faithfully.
                p.write_u32(dest, value as u32)?;
                input = cur;
                converted += 1;
            }
            b'c' => {
                let n = width.max(1);
                for k in 0..n {
                    let b = p.read_u8(input)?;
                    if b == 0 {
                        // Input exhausted mid-conversion: the whole %Nc
                        // fails, like the real matching failure.
                        return ok_int(converted);
                    }
                    p.write_u8(dest.add(k as u64), b)?;
                    input = input.add(1);
                }
                converted += 1;
            }
            b's' => {
                while is_space(p.read_u8(input)?) {
                    input = input.add(1);
                }
                // The bug that launched a thousand advisories: without a
                // width, the token is copied unbounded.
                let mut written = 0u64;
                loop {
                    let b = p.read_u8(input)?;
                    if b == 0 || is_space(b) {
                        break;
                    }
                    if width > 0 && written as usize >= width {
                        break;
                    }
                    p.write_u8(dest.add(written), b)?;
                    written += 1;
                    input = input.add(1);
                }
                if written == 0 {
                    return ok_int(converted);
                }
                p.write_u8(dest.add(written), 0)?;
                converted += 1;
            }
            _ => return ok_int(converted), // unsupported conversion
        }
    }
    ok_int(converted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::libc_proc;
    use simproc::layout::WILD_ADDR;
    use simproc::VirtAddr;

    fn run(p: &mut Proc, input: &str, fmt: &str, dests: &[VirtAddr]) -> i64 {
        let inp = p.alloc_cstr(input);
        let f = p.alloc_cstr(fmt);
        let mut args = vec![CVal::Ptr(inp), CVal::Ptr(f)];
        args.extend(dests.iter().map(|d| CVal::Ptr(*d)));
        sscanf(p, &args).unwrap().as_int()
    }

    #[test]
    fn parses_ints_strings_chars() {
        let mut p = libc_proc();
        let d1 = p.alloc_data_zeroed(4);
        let s1 = p.alloc_data_zeroed(32);
        let c1 = p.alloc_data_zeroed(1);
        let n = run(&mut p, "42 hello x", "%d %s %c", &[d1, s1, c1]);
        assert_eq!(n, 3);
        assert_eq!(p.read_u32(d1).unwrap(), 42);
        assert_eq!(p.read_cstr_lossy(s1), "hello");
        assert_eq!(p.read_u8(c1).unwrap(), b'x');
    }

    #[test]
    fn negative_hex_width_and_literals() {
        let mut p = libc_proc();
        let d = p.alloc_data_zeroed(4);
        assert_eq!(run(&mut p, "-17", "%d", &[d]), 1);
        assert_eq!(p.read_u32(d).unwrap() as i32, -17);
        assert_eq!(run(&mut p, "ff", "%x", &[d]), 1);
        assert_eq!(p.read_u32(d).unwrap(), 0xff);
        assert_eq!(run(&mut p, "12345", "%3d", &[d]), 1);
        assert_eq!(p.read_u32(d).unwrap(), 123);
        let s = p.alloc_data_zeroed(8);
        assert_eq!(run(&mut p, "key=value", "key=%4s", &[s]), 1);
        assert_eq!(p.read_cstr_lossy(s), "valu");
    }

    #[test]
    fn mismatch_stops_early() {
        let mut p = libc_proc();
        let d = p.alloc_data_zeroed(4);
        assert_eq!(run(&mut p, "abc", "%d", &[d]), 0);
        assert_eq!(run(&mut p, "1 x 2", "%d y %d", &[d, d]), 1);
        let s = p.alloc_data_zeroed(8);
        assert_eq!(run(&mut p, "50% off", "%d%% %s", &[d, s]), 2);
    }

    #[test]
    fn unbounded_percent_s_overflows() {
        // The signature fragility: a 64-char token into an 8-byte buffer
        // silently tramples the neighbour.
        let mut p = libc_proc();
        let buf = p.alloc_data_zeroed(8);
        let marker = p.alloc_data(b"MARK");
        let token = "A".repeat(64);
        let n = run(&mut p, &token, "%s", &[buf]);
        assert_eq!(n, 1);
        assert_eq!(p.read_bytes(marker, 4).unwrap(), b"AAAA", "neighbour clobbered");
    }

    #[test]
    fn percent_c_fails_on_short_input() {
        let mut p = libc_proc();
        let c3 = p.alloc_data(&[0xEEu8; 4]);
        assert_eq!(run(&mut p, "a", "%3c", &[c3]), 0, "short input fails the conversion");
        assert_eq!(p.read_u8(c3.add(3)).unwrap(), 0xEE, "no stray writes");
    }

    #[test]
    fn wild_pointers_fault() {
        let mut p = libc_proc();
        let inp = p.alloc_cstr("7");
        let f = p.alloc_cstr("%d");
        let err = sscanf(&mut p, &[CVal::Ptr(inp), CVal::Ptr(f), CVal::Ptr(WILD_ADDR)])
            .unwrap_err();
        assert!(matches!(err, Fault::Segv { .. }));
        // Wild input string too.
        let err = sscanf(&mut p, &[CVal::Ptr(WILD_ADDR), CVal::Ptr(f), CVal::Ptr(inp)])
            .unwrap_err();
        assert!(matches!(err, Fault::Segv { .. }));
    }

    #[test]
    fn missing_varargs_read_as_null_and_fault() {
        let mut p = libc_proc();
        let inp = p.alloc_cstr("5");
        let f = p.alloc_cstr("%d");
        let err = sscanf(&mut p, &[CVal::Ptr(inp), CVal::Ptr(f)]).unwrap_err();
        assert!(matches!(err, Fault::Segv { .. }));
    }
}
