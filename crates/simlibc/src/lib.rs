//! # simlibc — the simulated C library HEALERS hardens
//!
//! Roughly one hundred C library functions implemented over the
//! [`simproc`] substrate with the *fragility profile of a 2003 libc*:
//! `strcpy` overflows, `atoi(NULL)` segfaults, `isalpha(100000)` indexes
//! off its table, `free` runs the unchecked boundary-tag `unlink` that
//! heap-smashing exploits abuse, and `printf` honours `%n`. The HEALERS
//! pipeline (crates `injector`, `wrappergen`, `guardian`) discovers these
//! behaviours by fault injection and generates wrappers that contain
//! them.
//!
//! The crate exposes:
//!
//! * the function implementations, grouped by header ([`string`],
//!   [`mem`], [`ctype`], [`wctype`], [`conv`], [`alloc`], `env`,
//!   [`sort`], [`misc`], [`stdio`], [`fmt`]);
//! * the allocator itself ([`heap`]), with host-side invariant checking;
//! * the library's symbol table with C prototypes ([`symbols`],
//!   [`prototypes`], [`header_text`]);
//! * a second small library ([`math`]) so multi-library demos work;
//! * process bring-up ([`setup::init_process`]).
//!
//! ```
//! use simlibc::{setup::init_process, symbols};
//! use simproc::CVal;
//!
//! let mut p = init_process();
//! let strlen = symbols().into_iter().find(|s| s.name == "strlen").unwrap();
//! let s = p.alloc_cstr("healers");
//! let len = (strlen.imp)(&mut p, &[CVal::Ptr(s)]).unwrap();
//! assert_eq!(len, CVal::Int(7));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
pub mod conv;
pub mod ctype;
pub mod env;
pub mod fmt;
pub mod heap;
pub mod math;
pub mod mem;
pub mod misc;
pub mod scan;
pub mod setup;
pub mod sort;
pub mod state;
pub mod stdio;
pub mod string;
#[doc(hidden)]
pub mod testutil;
mod util;
pub mod wctype;

use cdecl::{parse_prototype, Prototype, TypedefTable};
use simproc::HostFn;

/// Name of the simulated C library.
pub const LIB_NAME: &str = "libsimc.so.1";

/// One exported symbol: name, C prototype, host implementation.
#[derive(Debug, Clone, Copy)]
pub struct SymbolDef {
    /// Symbol name.
    pub name: &'static str,
    /// The C prototype as it would appear in the header / man page.
    pub proto: &'static str,
    /// Host implementation.
    pub imp: HostFn,
}

macro_rules! sym {
    ($name:ident, $module:ident, $proto:expr) => {
        SymbolDef { name: stringify!($name), proto: $proto, imp: $module::$name }
    };
}

/// The full symbol table of `libsimc.so.1`.
pub fn symbols() -> Vec<SymbolDef> {
    vec![
        // --- string.h: strings -------------------------------------------
        sym!(strlen, string, "size_t strlen(const char *s);"),
        sym!(strnlen, string, "size_t strnlen(const char *s, size_t maxlen);"),
        sym!(strcpy, string, "char *strcpy(char *dest, const char *src);"),
        sym!(strncpy, string, "char *strncpy(char *dest, const char *src, size_t n);"),
        sym!(strcat, string, "char *strcat(char *dest, const char *src);"),
        sym!(strncat, string, "char *strncat(char *dest, const char *src, size_t n);"),
        sym!(strcmp, string, "int strcmp(const char *s1, const char *s2);"),
        sym!(strncmp, string, "int strncmp(const char *s1, const char *s2, size_t n);"),
        sym!(strcasecmp, string, "int strcasecmp(const char *s1, const char *s2);"),
        sym!(strncasecmp, string, "int strncasecmp(const char *s1, const char *s2, size_t n);"),
        sym!(strchr, string, "char *strchr(const char *s, int c);"),
        sym!(strrchr, string, "char *strrchr(const char *s, int c);"),
        sym!(strstr, string, "char *strstr(const char *haystack, const char *needle);"),
        sym!(strspn, string, "size_t strspn(const char *s, const char *accept);"),
        sym!(strcspn, string, "size_t strcspn(const char *s, const char *reject);"),
        sym!(strpbrk, string, "char *strpbrk(const char *s, const char *accept);"),
        sym!(strtok, string, "char *strtok(char *str, const char *delim);"),
        sym!(strtok_r, string, "char *strtok_r(char *str, const char *delim, char **saveptr);"),
        sym!(strsep, string, "char *strsep(char **stringp, const char *delim);"),
        sym!(strlcpy, string, "size_t strlcpy(char *dst, const char *src, size_t size);"),
        sym!(strlcat, string, "size_t strlcat(char *dst, const char *src, size_t size);"),
        sym!(strdup, string, "char *strdup(const char *s);"),
        sym!(strndup, string, "char *strndup(const char *s, size_t n);"),
        sym!(strerror, string, "char *strerror(int errnum);"),
        // --- string.h: memory --------------------------------------------
        sym!(memcpy, mem, "void *memcpy(void *dest, const void *src, size_t n);"),
        sym!(mempcpy, mem, "void *mempcpy(void *dest, const void *src, size_t n);"),
        sym!(memmove, mem, "void *memmove(void *dest, const void *src, size_t n);"),
        sym!(memset, mem, "void *memset(void *s, int c, size_t n);"),
        sym!(memcmp, mem, "int memcmp(const void *s1, const void *s2, size_t n);"),
        sym!(memchr, mem, "void *memchr(const void *s, int c, size_t n);"),
        sym!(bzero, mem, "void bzero(void *s, size_t n);"),
        sym!(bcopy, mem, "void bcopy(const void *src, void *dest, size_t n);"),
        // --- ctype.h -------------------------------------------------------
        sym!(isalnum, ctype, "int isalnum(int c);"),
        sym!(isalpha, ctype, "int isalpha(int c);"),
        sym!(isascii, ctype, "int isascii(int c);"),
        sym!(isblank, ctype, "int isblank(int c);"),
        sym!(iscntrl, ctype, "int iscntrl(int c);"),
        sym!(isdigit, ctype, "int isdigit(int c);"),
        sym!(isgraph, ctype, "int isgraph(int c);"),
        sym!(islower, ctype, "int islower(int c);"),
        sym!(isprint, ctype, "int isprint(int c);"),
        sym!(ispunct, ctype, "int ispunct(int c);"),
        sym!(isspace, ctype, "int isspace(int c);"),
        sym!(isupper, ctype, "int isupper(int c);"),
        sym!(isxdigit, ctype, "int isxdigit(int c);"),
        sym!(tolower, ctype, "int tolower(int c);"),
        sym!(toupper, ctype, "int toupper(int c);"),
        // --- wctype.h ------------------------------------------------------
        sym!(wctrans, wctype, "wctrans_t wctrans(const char *name);"),
        sym!(towctrans, wctype, "wint_t towctrans(wint_t wc, wctrans_t desc);"),
        sym!(wctype, wctype, "wctype_t wctype(const char *name);"),
        sym!(iswctype, wctype, "int iswctype(wint_t wc, wctype_t desc);"),
        sym!(towlower, wctype, "wint_t towlower(wint_t wc);"),
        sym!(towupper, wctype, "wint_t towupper(wint_t wc);"),
        // --- stdlib.h: conversions ----------------------------------------
        sym!(atoi, conv, "int atoi(const char *nptr);"),
        sym!(atol, conv, "long atol(const char *nptr);"),
        sym!(atoll, conv, "long long atoll(const char *nptr);"),
        sym!(atof, conv, "double atof(const char *nptr);"),
        sym!(strtol, conv, "long strtol(const char *nptr, char **endptr, int base);"),
        sym!(strtoul, conv, "unsigned long strtoul(const char *nptr, char **endptr, int base);"),
        sym!(strtod, conv, "double strtod(const char *nptr, char **endptr);"),
        sym!(abs, conv, "int abs(int j);"),
        sym!(labs, conv, "long labs(long j);"),
        sym!(llabs, conv, "long long llabs(long long j);"),
        sym!(div, conv, "div_t div(int numerator, int denominator);"),
        sym!(ldiv, conv, "ldiv_t ldiv(long numerator, long denominator);"),
        // --- stdlib.h: memory ---------------------------------------------
        sym!(malloc, alloc, "void *malloc(size_t size);"),
        sym!(free, alloc, "void free(void *ptr);"),
        sym!(calloc, alloc, "void *calloc(size_t nmemb, size_t size);"),
        sym!(realloc, alloc, "void *realloc(void *ptr, size_t size);"),
        // --- stdlib.h: environment ----------------------------------------
        sym!(getenv, env, "char *getenv(const char *name);"),
        sym!(setenv, env, "int setenv(const char *name, const char *value, int overwrite);"),
        sym!(unsetenv, env, "int unsetenv(const char *name);"),
        sym!(putenv, env, "int putenv(char *string);"),
        // --- stdlib.h: sorting --------------------------------------------
        sym!(
            qsort,
            sort,
            "void qsort(void *base, size_t nmemb, size_t size, int (*compar)(const void *, const void *));"
        ),
        sym!(
            bsearch,
            sort,
            "void *bsearch(const void *key, const void *base, size_t nmemb, size_t size, int (*compar)(const void *, const void *));"
        ),
        // --- stdlib.h / unistd.h: process ---------------------------------
        sym!(rand, misc, "int rand(void);"),
        sym!(srand, misc, "void srand(unsigned int seed);"),
        sym!(rand_r, misc, "int rand_r(unsigned int *seedp);"),
        sym!(atexit, misc, "int atexit(void (*function)(void));"),
        sym!(exit, misc, "void exit(int status);"),
        sym!(abort, misc, "void abort(void);"),
        sym!(system, misc, "int system(const char *command);"),
        sym!(time, misc, "time_t time(time_t *tloc);"),
        sym!(getpid, misc, "int getpid(void);"),
        sym!(sleep, misc, "unsigned int sleep(unsigned int seconds);"),
        // --- stdio.h ---------------------------------------------------------
        sym!(fopen, stdio, "FILE *fopen(const char *path, const char *mode);"),
        sym!(fclose, stdio, "int fclose(FILE *stream);"),
        sym!(fgetc, stdio, "int fgetc(FILE *stream);"),
        sym!(fgets, stdio, "char *fgets(char *s, int size, FILE *stream);"),
        sym!(fputc, stdio, "int fputc(int c, FILE *stream);"),
        sym!(fputs, stdio, "int fputs(const char *s, FILE *stream);"),
        sym!(fread, stdio, "size_t fread(void *ptr, size_t size, size_t nmemb, FILE *stream);"),
        sym!(fwrite, stdio, "size_t fwrite(const void *ptr, size_t size, size_t nmemb, FILE *stream);"),
        sym!(feof, stdio, "int feof(FILE *stream);"),
        sym!(fflush, stdio, "int fflush(FILE *stream);"),
        sym!(puts, stdio, "int puts(const char *s);"),
        sym!(putchar, stdio, "int putchar(int c);"),
        sym!(printf, stdio, "int printf(const char *format, ...);"),
        sym!(fprintf, stdio, "int fprintf(FILE *stream, const char *format, ...);"),
        sym!(sprintf, stdio, "int sprintf(char *str, const char *format, ...);"),
        sym!(snprintf, stdio, "int snprintf(char *str, size_t size, const char *format, ...);"),
        sym!(sscanf, scan, "int sscanf(const char *str, const char *format, ...);"),
    ]
}

/// Parsed prototypes for every libc symbol, in table order.
///
/// # Panics
///
/// Panics if a table entry's prototype fails to parse — a unit test
/// guards this invariant.
pub fn prototypes() -> Vec<Prototype> {
    let table = TypedefTable::with_builtins();
    symbols()
        .iter()
        .map(|s| {
            parse_prototype(s.proto, &table)
                .unwrap_or_else(|e| panic!("prototype of {}: {e}", s.name))
        })
        .collect()
}

/// Looks up a symbol by name.
pub fn find_symbol(name: &str) -> Option<SymbolDef> {
    symbols().into_iter().find(|s| s.name == name)
}

/// A synthetic header file for the whole library — what the HEALERS
/// prototype-extraction stage parses in the §3.1 demo.
pub fn header_text() -> String {
    let mut out = String::from(
        "#ifndef _SIMLIBC_H\n#define _SIMLIBC_H 1\n\n/* libsimc.so.1 — simulated C library */\n\n",
    );
    for s in symbols() {
        out.push_str(s.proto);
        out.push('\n');
    }
    out.push_str("\n#endif /* _SIMLIBC_H */\n");
    out
}

/// The DESCRIPTION prose of a function's man page. Functions whose
/// argument contracts the real man pages document carry the documenting
/// phrases ("must not be NULL", "null-terminated", "may be NULL",
/// "format string") — the raw material the analyzer's contract-inference
/// pass mines. Everything else gets a generic line.
pub fn man_description(name: &str) -> &'static str {
    match name {
        "strlen" => {
            "The s argument must point to a null-terminated string and must not be NULL."
        }
        "strcmp" | "strncmp" => {
            "The s1 argument must point to a null-terminated string and must not be \
             NULL. The s2 argument must point to a null-terminated string and must \
             not be NULL."
        }
        "strcpy" | "strcat" => {
            "The src argument must point to a null-terminated string and must not be NULL."
        }
        "strchr" => {
            "The s argument must point to a null-terminated string and must not be NULL."
        }
        "atoi" | "atol" => {
            "The nptr argument must point to a null-terminated string and must not \
             be NULL."
        }
        "puts" => {
            "The s argument must point to a null-terminated string and must not be NULL."
        }
        "printf" => {
            "The format argument is a printf-style format string; it must point to a \
             null-terminated string and must not be NULL."
        }
        "free" => "The ptr argument may be NULL, in which case no operation is performed.",
        "time" => "The tloc argument may be NULL.",
        "strtol" => {
            "The nptr argument must point to a null-terminated string and must not \
             be NULL. The endptr argument may be NULL."
        }
        _ => "See the HEALERS paper.",
    }
}

/// A synthetic man page for one function (SYNOPSIS plus a DESCRIPTION
/// carrying any documented argument contracts) — the other prototype
/// source of Figure 2, and the phrase source for contract inference.
pub fn man_page(name: &str) -> Option<String> {
    let sym = find_symbol(name)?;
    Some(format!(
        "{upper}(3)                Simulated Programmer's Manual                {upper}(3)\n\n\
         NAME\n       {name} - simulated C library function\n\n\
         SYNOPSIS\n       #include <simlibc.h>\n\n       {proto}\n\n\
         DESCRIPTION\n       {desc}\n",
        upper = name.to_uppercase(),
        proto = sym.proto,
        desc = man_description(name),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_prototypes_parse_and_match_names() {
        let protos = prototypes();
        let syms = symbols();
        assert_eq!(protos.len(), syms.len());
        for (p, s) in protos.iter().zip(&syms) {
            assert_eq!(p.name, s.name, "prototype name mismatch");
        }
    }

    #[test]
    fn symbol_count_is_library_scale() {
        assert!(symbols().len() >= 90, "got {}", symbols().len());
    }

    #[test]
    fn no_duplicate_symbols() {
        let mut names: Vec<_> = symbols().iter().map(|s| s.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn header_text_parses_back() {
        let mut table = TypedefTable::with_builtins();
        let info = cdecl::parse_header(&header_text(), &mut table);
        assert_eq!(info.prototypes.len(), symbols().len(), "skipped: {:?}", info.skipped);
    }

    #[test]
    fn man_pages_parse_back() {
        let table = TypedefTable::with_builtins();
        for name in ["strcpy", "wctrans", "qsort"] {
            let page = man_page(name).unwrap();
            let info = cdecl::parse_manpage(&page, &table);
            assert_eq!(info.prototypes.len(), 1, "{name}: {:?}", info.skipped);
            assert_eq!(info.prototypes[0].name, name);
        }
        assert!(man_page("not_a_function").is_none());
    }

    #[test]
    fn man_descriptions_surface_contract_phrases() {
        let page = man_page("strlen").unwrap();
        let desc = cdecl::description_section(&page).unwrap();
        assert!(desc.contains("null-terminated"), "{desc}");
        assert!(desc.contains("must not be NULL"), "{desc}");
        let page = man_page("free").unwrap();
        assert!(man_description("free").contains("may be NULL"));
        assert!(cdecl::description_section(&page).unwrap().contains("may be NULL"));
        assert_eq!(man_description("qsort"), "See the HEALERS paper.");
    }

    #[test]
    fn find_symbol_works() {
        assert!(find_symbol("strcpy").is_some());
        assert!(find_symbol("nonexistent").is_none());
    }
}
