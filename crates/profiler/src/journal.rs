//! The healing audit journal: a second event stream alongside the call
//! statistics of [`crate::Stats`]. Every decision the healing wrapper
//! takes — an argument repaired in place, a call retried, a benign value
//! substituted, a violation contained — is recorded here, shipped in the
//! same self-describing XML document as the profiling data, and rendered
//! in the text report. Nothing heals silently.

use std::fmt;

use parking_lot::Mutex;

/// What the healing wrapper did about one violation or fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HealAction {
    /// An argument was repaired in place (or substituted) before the call.
    Repaired,
    /// The original was re-invoked with re-sanitized arguments.
    Retried,
    /// A fault was swallowed and a containment value returned with
    /// `errno = EINVAL`.
    Substituted,
    /// The call was skipped and a benign value manufactured, errno
    /// untouched (failure-oblivious mode).
    Obliviated,
    /// The call was rejected with `errno = EINVAL` (classic containment).
    Contained,
    /// The process was terminated (security response).
    Terminated,
    /// The violation was recorded and the call passed through unchanged
    /// (observe-only posture).
    Observed,
    /// An overflow was *prevented* outright: a proven-sound safer-variant
    /// substitution clipped the write to the destination's exact extent,
    /// so no canary was ever smashed and no process was terminated.
    Prevented,
}

impl HealAction {
    /// Stable tag used in XML documents and reports.
    pub fn tag(self) -> &'static str {
        match self {
            HealAction::Repaired => "repaired",
            HealAction::Retried => "retried",
            HealAction::Substituted => "substituted",
            HealAction::Obliviated => "obliviated",
            HealAction::Contained => "contained",
            HealAction::Terminated => "terminated",
            HealAction::Observed => "observed",
            HealAction::Prevented => "prevented",
        }
    }
}

impl fmt::Display for HealAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealEvent {
    /// Wrapped function in which the violation was observed.
    pub func: String,
    /// Zero-based index of the offending argument, when the event is
    /// attributable to one (fault-path events are not).
    pub arg: Option<usize>,
    /// The violated robust type, as the wrapper displays it.
    pub violation: String,
    /// Violation-class tag the policy engine resolved against.
    pub class: String,
    /// What the wrapper did.
    pub action: HealAction,
    /// Human-readable description of the concrete repair.
    pub detail: String,
}

/// Shared, append-only journal of healing events.
#[derive(Debug, Default)]
pub struct HealingJournal {
    events: Mutex<Vec<HealEvent>>,
}

impl HealingJournal {
    /// An empty journal.
    pub fn new() -> Self {
        HealingJournal::default()
    }

    /// Appends one event.
    pub fn record(&self, event: HealEvent) {
        self.events.lock().push(event);
    }

    /// A copy of every event recorded so far, in order.
    pub fn snapshot(&self) -> Vec<HealEvent> {
        self.events.lock().clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Discards every recorded event (benchmarks replay millions of
    /// healed calls; the journal must not grow without bound there).
    pub fn clear(&self) {
        self.events.lock().clear();
    }

    /// Number of events with the given action.
    pub fn count(&self, action: HealAction) -> usize {
        self.events.lock().iter().filter(|e| e.action == action).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(func: &str, action: HealAction) -> HealEvent {
        HealEvent {
            func: func.into(),
            arg: Some(0),
            violation: "readable NUL-terminated string".into(),
            class: "unterminated-string".into(),
            action,
            detail: "NUL-terminated buffer at offset 15".into(),
        }
    }

    #[test]
    fn journal_accumulates_in_order() {
        let j = HealingJournal::new();
        assert!(j.is_empty());
        j.record(sample("strcpy", HealAction::Repaired));
        j.record(sample("strlen", HealAction::Contained));
        assert_eq!(j.len(), 2);
        let snap = j.snapshot();
        assert_eq!(snap[0].func, "strcpy");
        assert_eq!(snap[1].action, HealAction::Contained);
        assert_eq!(j.count(HealAction::Repaired), 1);
        assert_eq!(j.count(HealAction::Obliviated), 0);
    }

    #[test]
    fn action_tags_are_stable() {
        assert_eq!(HealAction::Repaired.tag(), "repaired");
        assert_eq!(HealAction::Obliviated.to_string(), "obliviated");
        assert_eq!(HealAction::Terminated.tag(), "terminated");
    }
}
