//! Runtime statistics gathered by the profiling wrapper's
//! micro-generators: call counters, errno histograms, per-function
//! execution time (deterministic cycles standing in for `rdtsc`) and
//! log2-bucketed latency histograms per function and hook stage.
//!
//! # Sharding
//!
//! [`Stats`] used to be one global mutex, which serialized every wrapped
//! call the moment two threads shared a wrapper. It is now a fixed array
//! of cache-line-aligned shards; each recording thread is pinned to one
//! shard on first use, so threads on different shards never contend.
//! [`Stats::snapshot`] merges all shards into one deterministic
//! [`Snapshot`]: every merge is a commutative sum into sorted maps, so
//! the merged result is independent of thread scheduling, and a
//! single-threaded run produces byte-for-byte the same XML document as
//! the pre-shard implementation. [`MutexStats`] preserves that pre-shard
//! implementation for A/B contention benchmarks and equivalence tests.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use simproc::errno::MAX_ERRNO;

/// Number of statistics shards. Threads are assigned round-robin; more
/// threads than shards simply share (correctness never depends on
/// exclusivity, only contention does).
const NUM_SHARDS: usize = 16;

/// A log2-bucketed latency histogram: bucket `0` counts zero-valued
/// samples, bucket `b >= 1` counts samples in `[2^(b-1), 2^b - 1]`.
/// Sparse — only buckets that received samples are stored — and merged
/// by commutative sums, so shard merges are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: BTreeMap<u32, u64>,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// The bucket index a value falls into: `0` for `0`, else
    /// `64 - value.leading_zeros()` (so `1 -> 1`, `2..=3 -> 2`,
    /// `4..=7 -> 3`, ..., `u64::MAX -> 64`).
    pub fn bucket_of(value: u64) -> u32 {
        64 - value.leading_zeros()
    }

    /// The smallest value that lands in `bucket`.
    pub fn bucket_floor(bucket: u32) -> u64 {
        if bucket == 0 {
            0
        } else {
            1u64 << (bucket - 1)
        }
    }

    /// Human-readable range label for `bucket` (`"0"`, `"1"`,
    /// `"2..3"`, `"4..7"`, ...).
    pub fn bucket_label(bucket: u32) -> String {
        match bucket {
            0 | 1 => bucket.to_string(),
            64 => format!("{}..{}", 1u64 << 63, u64::MAX),
            b => format!("{}..{}", 1u64 << (b - 1), (1u64 << b) - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        *self.buckets.entry(Self::bucket_of(value)).or_insert(0) += 1;
    }

    /// Adds every bucket of `other` into `self` (shard merge).
    pub fn merge_from(&mut self, other: &LatencyHistogram) {
        for (b, n) in &other.buckets {
            *self.buckets.entry(*b).or_insert(0) += n;
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.values().sum()
    }

    /// `true` when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Iterates `(bucket index, count)` in ascending bucket order.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.buckets.iter().map(|(b, n)| (*b, *n))
    }
}

/// Statistics for one wrapped function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncStats {
    /// Number of calls (`call counter` micro-generator).
    pub calls: u64,
    /// Cycles spent inside the function (`function exectime`).
    pub cycles: u64,
    /// errno values produced by this function (`func errors`); the key
    /// `MAX_ERRNO` is the out-of-range bucket, as in Figure 3.
    pub errnos: BTreeMap<i32, u64>,
    /// Latency histograms keyed by hook stage (`"call"`, `"check"`,
    /// `"heal"`, ...). Only populated through
    /// [`Stats::record_latency`] — the classic recording paths leave it
    /// empty, which keeps the default XML document byte-identical to the
    /// pre-histogram format.
    pub latency: BTreeMap<String, LatencyHistogram>,
}

/// The mergeable per-shard table (also the whole table of the pre-shard
/// [`MutexStats`]).
#[derive(Debug, Default)]
struct StatsInner {
    per_func: BTreeMap<String, FuncStats>,
    /// Process-wide errno distribution (`collect errors`).
    global_errnos: BTreeMap<i32, u64>,
    total_cycles: u64,
}

impl StatsInner {
    /// Looks up (or lazily creates) the per-function row. Lookups borrow
    /// `func` so the hot path never allocates; the owned key is only
    /// built the first time a function is seen.
    fn func_entry(&mut self, func: &str) -> &mut FuncStats {
        if !self.per_func.contains_key(func) {
            self.per_func.insert(func.to_string(), FuncStats::default());
        }
        self.per_func.get_mut(func).expect("row just ensured")
    }

    fn record_call(&mut self, func: &str, cycles: u64, errno_changed_to: Option<i32>) {
        let entry = self.func_entry(func);
        entry.calls += 1;
        entry.cycles += cycles;
        if let Some(e) = errno_changed_to {
            *entry.errnos.entry(bucket(e)).or_insert(0) += 1;
        }
        self.total_cycles += cycles;
        if let Some(e) = errno_changed_to {
            *self.global_errnos.entry(bucket(e)).or_insert(0) += 1;
        }
    }

    fn record_count(&mut self, func: &str) {
        self.func_entry(func).calls += 1;
    }

    fn record_cycles(&mut self, func: &str, cycles: u64) {
        self.func_entry(func).cycles += cycles;
        self.total_cycles += cycles;
    }

    fn record_func_errno(&mut self, func: &str, errno: i32) {
        *self.func_entry(func).errnos.entry(bucket(errno)).or_insert(0) += 1;
    }

    fn record_global_errno(&mut self, errno: i32) {
        *self.global_errnos.entry(bucket(errno)).or_insert(0) += 1;
    }

    fn record_latency(&mut self, func: &str, stage: &str, value: u64) {
        let row = self.func_entry(func);
        if let Some(hist) = row.latency.get_mut(stage) {
            hist.record(value);
        } else {
            let mut hist = LatencyHistogram::new();
            hist.record(value);
            row.latency.insert(stage.to_string(), hist);
        }
    }

    /// Adds everything recorded in `self` into `dst` — commutative and
    /// associative, so the shard merge order never shows in a snapshot.
    fn merge_into(&self, dst: &mut Snapshot) {
        for (name, f) in &self.per_func {
            let entry = dst.per_func.entry(name.clone()).or_default();
            entry.calls += f.calls;
            entry.cycles += f.cycles;
            for (e, n) in &f.errnos {
                *entry.errnos.entry(*e).or_insert(0) += n;
            }
            for (stage, hist) in &f.latency {
                entry.latency.entry(stage.clone()).or_default().merge_from(hist);
            }
        }
        for (e, n) in &self.global_errnos {
            *dst.global_errnos.entry(*e).or_insert(0) += n;
        }
        dst.total_cycles += self.total_cycles;
    }
}

/// One statistics shard, padded to a cache line so neighbouring shards
/// never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Shard {
    inner: Mutex<StatsInner>,
}

/// Statistics for a whole profiled run. Shared by all hooks through an
/// `Arc`, like the wrapper's globals. Recording threads write to
/// per-thread shards without contention; [`Stats::snapshot`] merges
/// deterministically.
#[derive(Debug)]
pub struct Stats {
    shards: [Shard; NUM_SHARDS],
}

impl Default for Stats {
    fn default() -> Self {
        Stats { shards: std::array::from_fn(|_| Shard::default()) }
    }
}

/// Round-robin assignment of threads to shards, fixed at a thread's
/// first record. A plain counter (not the unstable `ThreadId` value)
/// keeps the mapping cheap: one thread-local read per record.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static SHARD_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn shard_index() -> usize {
    SHARD_INDEX.with(|cell| {
        let mut i = cell.get();
        if i == usize::MAX {
            i = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % NUM_SHARDS;
            cell.set(i);
        }
        i
    })
}

/// A snapshot of collected statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Per-function statistics, sorted by name.
    pub per_func: BTreeMap<String, FuncStats>,
    /// Process-wide errno distribution.
    pub global_errnos: BTreeMap<i32, u64>,
    /// Total cycles spent inside wrapped functions.
    pub total_cycles: u64,
}

impl Snapshot {
    /// Total calls across all functions.
    pub fn total_calls(&self) -> u64 {
        self.per_func.values().map(|f| f.calls).sum()
    }

    /// Percentage of wrapped-function time spent in `name`.
    pub fn time_share(&self, name: &str) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        let cycles = self.per_func.get(name).map(|f| f.cycles).unwrap_or(0);
        100.0 * cycles as f64 / self.total_cycles as f64
    }

    /// `true` when any function carries a latency histogram.
    pub fn has_latency(&self) -> bool {
        self.per_func.values().any(|f| !f.latency.is_empty())
    }
}

fn bucket(errno: i32) -> i32 {
    if !(0..MAX_ERRNO).contains(&errno) {
        MAX_ERRNO
    } else {
        errno
    }
}

impl Stats {
    /// Creates an empty statistics table.
    pub fn new() -> Self {
        Stats::default()
    }

    fn shard(&self) -> &Shard {
        &self.shards[shard_index()]
    }

    /// Records one completed call. `errno_changed_to` carries the errno
    /// value if the call changed errno (the `func errors` /
    /// `collect errors` condition in Figure 3).
    pub fn record_call(&self, func: &str, cycles: u64, errno_changed_to: Option<i32>) {
        self.shard().inner.lock().record_call(func, cycles, errno_changed_to);
    }

    /// `call counter` micro-generator: one more call of `func`.
    pub fn record_count(&self, func: &str) {
        self.shard().inner.lock().record_count(func);
    }

    /// `function exectime` micro-generator: cycles spent inside `func`.
    pub fn record_cycles(&self, func: &str, cycles: u64) {
        self.shard().inner.lock().record_cycles(func, cycles);
    }

    /// `func errors` micro-generator: `func` changed errno to `errno`.
    pub fn record_func_errno(&self, func: &str, errno: i32) {
        self.shard().inner.lock().record_func_errno(func, errno);
    }

    /// `collect errors` micro-generator: process-wide errno histogram.
    pub fn record_global_errno(&self, errno: i32) {
        self.shard().inner.lock().record_global_errno(errno);
    }

    /// Adds one sample to the log2 latency histogram of `func`'s `stage`
    /// (`"call"` for the wrapped call itself; hooks use their own stage
    /// names such as `"check"` or `"heal"`).
    pub fn record_latency(&self, func: &str, stage: &str, value: u64) {
        self.shard().inner.lock().record_latency(func, stage, value);
    }

    /// Takes a consistent, deterministic snapshot: shards are locked in
    /// index order and merged by commutative sums into sorted maps, so
    /// the same recorded multiset of events always yields the same
    /// snapshot regardless of which thread recorded what.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for shard in &self.shards {
            shard.inner.lock().merge_into(&mut snap);
        }
        snap
    }

    /// Clears everything (a fresh profiling run).
    pub fn reset(&self) {
        for shard in &self.shards {
            *shard.inner.lock() = StatsInner::default();
        }
    }
}

/// The pre-shard statistics implementation: the same recording API as
/// [`Stats`] behind one global mutex. Kept as the baseline side of the
/// telemetry contention benchmark and for sharded-vs-mutex equivalence
/// tests; new code should use [`Stats`].
#[derive(Debug, Default)]
pub struct MutexStats {
    inner: Mutex<StatsInner>,
}

impl MutexStats {
    /// Creates an empty statistics table.
    pub fn new() -> Self {
        MutexStats::default()
    }

    /// See [`Stats::record_call`].
    pub fn record_call(&self, func: &str, cycles: u64, errno_changed_to: Option<i32>) {
        self.inner.lock().record_call(func, cycles, errno_changed_to);
    }

    /// See [`Stats::record_count`].
    pub fn record_count(&self, func: &str) {
        self.inner.lock().record_count(func);
    }

    /// See [`Stats::record_cycles`].
    pub fn record_cycles(&self, func: &str, cycles: u64) {
        self.inner.lock().record_cycles(func, cycles);
    }

    /// See [`Stats::record_func_errno`].
    pub fn record_func_errno(&self, func: &str, errno: i32) {
        self.inner.lock().record_func_errno(func, errno);
    }

    /// See [`Stats::record_global_errno`].
    pub fn record_global_errno(&self, errno: i32) {
        self.inner.lock().record_global_errno(errno);
    }

    /// See [`Stats::record_latency`].
    pub fn record_latency(&self, func: &str, stage: &str, value: u64) {
        self.inner.lock().record_latency(func, stage, value);
    }

    /// Takes a consistent snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        self.inner.lock().merge_into(&mut snap);
        snap
    }

    /// Clears everything.
    pub fn reset(&self) {
        *self.inner.lock() = StatsInner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simproc::errno::{EINVAL, ENOENT};

    #[test]
    fn records_calls_cycles_and_errnos() {
        let stats = Stats::new();
        stats.record_call("strcpy", 120, None);
        stats.record_call("strcpy", 80, None);
        stats.record_call("fopen", 300, Some(ENOENT));
        stats.record_call("fopen", 100, Some(EINVAL));
        let snap = stats.snapshot();
        assert_eq!(snap.total_calls(), 4);
        assert_eq!(snap.per_func["strcpy"].calls, 2);
        assert_eq!(snap.per_func["strcpy"].cycles, 200);
        assert_eq!(snap.per_func["fopen"].errnos[&ENOENT], 1);
        assert_eq!(snap.global_errnos[&EINVAL], 1);
        assert_eq!(snap.total_cycles, 600);
    }

    #[test]
    fn time_share_sums_to_100() {
        let stats = Stats::new();
        stats.record_call("a", 750, None);
        stats.record_call("b", 250, None);
        let snap = stats.snapshot();
        assert!((snap.time_share("a") - 75.0).abs() < 1e-9);
        assert!((snap.time_share("b") - 25.0).abs() < 1e-9);
        assert_eq!(snap.time_share("missing"), 0.0);
    }

    #[test]
    fn out_of_range_errnos_hit_the_overflow_bucket() {
        let stats = Stats::new();
        stats.record_call("f", 1, Some(-3));
        stats.record_call("f", 1, Some(9999));
        let snap = stats.snapshot();
        assert_eq!(snap.per_func["f"].errnos[&MAX_ERRNO], 2);
    }

    #[test]
    fn fine_grained_recording_matches_record_call() {
        let a = Stats::new();
        a.record_call("f", 100, Some(EINVAL));
        let b = Stats::new();
        b.record_count("f");
        b.record_cycles("f", 100);
        b.record_func_errno("f", EINVAL);
        b.record_global_errno(EINVAL);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn reset_clears() {
        let stats = Stats::new();
        stats.record_call("x", 5, None);
        stats.record_latency("x", "call", 5);
        stats.reset();
        assert_eq!(stats.snapshot(), Snapshot::default());
    }

    #[test]
    fn empty_snapshot_time_share_is_zero() {
        let snap = Stats::new().snapshot();
        assert_eq!(snap.time_share("anything"), 0.0);
        assert_eq!(snap.total_calls(), 0);
        assert!(!snap.has_latency());
    }

    #[test]
    fn latency_buckets_are_log2() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(7), 3);
        assert_eq!(LatencyHistogram::bucket_of(1023), 10);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), 64);
        assert_eq!(LatencyHistogram::bucket_floor(0), 0);
        assert_eq!(LatencyHistogram::bucket_floor(1), 1);
        assert_eq!(LatencyHistogram::bucket_floor(11), 1024);
        assert_eq!(LatencyHistogram::bucket_label(2), "2..3");
        assert_eq!(LatencyHistogram::bucket_label(0), "0");
        assert_eq!(
            LatencyHistogram::bucket_label(64),
            format!("{}..{}", 1u64 << 63, u64::MAX)
        );
    }

    #[test]
    fn latency_histograms_record_and_merge() {
        let stats = Stats::new();
        for v in [0, 1, 2, 3, 900, 1100] {
            stats.record_latency("memcpy", "call", v);
        }
        stats.record_latency("memcpy", "check", 5);
        let snap = stats.snapshot();
        assert!(snap.has_latency());
        let call = &snap.per_func["memcpy"].latency["call"];
        assert_eq!(call.count(), 6);
        let buckets: Vec<_> = call.buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (10, 1), (11, 1)]);
        assert_eq!(snap.per_func["memcpy"].latency["check"].count(), 1);
        // Latency never leaks into the classic counters.
        assert_eq!(snap.per_func["memcpy"].calls, 0);
        assert_eq!(snap.total_cycles, 0);
    }

    #[test]
    fn sharded_and_mutex_stats_agree() {
        let sharded = Stats::new();
        let mutexed = MutexStats::new();
        for i in 0..100u64 {
            let errno = if i % 10 == 0 { Some(ENOENT) } else { None };
            sharded.record_call("fopen", i, errno);
            mutexed.record_call("fopen", i, errno);
            sharded.record_latency("fopen", "call", i);
            mutexed.record_latency("fopen", "call", i);
        }
        assert_eq!(sharded.snapshot(), mutexed.snapshot());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let stats = std::sync::Arc::new(Stats::new());
        let threads = 8;
        let per_thread = 1000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let stats = std::sync::Arc::clone(&stats);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        stats.record_call("hot", 2, (i % 50 == 0).then_some(EINVAL));
                        stats.record_latency("hot", "call", t * per_thread + i);
                    }
                });
            }
        });
        let snap = stats.snapshot();
        assert_eq!(snap.per_func["hot"].calls, threads * per_thread);
        assert_eq!(snap.per_func["hot"].cycles, 2 * threads * per_thread);
        assert_eq!(snap.per_func["hot"].errnos[&EINVAL], threads * (per_thread / 50));
        assert_eq!(snap.per_func["hot"].latency["call"].count(), threads * per_thread);
    }
}
