//! Runtime statistics gathered by the profiling wrapper's
//! micro-generators: call counters, errno histograms and per-function
//! execution time (deterministic cycles standing in for `rdtsc`).

use std::collections::BTreeMap;

use parking_lot::Mutex;
use simproc::errno::MAX_ERRNO;

/// Statistics for one wrapped function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncStats {
    /// Number of calls (`call counter` micro-generator).
    pub calls: u64,
    /// Cycles spent inside the function (`function exectime`).
    pub cycles: u64,
    /// errno values produced by this function (`func errors`); the key
    /// `MAX_ERRNO` is the out-of-range bucket, as in Figure 3.
    pub errnos: BTreeMap<i32, u64>,
}

/// Statistics for a whole profiled run. Shared by all hooks through an
/// `Arc`, like the wrapper's globals.
#[derive(Debug, Default)]
pub struct Stats {
    inner: Mutex<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    per_func: BTreeMap<String, FuncStats>,
    /// Process-wide errno distribution (`collect errors`).
    global_errnos: BTreeMap<i32, u64>,
    total_cycles: u64,
}

/// A snapshot of collected statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Per-function statistics, sorted by name.
    pub per_func: BTreeMap<String, FuncStats>,
    /// Process-wide errno distribution.
    pub global_errnos: BTreeMap<i32, u64>,
    /// Total cycles spent inside wrapped functions.
    pub total_cycles: u64,
}

impl Snapshot {
    /// Total calls across all functions.
    pub fn total_calls(&self) -> u64 {
        self.per_func.values().map(|f| f.calls).sum()
    }

    /// Percentage of wrapped-function time spent in `name`.
    pub fn time_share(&self, name: &str) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        let cycles = self.per_func.get(name).map(|f| f.cycles).unwrap_or(0);
        100.0 * cycles as f64 / self.total_cycles as f64
    }
}

fn bucket(errno: i32) -> i32 {
    if !(0..MAX_ERRNO).contains(&errno) {
        MAX_ERRNO
    } else {
        errno
    }
}

impl Stats {
    /// Creates an empty statistics table.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Records one completed call. `errno_changed_to` carries the errno
    /// value if the call changed errno (the `func errors` /
    /// `collect errors` condition in Figure 3).
    pub fn record_call(&self, func: &str, cycles: u64, errno_changed_to: Option<i32>) {
        let mut inner = self.inner.lock();
        let entry = inner.per_func.entry(func.to_string()).or_default();
        entry.calls += 1;
        entry.cycles += cycles;
        if let Some(e) = errno_changed_to {
            *entry.errnos.entry(bucket(e)).or_insert(0) += 1;
        }
        inner.total_cycles += cycles;
        if let Some(e) = errno_changed_to {
            *inner.global_errnos.entry(bucket(e)).or_insert(0) += 1;
        }
    }

    /// `call counter` micro-generator: one more call of `func`.
    pub fn record_count(&self, func: &str) {
        let mut inner = self.inner.lock();
        inner.per_func.entry(func.to_string()).or_default().calls += 1;
    }

    /// `function exectime` micro-generator: cycles spent inside `func`.
    pub fn record_cycles(&self, func: &str, cycles: u64) {
        let mut inner = self.inner.lock();
        inner.per_func.entry(func.to_string()).or_default().cycles += cycles;
        inner.total_cycles += cycles;
    }

    /// `func errors` micro-generator: `func` changed errno to `errno`.
    pub fn record_func_errno(&self, func: &str, errno: i32) {
        let mut inner = self.inner.lock();
        *inner
            .per_func
            .entry(func.to_string())
            .or_default()
            .errnos
            .entry(bucket(errno))
            .or_insert(0) += 1;
    }

    /// `collect errors` micro-generator: process-wide errno histogram.
    pub fn record_global_errno(&self, errno: i32) {
        let mut inner = self.inner.lock();
        *inner.global_errnos.entry(bucket(errno)).or_insert(0) += 1;
    }

    /// Takes a consistent snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock();
        Snapshot {
            per_func: inner.per_func.clone(),
            global_errnos: inner.global_errnos.clone(),
            total_cycles: inner.total_cycles,
        }
    }

    /// Clears everything (a fresh profiling run).
    pub fn reset(&self) {
        *self.inner.lock() = StatsInner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simproc::errno::{EINVAL, ENOENT};

    #[test]
    fn records_calls_cycles_and_errnos() {
        let stats = Stats::new();
        stats.record_call("strcpy", 120, None);
        stats.record_call("strcpy", 80, None);
        stats.record_call("fopen", 300, Some(ENOENT));
        stats.record_call("fopen", 100, Some(EINVAL));
        let snap = stats.snapshot();
        assert_eq!(snap.total_calls(), 4);
        assert_eq!(snap.per_func["strcpy"].calls, 2);
        assert_eq!(snap.per_func["strcpy"].cycles, 200);
        assert_eq!(snap.per_func["fopen"].errnos[&ENOENT], 1);
        assert_eq!(snap.global_errnos[&EINVAL], 1);
        assert_eq!(snap.total_cycles, 600);
    }

    #[test]
    fn time_share_sums_to_100() {
        let stats = Stats::new();
        stats.record_call("a", 750, None);
        stats.record_call("b", 250, None);
        let snap = stats.snapshot();
        assert!((snap.time_share("a") - 75.0).abs() < 1e-9);
        assert!((snap.time_share("b") - 25.0).abs() < 1e-9);
        assert_eq!(snap.time_share("missing"), 0.0);
    }

    #[test]
    fn out_of_range_errnos_hit_the_overflow_bucket() {
        let stats = Stats::new();
        stats.record_call("f", 1, Some(-3));
        stats.record_call("f", 1, Some(9999));
        let snap = stats.snapshot();
        assert_eq!(snap.per_func["f"].errnos[&MAX_ERRNO], 2);
    }

    #[test]
    fn fine_grained_recording_matches_record_call() {
        let a = Stats::new();
        a.record_call("f", 100, Some(EINVAL));
        let b = Stats::new();
        b.record_count("f");
        b.record_cycles("f", 100);
        b.record_func_errno("f", EINVAL);
        b.record_global_errno(EINVAL);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn reset_clears() {
        let stats = Stats::new();
        stats.record_call("x", 5, None);
        stats.reset();
        assert_eq!(stats.snapshot(), Snapshot::default());
    }

    #[test]
    fn empty_snapshot_time_share_is_zero() {
        let snap = Stats::new().snapshot();
        assert_eq!(snap.time_share("anything"), 0.0);
        assert_eq!(snap.total_calls(), 0);
    }
}
