//! The central collection server of §2.3: wrappers running in many
//! processes ship their self-describing XML documents to one place
//! "for later processing". Transport here is an in-process channel; the
//! document format and aggregation are the paper's.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{select, unbounded, Sender};

use crate::doc::{parse_fleet_document, parse_header_fields};

/// How many rejected documents each collection point keeps as a sample
/// for diagnosis (the first K to arrive, with their parse-failure
/// reasons). Beyond the cap, rejects are counted but not stored.
pub const REJECTED_SAMPLE_CAP: usize = 8;

/// How much of a rejected document's text is kept in its sample.
pub const REJECTED_SNIPPET_LEN: usize = 96;

/// A diagnosable trace of one rejected document: why it failed to parse
/// and the head of its text. Without these, a fleet with one malformed
/// submitter shows only a climbing reject counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectedSample {
    /// Stable parse-failure reason tag from [`parse_fleet_document`].
    pub reason: &'static str,
    /// The first [`REJECTED_SNIPPET_LEN`] bytes of the document.
    pub snippet: String,
}

impl RejectedSample {
    /// Builds a sample for a document that failed to parse with `reason`.
    pub fn of(doc: &str, reason: &'static str) -> Self {
        let mut end = doc.len().min(REJECTED_SNIPPET_LEN);
        while !doc.is_char_boundary(end) {
            end -= 1;
        }
        RejectedSample { reason, snippet: doc[..end].to_string() }
    }
}

/// The Dekker-style shutdown handshake shared by every collection point
/// (the single-server [`Collector`] and the fleet ingest shards):
/// a submitter publishes itself in `in_flight` *before* checking
/// `closed`, while shutdown sets `closed` and then waits for `in_flight`
/// to drain before the final queue drain. Both sides use `SeqCst`, so in
/// the single total order either the submitter's increment precedes
/// shutdown's store (and shutdown waits for the enqueue to land), or the
/// submitter observes `closed` and refuses — a `true` ack is therefore
/// a guarantee of collection.
///
/// The wait side spins only briefly before parking on a condvar: a
/// preempted submitter must not pin the shutdown thread's core.
#[derive(Debug, Default)]
pub(crate) struct DrainGate {
    closed: AtomicBool,
    in_flight: AtomicU64,
    lock: Mutex<()>,
    drained: Condvar,
}

/// Rounds of `yield_now` before the shutdown waiter parks.
const DRAIN_SPIN_ROUNDS: u32 = 64;

/// Park timeout while waiting for in-flight submitters. The timeout
/// (rather than a bare `wait`) closes the missed-wakeup race where the
/// last submitter decrements and notifies between the waiter's check
/// and its park.
const DRAIN_PARK: Duration = Duration::from_millis(1);

impl DrainGate {
    pub(crate) fn new() -> Self {
        DrainGate::default()
    }

    /// Submitter side: publish, then check. Returns `false` (after
    /// un-publishing) when the gate is closed — the submission must be
    /// refused. A `true` return obliges the caller to call
    /// [`DrainGate::end_submit`] after its enqueue.
    pub(crate) fn begin_submit(&self) -> bool {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        if self.closed.load(Ordering::SeqCst) {
            self.end_submit();
            return false;
        }
        true
    }

    /// Submitter side: the enqueue landed (or was refused); un-publish
    /// and wake a parked shutdown waiter if we were the last.
    pub(crate) fn end_submit(&self) {
        if self.in_flight.fetch_sub(1, Ordering::SeqCst) == 1
            && self.closed.load(Ordering::SeqCst)
        {
            let _guard = self.lock.lock().unwrap_or_else(|p| p.into_inner());
            self.drained.notify_all();
        }
    }

    /// Shutdown side: close the door, then wait for every submitter
    /// that already passed the `closed` check to finish its enqueue.
    /// Bounded spin first (the common case drains in nanoseconds), then
    /// parked waits so a preempted submitter cannot pin this core.
    pub(crate) fn close_and_wait(&self) {
        self.closed.store(true, Ordering::SeqCst);
        for _ in 0..DRAIN_SPIN_ROUNDS {
            if self.in_flight.load(Ordering::SeqCst) == 0 {
                return;
            }
            std::thread::yield_now();
        }
        let mut guard = self.lock.lock().unwrap_or_else(|p| p.into_inner());
        while self.in_flight.load(Ordering::SeqCst) > 0 {
            let (g, _timeout) = self
                .drained
                .wait_timeout(guard, DRAIN_PARK)
                .unwrap_or_else(|p| p.into_inner());
            guard = g;
        }
    }
}

/// One accepted submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submission {
    /// Application that was profiled.
    pub application: String,
    /// Wrapper type that collected the data.
    pub wrapper: String,
    /// Functions the document covers.
    pub functions: Vec<String>,
    /// The raw document, stored for later processing.
    pub document: String,
}

/// Everything the server gathered by shutdown time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Collected {
    /// Submissions in arrival order.
    pub submissions: Vec<Submission>,
    /// Documents that failed to parse.
    pub rejected: usize,
    /// The first [`REJECTED_SAMPLE_CAP`] rejected documents, with their
    /// parse-failure reasons — the diagnosable trace of a malformed
    /// submitter.
    pub rejected_samples: Vec<RejectedSample>,
}

impl Collected {
    /// Submission count per application.
    pub fn per_application(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for s in &self.submissions {
            *out.entry(s.application.clone()).or_insert(0) += 1;
        }
        out
    }

    /// Submission count per wrapper type.
    pub fn per_wrapper(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for s in &self.submissions {
            *out.entry(s.wrapper.clone()).or_insert(0) += 1;
        }
        out
    }
}

/// Handle for submitting documents to a running server. Clones may
/// outlive the server; submissions after shutdown are refused.
#[derive(Debug, Clone)]
pub struct Collector {
    tx: Sender<String>,
    gate: Arc<DrainGate>,
}

impl Collector {
    /// Submits one document. Returns `false` if the server has shut down.
    ///
    /// A `true` return is a real acknowledgement: the document is
    /// guaranteed to appear in the [`Collected`] result — see
    /// [`DrainGate`] for the ordering argument.
    pub fn submit(&self, document: impl Into<String>) -> bool {
        if !self.gate.begin_submit() {
            return false;
        }
        let ok = self.tx.send(document.into()).is_ok();
        self.gate.end_submit();
        ok
    }
}

/// The collection server: a background thread draining a channel. An
/// explicit stop signal ends the thread even while collector clones are
/// still alive.
#[derive(Debug)]
pub struct CollectionServer {
    tx: Sender<String>,
    stop_tx: Option<Sender<()>>,
    gate: Arc<DrainGate>,
    handle: Option<JoinHandle<Collected>>,
}

impl CollectionServer {
    /// Starts the server thread.
    pub fn start() -> Self {
        let (tx, rx) = unbounded::<String>();
        let (stop_tx, stop_rx) = unbounded::<()>();
        let handle = std::thread::spawn(move || {
            let mut collected = Collected::default();
            let accept =
                |doc: String, collected: &mut Collected| match parse_header_fields(&doc) {
                    Some((application, wrapper, functions)) => {
                        collected.submissions.push(Submission {
                            application,
                            wrapper,
                            functions,
                            document: doc,
                        });
                    }
                    None => {
                        collected.rejected += 1;
                        if collected.rejected_samples.len() < REJECTED_SAMPLE_CAP {
                            let reason = parse_fleet_document(&doc)
                                .err()
                                .unwrap_or("unparseable document");
                            collected
                                .rejected_samples
                                .push(RejectedSample::of(&doc, reason));
                        }
                    }
                };
            loop {
                select! {
                    recv(rx) -> msg => match msg {
                        Ok(doc) => accept(doc, &mut collected),
                        Err(_) => break,
                    },
                    recv(stop_rx) -> _ => {
                        // Drain whatever is already queued, then stop.
                        while let Ok(doc) = rx.try_recv() {
                            accept(doc, &mut collected);
                        }
                        break;
                    }
                }
            }
            collected
        });
        CollectionServer {
            tx,
            stop_tx: Some(stop_tx),
            gate: Arc::new(DrainGate::new()),
            handle: Some(handle),
        }
    }

    /// A handle wrappers use to submit documents.
    pub fn collector(&self) -> Collector {
        Collector { tx: self.tx.clone(), gate: Arc::clone(&self.gate) }
    }

    /// Closes the door to new submissions and waits for every submit
    /// that already passed the `closed` check to finish its send — only
    /// then may the server thread do its final drain, so every
    /// `true`-acked submission is provably in the channel by the time
    /// the drain runs. See [`DrainGate`] for the ordering argument.
    fn close_and_drain(&mut self) {
        self.gate.close_and_wait();
        if let Some(stop) = self.stop_tx.take() {
            let _ = stop.send(());
        }
    }

    /// Stops accepting documents and returns everything gathered.
    pub fn shutdown(mut self) -> Collected {
        self.close_and_drain();
        self.handle
            .take()
            .expect("server running")
            .join()
            .expect("collection thread panicked")
    }
}

impl Drop for CollectionServer {
    fn drop(&mut self) {
        self.close_and_drain();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::to_xml;
    use crate::stats::Stats;

    fn doc(app: &str, wrapper: &str) -> String {
        let stats = Stats::new();
        stats.record_call("strlen", 10, None);
        to_xml(app, wrapper, &stats.snapshot())
    }

    #[test]
    fn collects_from_multiple_submitters() {
        let server = CollectionServer::start();
        let c1 = server.collector();
        let c2 = server.collector();
        let t1 = std::thread::spawn(move || {
            for _ in 0..5 {
                assert!(c1.submit(doc("app-a", "profiling")));
            }
        });
        let t2 = std::thread::spawn(move || {
            for _ in 0..3 {
                assert!(c2.submit(doc("app-b", "robustness")));
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
        let collected = server.shutdown();
        assert_eq!(collected.submissions.len(), 8);
        assert_eq!(collected.per_application()["app-a"], 5);
        assert_eq!(collected.per_application()["app-b"], 3);
        assert_eq!(collected.per_wrapper()["profiling"], 5);
        assert_eq!(collected.rejected, 0);
    }

    #[test]
    fn malformed_documents_are_rejected_not_fatal() {
        let server = CollectionServer::start();
        let c = server.collector();
        c.submit("garbage");
        c.submit(doc("ok", "profiling"));
        let collected = server.shutdown();
        assert_eq!(collected.submissions.len(), 1);
        assert_eq!(collected.rejected, 1);
    }

    #[test]
    fn submit_after_shutdown_fails_gracefully() {
        let server = CollectionServer::start();
        let c = server.collector();
        let _ = server.shutdown();
        assert!(!c.submit("late"));
    }

    #[test]
    fn every_acked_submission_is_collected() {
        // Regression test for the shutdown race: submit could observe
        // `closed == false`, the server could then drain and exit, and
        // the send still "succeeded" into a channel nobody read —
        // returning `true` for a silently dropped document. Race many
        // submitters against shutdown and assert the ack count equals
        // the collected count, every round.
        use std::sync::atomic::AtomicUsize;
        for round in 0..50 {
            let server = CollectionServer::start();
            let acked = Arc::new(AtomicUsize::new(0));
            let submitters: Vec<_> = (0..4)
                .map(|t| {
                    let c = server.collector();
                    let acked = Arc::clone(&acked);
                    std::thread::spawn(move || {
                        for i in 0..20 {
                            if c.submit(doc(&format!("app-{t}-{i}"), "profiling")) {
                                acked.fetch_add(1, Ordering::SeqCst);
                            } else {
                                // Once the server refuses, it stays shut.
                                return;
                            }
                            std::thread::yield_now();
                        }
                    })
                })
                .collect();
            // Shut down somewhere in the middle of the submission storm.
            if round % 2 == 0 {
                std::thread::yield_now();
            }
            let collected = server.shutdown();
            for t in submitters {
                t.join().unwrap();
            }
            assert_eq!(
                collected.submissions.len(),
                acked.load(Ordering::SeqCst),
                "round {round}: every true-acked submission must be collected"
            );
        }
    }
}
