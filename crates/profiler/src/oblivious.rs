//! The oblivious-execution audit: every value the context-aware
//! failure-oblivious engine manufactures, every out-of-bounds write it
//! suppresses, and every later call that consumed one of those
//! manufactured values. HEALERS' availability mode is only honest if
//! nothing is absorbed silently — this ledger is what the exit/fault
//! XML's `<oblivious>` section and the policy-ablation report read.
//!
//! All three ledgers are bounded; overflow is counted, never dropped
//! silently. Recording is deterministic (no clocks, no RNG), so
//! same-seed campaigns produce byte-identical audits.

use std::collections::BTreeSet;
use std::sync::Arc;

use parking_lot::Mutex;

/// Default per-ledger entry cap.
pub const OBLIVIOUS_LEDGER_CAP: usize = 256;

/// One manufactured read: a check or fault the engine answered with a
/// context-selected benign value instead of letting the call proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManufacturedRead {
    /// Wrapped function that absorbed the violation.
    pub func: String,
    /// Zero-based argument index the violation was attributed to, if
    /// argument-level (`None` for whole-call fault absorption).
    pub arg: Option<usize>,
    /// Violation class tag (`null-pointer`, `buffer-overflow`, ...).
    pub class: String,
    /// The argument role that selected the value (`cstr-scan`,
    /// `buf-len-read`, `contract-default`, ...).
    pub role: String,
    /// The manufactured value, rendered.
    pub value: String,
    /// Human-readable context.
    pub detail: String,
}

/// One suppressed out-of-bounds write, attributed to a precise object
/// via the guardian oracle's region introspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowWrite {
    /// Wrapped function whose write was suppressed.
    pub func: String,
    /// Zero-based index of the destination argument.
    pub arg: Option<usize>,
    /// Destination address of the suppressed write.
    pub addr: u64,
    /// Base of the object the destination resolves to (0 when the
    /// pointer resolves to no object at all).
    pub object_base: u64,
    /// Size of that object in bytes.
    pub object_extent: u64,
    /// Bytes the call would have written (0 when unmeasurable).
    pub attempted: u64,
    /// Bytes that fell outside the object — the corruption clipped.
    pub clipped: u64,
    /// Human-readable context.
    pub detail: String,
}

/// A downstream call that consumed a manufactured (tainted) value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintedUse {
    /// The consuming function.
    pub func: String,
    /// Zero-based argument index where the tainted value appeared.
    pub arg: usize,
    /// The tainted value, rendered.
    pub value: String,
}

/// Point-in-time copy of the audit, for XML rendering and reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObliviousSnapshot {
    /// Manufactured reads, in record order.
    pub reads: Vec<ManufacturedRead>,
    /// Suppressed writes, in record order.
    pub writes: Vec<ShadowWrite>,
    /// Downstream consumptions of tainted values, in record order.
    pub uses: Vec<TaintedUse>,
    /// Entries dropped because a ledger hit its cap (reads, writes,
    /// uses) — non-zero means the ledgers undercount but say so.
    pub dropped: u64,
}

impl ObliviousSnapshot {
    /// `true` when nothing was recorded (and nothing overflowed).
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
            && self.writes.is_empty()
            && self.uses.is_empty()
            && self.dropped == 0
    }
}

#[derive(Debug, Default)]
struct AuditInner {
    reads: Vec<ManufacturedRead>,
    writes: Vec<ShadowWrite>,
    uses: Vec<TaintedUse>,
    dropped: u64,
    /// Non-null manufactured values, for downstream taint matching.
    taint: BTreeSet<u64>,
}

/// The bounded oblivious-execution ledger shared by every hook of a
/// wrapper library. Cheap to clone (`Arc` inside), thread-safe.
#[derive(Debug, Clone, Default)]
pub struct ObliviousAudit {
    inner: Arc<Mutex<AuditInner>>,
    cap: usize,
}

impl ObliviousAudit {
    /// An audit with the default ledger cap.
    pub fn new() -> Self {
        Self::with_cap(OBLIVIOUS_LEDGER_CAP)
    }

    /// An audit bounding each ledger at `cap` entries.
    pub fn with_cap(cap: usize) -> Self {
        ObliviousAudit { inner: Arc::default(), cap: cap.max(1) }
    }

    /// Records a manufactured read and marks its value tainted.
    pub fn record_read(&self, read: ManufacturedRead, taint_value: Option<u64>) {
        let mut inner = self.inner.lock();
        if let Some(v) = taint_value {
            if v != 0 {
                inner.taint.insert(v);
            }
        }
        if inner.reads.len() < self.cap {
            inner.reads.push(read);
        } else {
            inner.dropped += 1;
        }
    }

    /// Records a suppressed write.
    pub fn record_write(&self, write: ShadowWrite) {
        let mut inner = self.inner.lock();
        if inner.writes.len() < self.cap {
            inner.writes.push(write);
        } else {
            inner.dropped += 1;
        }
    }

    /// Records a downstream call consuming a tainted value.
    pub fn record_use(&self, used: TaintedUse) {
        let mut inner = self.inner.lock();
        if inner.uses.len() < self.cap {
            inner.uses.push(used);
        } else {
            inner.dropped += 1;
        }
    }

    /// Whether `value` was previously manufactured by this audit
    /// (NULL/zero is never tracked: it is indistinguishable from a
    /// legitimate zero).
    pub fn is_tainted(&self, value: u64) -> bool {
        value != 0 && self.inner.lock().taint.contains(&value)
    }

    /// Total recorded entries across all three ledgers.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock();
        inner.reads.len() + inner.writes.len() + inner.uses.len()
    }

    /// `true` when nothing has been recorded or dropped.
    pub fn is_empty(&self) -> bool {
        let inner = self.inner.lock();
        inner.reads.is_empty()
            && inner.writes.is_empty()
            && inner.uses.is_empty()
            && inner.dropped == 0
    }

    /// A point-in-time copy for rendering.
    pub fn snapshot(&self) -> ObliviousSnapshot {
        let inner = self.inner.lock();
        ObliviousSnapshot {
            reads: inner.reads.clone(),
            writes: inner.writes.clone(),
            uses: inner.uses.clone(),
            dropped: inner.dropped,
        }
    }

    /// Clears every ledger and the taint set.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.reads.clear();
        inner.writes.clear();
        inner.uses.clear();
        inner.taint.clear();
        inner.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(func: &str) -> ManufacturedRead {
        ManufacturedRead {
            func: func.into(),
            arg: Some(0),
            class: "null-pointer".into(),
            role: "cstr-scan".into(),
            value: "0".into(),
            detail: "NULL scanned as empty string".into(),
        }
    }

    #[test]
    fn ledgers_record_and_snapshot() {
        let audit = ObliviousAudit::new();
        assert!(audit.is_empty());
        audit.record_read(read("strlen"), None);
        audit.record_write(ShadowWrite {
            func: "strcpy".into(),
            arg: Some(0),
            addr: 0x1000,
            object_base: 0x1000,
            object_extent: 8,
            attempted: 12,
            clipped: 4,
            detail: "overflow suppressed".into(),
        });
        audit.record_use(TaintedUse { func: "puts".into(), arg: 0, value: "1".into() });
        assert_eq!(audit.len(), 3);
        let snap = audit.snapshot();
        assert_eq!(snap.reads.len(), 1);
        assert_eq!(snap.writes[0].clipped, 4);
        assert_eq!(snap.uses[0].func, "puts");
        assert!(!snap.is_empty());
        audit.clear();
        assert!(audit.is_empty());
    }

    #[test]
    fn taint_tracks_nonzero_manufactured_values_only() {
        let audit = ObliviousAudit::new();
        audit.record_read(read("strlen"), Some(0));
        assert!(!audit.is_tainted(0), "zero is never tainted");
        audit.record_read(read("strdup"), Some(0x4000));
        assert!(audit.is_tainted(0x4000));
        assert!(!audit.is_tainted(0x4001));
    }

    #[test]
    fn caps_count_overflow_instead_of_silently_dropping() {
        let audit = ObliviousAudit::with_cap(2);
        for _ in 0..5 {
            audit.record_read(read("strlen"), None);
        }
        let snap = audit.snapshot();
        assert_eq!(snap.reads.len(), 2);
        assert_eq!(snap.dropped, 3);
        assert!(!snap.is_empty(), "overflow keeps the audit non-empty");
    }
}
