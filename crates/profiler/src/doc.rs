//! The self-describing XML documents of §2.3: "the gathered information
//! sent to the server is in form of a self-describing XML document. The
//! server can extract from the document which functions were wrapped and
//! what kind of information was collected."

use cdecl::xml::XmlWriter;
use simproc::errno::errno_name;

use crate::flight::FlightRecord;
use crate::journal::HealEvent;
use crate::oblivious::ObliviousSnapshot;
use crate::stats::Snapshot;

/// Serialises a profiling snapshot into the self-describing document
/// format. `app` names the profiled application, `wrapper` the wrapper
/// type that collected the data.
pub fn to_xml(app: &str, wrapper: &str, snap: &Snapshot) -> String {
    to_xml_opts(app, wrapper, snap, None, &[])
}

/// [`to_xml`] with the healing audit journal appended as a `<healing>`
/// section — the document the healing wrapper ships at `exit`. The
/// section is self-describing like the rest: one `<event>` element per
/// journal entry carrying the function, argument, violated robust type,
/// violation class, action taken and a description of the repair.
pub fn to_xml_with_healing(
    app: &str,
    wrapper: &str,
    snap: &Snapshot,
    events: &[HealEvent],
) -> String {
    to_xml_opts(app, wrapper, snap, Some(events), &[])
}

/// [`to_xml`] with the flight-recorder tail appended as a
/// `<flight-recorder>` section (and, when `events` is `Some`, the
/// healing journal as well) — the document a wrapper ships when a fault
/// or heal fired and the last-N call history matters.
pub fn to_xml_with_flight(
    app: &str,
    wrapper: &str,
    snap: &Snapshot,
    events: Option<&[HealEvent]>,
    flight: &[FlightRecord],
) -> String {
    to_xml_opts(app, wrapper, snap, events, flight)
}

/// Fleet identity and termination verdict stamped onto a submission's
/// root element: which instance produced the document, which logical
/// reporting window it covers, and — for post-mortem documents shipped
/// on behalf of a crashed process — the wrapped function the fatal
/// fault escaped from and the fault's tag.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetMeta {
    /// Fleet member id.
    pub instance: u64,
    /// Logical reporting window (an epoch number stamped by the fleet
    /// driver, not wall-clock time — rollups stay deterministic).
    pub window: u64,
    /// Wrapped function a fatal fault escaped from, for crash documents.
    pub crashed_in: Option<String>,
    /// Tag of the fatal fault (`segv`, `hang`, ...), for crash documents.
    pub fault: Option<String>,
}

/// [`to_xml_with_healing`] for a fleet member: the root element
/// additionally carries `instance` and `window` attributes, plus
/// `crashed-in`/`fault` when the document is a post-mortem for a
/// process that died instead of reaching `exit`. Documents without the
/// extra attributes parse as window 0 of instance 0, so legacy
/// submitters and fleet submitters share one ingest path.
pub fn to_xml_for_fleet(
    app: &str,
    wrapper: &str,
    meta: &FleetMeta,
    snap: &Snapshot,
    events: Option<&[HealEvent]>,
) -> String {
    to_xml_fleet_opts(app, wrapper, Some(meta), snap, events, &[], None)
}

/// The full document form: everything [`to_xml_for_fleet`] carries plus
/// the oblivious-execution audit as an `<oblivious>` section (one
/// `<read>` per manufactured value, one `<write>` per suppressed
/// out-of-bounds write with its precise-object attribution, one `<use>`
/// per downstream call that consumed a tainted value). `meta` is
/// optional, so standalone and fleet submitters share this entry point;
/// an empty audit renders byte-identically to the audit-less forms —
/// the section only appears when there is something to disclose.
pub fn to_xml_with_oblivious(
    app: &str,
    wrapper: &str,
    meta: Option<&FleetMeta>,
    snap: &Snapshot,
    events: Option<&[HealEvent]>,
    flight: &[FlightRecord],
    oblivious: &ObliviousSnapshot,
) -> String {
    to_xml_fleet_opts(app, wrapper, meta, snap, events, flight, Some(oblivious))
}

fn to_xml_opts(
    app: &str,
    wrapper: &str,
    snap: &Snapshot,
    events: Option<&[HealEvent]>,
    flight: &[FlightRecord],
) -> String {
    to_xml_fleet_opts(app, wrapper, None, snap, events, flight, None)
}

fn to_xml_fleet_opts(
    app: &str,
    wrapper: &str,
    meta: Option<&FleetMeta>,
    snap: &Snapshot,
    events: Option<&[HealEvent]>,
    flight: &[FlightRecord],
    oblivious: Option<&ObliviousSnapshot>,
) -> String {
    let oblivious = oblivious.filter(|o| !o.is_empty());
    let mut w = XmlWriter::new();
    let mut root_attrs = vec![
        ("application".to_string(), app.to_string()),
        ("wrapper".to_string(), wrapper.to_string()),
        ("total-calls".to_string(), snap.total_calls().to_string()),
        ("total-cycles".to_string(), snap.total_cycles.to_string()),
    ];
    if let Some(meta) = meta {
        root_attrs.push(("instance".to_string(), meta.instance.to_string()));
        root_attrs.push(("window".to_string(), meta.window.to_string()));
        if let Some(func) = &meta.crashed_in {
            root_attrs.push(("crashed-in".to_string(), func.clone()));
        }
        if let Some(fault) = &meta.fault {
            root_attrs.push(("fault".to_string(), fault.clone()));
        }
    }
    let attr_refs: Vec<(&str, &str)> =
        root_attrs.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    w.open("healers-profile", &attr_refs);
    w.open("collected", &[]);
    w.leaf("metric", &[("name", "call-counter")]);
    w.leaf("metric", &[("name", "function-exectime")]);
    w.leaf("metric", &[("name", "func-errors")]);
    w.leaf("metric", &[("name", "collect-errors")]);
    if snap.has_latency() {
        w.leaf("metric", &[("name", "latency-histogram")]);
    }
    if events.is_some() {
        w.leaf("metric", &[("name", "healing-journal")]);
    }
    if !flight.is_empty() {
        w.leaf("metric", &[("name", "flight-recorder")]);
    }
    if oblivious.is_some() {
        w.leaf("metric", &[("name", "oblivious-audit")]);
    }
    w.close();
    for (name, f) in &snap.per_func {
        w.open(
            "function",
            &[
                ("name", name.as_str()),
                ("calls", &f.calls.to_string()),
                ("cycles", &f.cycles.to_string()),
                ("time-share", &format!("{:.2}", snap.time_share(name))),
            ],
        );
        for (e, n) in &f.errnos {
            w.leaf(
                "error",
                &[
                    ("errno", &e.to_string()),
                    ("name", errno_name(*e)),
                    ("count", &n.to_string()),
                ],
            );
        }
        for (stage, hist) in &f.latency {
            w.open(
                "latency",
                &[("stage", stage.as_str()), ("samples", &hist.count().to_string())],
            );
            for (b, n) in hist.buckets() {
                w.leaf(
                    "bucket",
                    &[
                        ("log2", &b.to_string()),
                        (
                            "floor",
                            &crate::stats::LatencyHistogram::bucket_floor(b).to_string(),
                        ),
                        ("count", &n.to_string()),
                    ],
                );
            }
            w.close();
        }
        w.close();
    }
    w.open("errno-distribution", &[]);
    for (e, n) in &snap.global_errnos {
        w.leaf(
            "error",
            &[
                ("errno", &e.to_string()),
                ("name", errno_name(*e)),
                ("count", &n.to_string()),
            ],
        );
    }
    w.close();
    if let Some(events) = events {
        w.open("healing", &[("events", &events.len().to_string())]);
        for ev in events {
            let arg = ev.arg.map(|i| (i + 1).to_string()).unwrap_or_else(|| "-".into());
            w.leaf(
                "event",
                &[
                    ("function", ev.func.as_str()),
                    ("arg", &arg),
                    ("class", ev.class.as_str()),
                    ("action", ev.action.tag()),
                    ("violation", ev.violation.as_str()),
                    ("detail", ev.detail.as_str()),
                ],
            );
        }
        w.close();
    }
    if !flight.is_empty() {
        w.open("flight-recorder", &[("entries", &flight.len().to_string())]);
        for rec in flight {
            w.leaf(
                "call",
                &[
                    ("function", rec.func.as_str()),
                    ("args", rec.args.as_str()),
                    ("verdict", rec.verdict.as_str()),
                    ("cycles", &rec.cycles.to_string()),
                ],
            );
        }
        w.close();
    }
    if let Some(o) = oblivious {
        let arg_str = |arg: Option<usize>| {
            arg.map(|i| (i + 1).to_string()).unwrap_or_else(|| "-".into())
        };
        w.open(
            "oblivious",
            &[
                ("reads", &o.reads.len().to_string()),
                ("writes", &o.writes.len().to_string()),
                ("uses", &o.uses.len().to_string()),
                ("dropped", &o.dropped.to_string()),
            ],
        );
        for r in &o.reads {
            w.leaf(
                "read",
                &[
                    ("function", r.func.as_str()),
                    ("arg", &arg_str(r.arg)),
                    ("class", r.class.as_str()),
                    ("role", r.role.as_str()),
                    ("value", r.value.as_str()),
                    ("detail", r.detail.as_str()),
                ],
            );
        }
        for s in &o.writes {
            w.leaf(
                "write",
                &[
                    ("function", s.func.as_str()),
                    ("arg", &arg_str(s.arg)),
                    ("addr", &format!("{:#x}", s.addr)),
                    ("object-base", &format!("{:#x}", s.object_base)),
                    ("object-extent", &s.object_extent.to_string()),
                    ("attempted", &s.attempted.to_string()),
                    ("clipped", &s.clipped.to_string()),
                    ("detail", s.detail.as_str()),
                ],
            );
        }
        for u in &o.uses {
            w.leaf(
                "use",
                &[
                    ("function", u.func.as_str()),
                    ("arg", &(u.arg + 1).to_string()),
                    ("value", u.value.as_str()),
                ],
            );
        }
        w.close();
    }
    w.close();
    w.finish()
}

/// Minimal reader for documents produced by [`to_xml`] — what the
/// collection server uses to index submissions. Returns
/// `(application, wrapper, wrapped function names)`.
pub fn parse_header_fields(doc: &str) -> Option<(String, String, Vec<String>)> {
    fn attr_after<'a>(s: &'a str, key: &str) -> Option<&'a str> {
        let pat = format!("{key}=\"");
        let start = s.find(&pat)? + pat.len();
        let end = s[start..].find('"')? + start;
        Some(&s[start..end])
    }
    let open = doc.find("<healers-profile")?;
    let tag_end = doc[open..].find('>')? + open;
    let tag = &doc[open..tag_end];
    let app = attr_after(tag, "application")?.to_string();
    let wrapper = attr_after(tag, "wrapper")?.to_string();
    let mut funcs = Vec::new();
    let mut rest = &doc[tag_end..];
    while let Some(pos) = rest.find("<function ") {
        let seg_end = rest[pos..].find('>').map(|e| e + pos)?;
        if let Some(name) = attr_after(&rest[pos..seg_end], "name") {
            funcs.push(name.to_string());
        }
        rest = &rest[seg_end..];
    }
    Some((app, wrapper, funcs))
}

/// One function's totals as read back from a submitted document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetFunc {
    /// Function name.
    pub name: String,
    /// Call count.
    pub calls: u64,
    /// Cycles spent inside the function.
    pub cycles: u64,
    /// Total errno-reporting calls (sum of the `<error>` counts).
    pub errors: u64,
}

/// A submitted document decoded for fleet ingest: the header identity
/// plus per-function totals — everything the streaming rollup merge
/// consumes. Produced by [`parse_fleet_document`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetDoc {
    /// Application that was profiled.
    pub application: String,
    /// Wrapper type that collected the data.
    pub wrapper: String,
    /// Fleet member id (0 for legacy documents without one).
    pub instance: u64,
    /// Logical reporting window (0 for legacy documents).
    pub window: u64,
    /// Function a fatal fault escaped from, for post-mortem documents.
    pub crashed_in: Option<String>,
    /// Fault tag for post-mortem documents.
    pub fault: Option<String>,
    /// Per-function totals, in document order.
    pub functions: Vec<FleetFunc>,
    /// Number of healing-journal events the document carries.
    pub heal_events: u64,
    /// Manufactured oblivious reads the document discloses.
    pub oblivious_reads: u64,
    /// Suppressed out-of-bounds writes the document discloses.
    pub oblivious_writes: u64,
    /// Downstream tainted-value consumptions the document discloses.
    pub oblivious_uses: u64,
}

fn attr_in<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("{key}=\"");
    let start = s.find(&pat)? + pat.len();
    let end = s[start..].find('"')? + start;
    Some(&s[start..end])
}

/// Decodes a submitted document for fleet ingest.
///
/// # Errors
///
/// A stable reason tag describing the first malformation found — what
/// the ingest shards attach to their bounded rejected-document samples.
pub fn parse_fleet_document(doc: &str) -> Result<FleetDoc, &'static str> {
    let open = doc.find("<healers-profile").ok_or("no <healers-profile> root")?;
    let tag_end = doc[open..].find('>').ok_or("unterminated root tag")? + open;
    let tag = &doc[open..tag_end];
    let mut out = FleetDoc {
        application: attr_in(tag, "application")
            .ok_or("missing application attribute")?
            .to_string(),
        wrapper: attr_in(tag, "wrapper").ok_or("missing wrapper attribute")?.to_string(),
        ..FleetDoc::default()
    };
    out.instance = attr_in(tag, "instance").and_then(|v| v.parse().ok()).unwrap_or(0);
    out.window = attr_in(tag, "window").and_then(|v| v.parse().ok()).unwrap_or(0);
    out.crashed_in = attr_in(tag, "crashed-in").map(str::to_string);
    out.fault = attr_in(tag, "fault").map(str::to_string);
    let mut rest = &doc[tag_end..];
    while let Some(pos) = rest.find("<function ") {
        let seg_end =
            rest[pos..].find('>').map(|e| e + pos).ok_or("malformed function element")?;
        let ftag = &rest[pos..seg_end];
        let close =
            rest[seg_end..].find("</function>").map(|e| e + seg_end).unwrap_or(rest.len());
        let mut func = FleetFunc {
            name: attr_in(ftag, "name").ok_or("function element without name")?.to_string(),
            calls: attr_in(ftag, "calls").and_then(|v| v.parse().ok()).unwrap_or(0),
            cycles: attr_in(ftag, "cycles").and_then(|v| v.parse().ok()).unwrap_or(0),
            errors: 0,
        };
        let mut body = &rest[seg_end..close];
        while let Some(e) = body.find("<error ") {
            let leaf_end = body[e..].find('>').map(|x| x + e).unwrap_or(body.len());
            func.errors += attr_in(&body[e..leaf_end], "count")
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0);
            body = &body[leaf_end..];
        }
        out.functions.push(func);
        rest = &rest[close..];
    }
    if let Some(pos) = rest.find("<healing events=\"") {
        out.heal_events =
            attr_in(&rest[pos..], "events").and_then(|v| v.parse().ok()).unwrap_or(0);
    }
    if let Some(pos) = rest.find("<oblivious ") {
        let tag_end = rest[pos..].find('>').map(|e| e + pos).unwrap_or(rest.len());
        let otag = &rest[pos..tag_end];
        let count = |key| attr_in(otag, key).and_then(|v| v.parse().ok()).unwrap_or(0);
        out.oblivious_reads = count("reads");
        out.oblivious_writes = count("writes");
        out.oblivious_uses = count("uses");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;

    fn sample() -> Snapshot {
        let stats = Stats::new();
        stats.record_call("strcpy", 500, None);
        stats.record_call("fopen", 500, Some(simproc::errno::ENOENT));
        stats.snapshot()
    }

    #[test]
    fn doc_is_self_describing() {
        let doc = to_xml("wordcount", "profiling", &sample());
        assert!(doc.contains("application=\"wordcount\""), "{doc}");
        assert!(doc.contains("wrapper=\"profiling\""));
        assert!(doc.contains("call-counter"));
        assert!(doc.contains("function-exectime"));
        assert!(doc.contains("<function name=\"strcpy\""));
        assert!(doc.contains("time-share=\"50.00\""));
        assert!(doc.contains("name=\"ENOENT\""));
        assert!(doc.contains("errno-distribution"));
    }

    #[test]
    fn header_fields_roundtrip() {
        let doc = to_xml("app1", "profiling", &sample());
        let (app, wrapper, funcs) = parse_header_fields(&doc).unwrap();
        assert_eq!(app, "app1");
        assert_eq!(wrapper, "profiling");
        assert_eq!(funcs, vec!["fopen", "strcpy"]);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse_header_fields("not xml at all").is_none());
        assert!(parse_header_fields("<healers-profile foo=\"1\">").is_none());
    }

    #[test]
    fn healing_section_is_self_describing() {
        use crate::journal::{HealAction, HealEvent};
        let events = vec![HealEvent {
            func: "strcpy".into(),
            arg: Some(1),
            violation: "readable NUL-terminated string".into(),
            class: "unterminated-string".into(),
            action: HealAction::Repaired,
            detail: "NUL-terminated buffer at offset 15".into(),
        }];
        let doc = to_xml_with_healing("editor", "healing", &sample(), &events);
        assert!(doc.contains("wrapper=\"healing\""), "{doc}");
        assert!(doc.contains("name=\"healing-journal\""), "{doc}");
        assert!(doc.contains("<healing events=\"1\">"), "{doc}");
        assert!(doc.contains("action=\"repaired\""), "{doc}");
        assert!(doc.contains("arg=\"2\""), "1-based in the document: {doc}");
        // The header reader still indexes healing documents.
        let (app, wrapper, _) = parse_header_fields(&doc).unwrap();
        assert_eq!(app, "editor");
        assert_eq!(wrapper, "healing");
    }

    #[test]
    fn plain_document_has_no_healing_section() {
        let doc = to_xml("wordcount", "profiling", &sample());
        assert!(!doc.contains("<healing"), "{doc}");
        assert!(!doc.contains("healing-journal"));
        assert!(!doc.contains("latency-histogram"));
        assert!(!doc.contains("flight-recorder"));
    }

    #[test]
    fn latency_section_is_self_describing() {
        let stats = Stats::new();
        stats.record_call("memcpy", 100, None);
        for v in [0, 3, 900] {
            stats.record_latency("memcpy", "call", v);
        }
        let doc = to_xml("app", "profiling", &stats.snapshot());
        assert!(doc.contains("name=\"latency-histogram\""), "{doc}");
        assert!(doc.contains("<latency stage=\"call\" samples=\"3\">"), "{doc}");
        assert!(doc.contains("<bucket log2=\"2\" floor=\"2\" count=\"1\"/>"), "{doc}");
        assert!(doc.contains("<bucket log2=\"10\" floor=\"512\" count=\"1\"/>"), "{doc}");
    }

    #[test]
    fn flight_section_is_self_describing() {
        use crate::flight::FlightRecord;
        let tail = vec![
            FlightRecord {
                func: "malloc".into(),
                args: "(32)".into(),
                verdict: "ok".into(),
                cycles: 12,
            },
            FlightRecord {
                func: "strcpy".into(),
                args: "(0x1000, \"owned\")".into(),
                verdict: "security-violation".into(),
                cycles: 40,
            },
        ];
        let doc = to_xml_with_flight("victim", "security", &sample(), None, &tail);
        assert!(doc.contains("name=\"flight-recorder\""), "{doc}");
        assert!(doc.contains("<flight-recorder entries=\"2\">"), "{doc}");
        assert!(doc.contains("verdict=\"security-violation\""), "{doc}");
        // XmlWriter escapes the quoted argument string.
        assert!(doc.contains("&quot;owned&quot;"), "{doc}");
        // The header reader still indexes flight documents.
        let (app, wrapper, _) = parse_header_fields(&doc).unwrap();
        assert_eq!(app, "victim");
        assert_eq!(wrapper, "security");
    }

    #[test]
    fn empty_flight_tail_matches_plain_document() {
        let snap = sample();
        let plain = to_xml("app", "profiling", &snap);
        let flight = to_xml_with_flight("app", "profiling", &snap, None, &[]);
        assert_eq!(plain, flight);
    }

    #[test]
    fn oblivious_section_is_self_describing() {
        use crate::oblivious::{
            ManufacturedRead, ObliviousSnapshot, ShadowWrite, TaintedUse,
        };
        let snap = ObliviousSnapshot {
            reads: vec![ManufacturedRead {
                func: "strlen".into(),
                arg: Some(0),
                class: "null-pointer".into(),
                role: "cstr-scan".into(),
                value: "0".into(),
                detail: "NULL scanned as empty string".into(),
            }],
            writes: vec![ShadowWrite {
                func: "strcpy".into(),
                arg: Some(0),
                addr: 0x5000,
                object_base: 0x5000,
                object_extent: 8,
                attempted: 20,
                clipped: 12,
                detail: "overflowing copy suppressed".into(),
            }],
            uses: vec![TaintedUse { func: "puts".into(), arg: 0, value: "0x5000".into() }],
            dropped: 0,
        };
        let doc =
            to_xml_with_oblivious("editor", "healing", None, &sample(), None, &[], &snap);
        assert!(doc.contains("name=\"oblivious-audit\""), "{doc}");
        assert!(
            doc.contains("<oblivious reads=\"1\" writes=\"1\" uses=\"1\" dropped=\"0\">"),
            "{doc}"
        );
        assert!(doc.contains("role=\"cstr-scan\""), "{doc}");
        assert!(doc.contains("object-base=\"0x5000\""), "{doc}");
        assert!(doc.contains("clipped=\"12\""), "{doc}");
        assert!(doc.contains("<use function=\"puts\" arg=\"1\""), "{doc}");
        // Fleet ingest decodes the disclosure counts.
        let parsed = parse_fleet_document(&doc).unwrap();
        assert_eq!(parsed.oblivious_reads, 1);
        assert_eq!(parsed.oblivious_writes, 1);
        assert_eq!(parsed.oblivious_uses, 1);
    }

    #[test]
    fn empty_oblivious_audit_matches_plain_document() {
        let snap = sample();
        let plain = to_xml("app", "profiling", &snap);
        let audited = to_xml_with_oblivious(
            "app",
            "profiling",
            None,
            &snap,
            None,
            &[],
            &crate::oblivious::ObliviousSnapshot::default(),
        );
        assert_eq!(plain, audited, "no silent section, no silent difference");
        assert!(!plain.contains("oblivious"));
    }
}
