//! The self-describing XML documents of §2.3: "the gathered information
//! sent to the server is in form of a self-describing XML document. The
//! server can extract from the document which functions were wrapped and
//! what kind of information was collected."

use cdecl::xml::XmlWriter;
use simproc::errno::errno_name;

use crate::stats::Snapshot;

/// Serialises a profiling snapshot into the self-describing document
/// format. `app` names the profiled application, `wrapper` the wrapper
/// type that collected the data.
pub fn to_xml(app: &str, wrapper: &str, snap: &Snapshot) -> String {
    let mut w = XmlWriter::new();
    w.open(
        "healers-profile",
        &[
            ("application", app),
            ("wrapper", wrapper),
            ("total-calls", &snap.total_calls().to_string()),
            ("total-cycles", &snap.total_cycles.to_string()),
        ],
    );
    w.open("collected", &[]);
    w.leaf("metric", &[("name", "call-counter")]);
    w.leaf("metric", &[("name", "function-exectime")]);
    w.leaf("metric", &[("name", "func-errors")]);
    w.leaf("metric", &[("name", "collect-errors")]);
    w.close();
    for (name, f) in &snap.per_func {
        w.open(
            "function",
            &[
                ("name", name.as_str()),
                ("calls", &f.calls.to_string()),
                ("cycles", &f.cycles.to_string()),
                ("time-share", &format!("{:.2}", snap.time_share(name))),
            ],
        );
        for (e, n) in &f.errnos {
            w.leaf(
                "error",
                &[
                    ("errno", &e.to_string()),
                    ("name", errno_name(*e)),
                    ("count", &n.to_string()),
                ],
            );
        }
        w.close();
    }
    w.open("errno-distribution", &[]);
    for (e, n) in &snap.global_errnos {
        w.leaf(
            "error",
            &[
                ("errno", &e.to_string()),
                ("name", errno_name(*e)),
                ("count", &n.to_string()),
            ],
        );
    }
    w.close();
    w.close();
    w.finish()
}

/// Minimal reader for documents produced by [`to_xml`] — what the
/// collection server uses to index submissions. Returns
/// `(application, wrapper, wrapped function names)`.
pub fn parse_header_fields(doc: &str) -> Option<(String, String, Vec<String>)> {
    fn attr_after<'a>(s: &'a str, key: &str) -> Option<&'a str> {
        let pat = format!("{key}=\"");
        let start = s.find(&pat)? + pat.len();
        let end = s[start..].find('"')? + start;
        Some(&s[start..end])
    }
    let open = doc.find("<healers-profile")?;
    let tag_end = doc[open..].find('>')? + open;
    let tag = &doc[open..tag_end];
    let app = attr_after(tag, "application")?.to_string();
    let wrapper = attr_after(tag, "wrapper")?.to_string();
    let mut funcs = Vec::new();
    let mut rest = &doc[tag_end..];
    while let Some(pos) = rest.find("<function ") {
        let seg_end = rest[pos..].find('>').map(|e| e + pos)?;
        if let Some(name) = attr_after(&rest[pos..seg_end], "name") {
            funcs.push(name.to_string());
        }
        rest = &rest[seg_end..];
    }
    Some((app, wrapper, funcs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;

    fn sample() -> Snapshot {
        let stats = Stats::new();
        stats.record_call("strcpy", 500, None);
        stats.record_call("fopen", 500, Some(simproc::errno::ENOENT));
        stats.snapshot()
    }

    #[test]
    fn doc_is_self_describing() {
        let doc = to_xml("wordcount", "profiling", &sample());
        assert!(doc.contains("application=\"wordcount\""), "{doc}");
        assert!(doc.contains("wrapper=\"profiling\""));
        assert!(doc.contains("call-counter"));
        assert!(doc.contains("function-exectime"));
        assert!(doc.contains("<function name=\"strcpy\""));
        assert!(doc.contains("time-share=\"50.00\""));
        assert!(doc.contains("name=\"ENOENT\""));
        assert!(doc.contains("errno-distribution"));
    }

    #[test]
    fn header_fields_roundtrip() {
        let doc = to_xml("app1", "profiling", &sample());
        let (app, wrapper, funcs) = parse_header_fields(&doc).unwrap();
        assert_eq!(app, "app1");
        assert_eq!(wrapper, "profiling");
        assert_eq!(funcs, vec!["fopen", "strcpy"]);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse_header_fields("not xml at all").is_none());
        assert!(parse_header_fields("<healers-profile foo=\"1\">").is_none());
    }
}
