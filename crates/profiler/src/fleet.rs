//! The fleet-scale collection service: the ROADMAP's "millions of
//! users" item. Where [`crate::CollectionServer`] is a single thread
//! draining one unbounded channel after shutdown, this service ingests
//! through N shards behind **bounded** queues with explicit
//! back-pressure, parses and merges documents *while they arrive*
//! (streaming rollups: top crashing functions fleet-wide, per-app
//! health, per-window crash rates), and accounts for every document
//! exactly: a [`SubmitOutcome::Accepted`] ack is a guarantee of
//! collection, and everything not accepted is counted on a named
//! counter — nothing is silently lost.
//!
//! Accounting invariant (checked by [`FleetAccounting::balanced`]):
//! `accepted == merged + rejected`, and every non-accepted attempt is
//! visible as `shed_full`, `shed_closed` or a retry signal.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::doc::parse_fleet_document;
use crate::server::{DrainGate, RejectedSample};

// ---------------------------------------------------------------------------
// configuration and back-pressure vocabulary

/// What a shard does with a submission when its queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Drop it (counted in `shed_full`) and tell the submitter so.
    Shed,
    /// Refuse it and hand the submitter a backoff hint; the document
    /// stays with the submitter, nothing is queued or counted as lost.
    Retry {
        /// Suggested backoff before the next attempt, in microseconds.
        backoff_micros: u64,
    },
    /// Block the submitter until the shard has room. No loss, no
    /// retries — the submitter's thread absorbs the pressure.
    Block,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy::Retry { backoff_micros: 50 }
    }
}

/// Fleet service configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of ingest shards (worker threads), each with its own
    /// bounded queue and rollup accumulator.
    pub shards: usize,
    /// Per-shard queue capacity (documents).
    pub queue_capacity: usize,
    /// What to do when a shard's queue is full.
    pub shed: ShedPolicy,
    /// How many rejected documents each shard keeps as samples.
    pub rejected_sample_cap: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            queue_capacity: 256,
            shed: ShedPolicy::default(),
            rejected_sample_cap: crate::server::REJECTED_SAMPLE_CAP,
        }
    }
}

/// The answer a submitter gets, immediately, for every attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued. The document **will** appear in the rollup (merged or,
    /// if malformed, counted rejected with a sample) — the fleet
    /// equivalent of the single server's `true` ack.
    Accepted,
    /// The shard is full and the policy is [`ShedPolicy::Retry`]: the
    /// document was *not* queued; try again after the hinted backoff.
    Retry {
        /// Suggested backoff before the next attempt, in microseconds.
        backoff_micros: u64,
    },
    /// The document was dropped: the shard was full under
    /// [`ShedPolicy::Shed`] (counted in `shed_full`) or the service is
    /// shutting down (counted in `shed_closed`).
    Shed,
}

impl SubmitOutcome {
    /// `true` for [`SubmitOutcome::Accepted`].
    pub fn is_accepted(&self) -> bool {
        matches!(self, SubmitOutcome::Accepted)
    }
}

// ---------------------------------------------------------------------------
// bounded MPSC queue (vendored crossbeam has only unbounded channels)

#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A small bounded MPSC queue on `Mutex` + two condvars: `try_push` for
/// shed/retry policies, blocking `push` for [`ShedPolicy::Block`], and
/// a blocking `pop` that drains remaining items after close.
#[derive(Debug)]
struct BoundedQueue<T> {
    cap: usize,
    inner: Mutex<QueueInner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    fn new(cap: usize) -> Self {
        BoundedQueue {
            cap: cap.max(1),
            inner: Mutex::new(QueueInner { items: VecDeque::new(), closed: false }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Non-blocking push; `Err` means full (or closed), nothing queued.
    fn try_push(&self, value: T) -> Result<(), ()> {
        let mut q = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if q.closed || q.items.len() >= self.cap {
            return Err(());
        }
        q.items.push_back(value);
        drop(q);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push; waits for room. `false` if the queue closed while
    /// waiting (nothing queued).
    fn push(&self, value: T) -> bool {
        let mut q = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        while !q.closed && q.items.len() >= self.cap {
            q = self.not_full.wait(q).unwrap_or_else(|p| p.into_inner());
        }
        if q.closed {
            return false;
        }
        q.items.push_back(value);
        drop(q);
        self.not_empty.notify_one();
        true
    }

    /// Blocking pop; `None` once the queue is closed *and* drained.
    fn pop(&self) -> Option<T> {
        let mut q = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(v) = q.items.pop_front() {
                drop(q);
                self.not_full.notify_one();
                return Some(v);
            }
            if q.closed {
                return None;
            }
            q = self.not_empty.wait(q).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the queue: pushes fail, pops drain what remains.
    fn close(&self) {
        let mut q = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        q.closed = true;
        drop(q);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

// ---------------------------------------------------------------------------
// rollups

/// Fleet-wide totals for one wrapped function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuncRollup {
    /// Calls across every submitted document.
    pub calls: u64,
    /// Cycles across every submitted document.
    pub cycles: u64,
    /// errno-reporting calls across every submitted document.
    pub errors: u64,
    /// Documents whose process died with a fatal fault escaping this
    /// function.
    pub crashes: u64,
}

/// Health of one application across the fleet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppHealth {
    /// Documents received for this application.
    pub docs: u64,
    /// Of those, post-mortem documents (the process crashed).
    pub crashes: u64,
    /// Total wrapped calls reported.
    pub calls: u64,
    /// Total errno-reporting calls reported.
    pub errors: u64,
    /// Healing-journal events reported.
    pub heals: u64,
}

/// One function's activity inside one logical reporting window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowFunc {
    /// Calls reported in this window.
    pub calls: u64,
    /// errno-reporting calls reported in this window.
    pub errors: u64,
    /// Crash documents attributing their fatal fault to this function.
    pub crashes: u64,
}

impl WindowFunc {
    /// Crash rate in this window, in fixed-point thousandths
    /// (crashes per 1000 calls; the crashing call itself is counted).
    pub fn crash_rate_x1000(&self) -> u64 {
        let calls = self.calls + self.crashes;
        self.crashes.saturating_mul(1000).checked_div(calls).unwrap_or(0)
    }
}

/// Per-function activity inside one logical reporting window — what the
/// remediation director consumes, one window at a time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Function name → activity, sorted.
    pub per_func: BTreeMap<String, WindowFunc>,
    /// Documents merged into this window.
    pub docs: u64,
}

/// The live fleet rollup: everything merged so far. All maps are sorted
/// and all counters are commutative sums, so the rollup — and any
/// report rendered from it — is byte-identical however submissions
/// interleaved across shards.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetRollup {
    /// Documents merged.
    pub docs: u64,
    /// Of those, post-mortem (crash) documents.
    pub crash_docs: u64,
    /// Documents that failed to parse.
    pub rejected: u64,
    /// Fleet-wide per-function totals.
    pub per_func: BTreeMap<String, FuncRollup>,
    /// Per-application health.
    pub per_app: BTreeMap<String, AppHealth>,
    /// Per-window activity, keyed by logical window number.
    pub windows: BTreeMap<u64, WindowStats>,
    /// Bounded sample of rejected documents (sorted for determinism,
    /// capped at the configured sample cap).
    pub rejected_samples: Vec<RejectedSample>,
}

impl FleetRollup {
    fn absorb_doc(&mut self, doc: &crate::doc::FleetDoc) {
        self.docs += 1;
        let crashed = doc.crashed_in.is_some();
        if crashed {
            self.crash_docs += 1;
        }
        let app = self.per_app.entry(doc.application.clone()).or_default();
        app.docs += 1;
        app.heals += doc.heal_events;
        if crashed {
            app.crashes += 1;
        }
        let window = self.windows.entry(doc.window).or_default();
        window.docs += 1;
        for f in &doc.functions {
            let fr = self.per_func.entry(f.name.clone()).or_default();
            fr.calls += f.calls;
            fr.cycles += f.cycles;
            fr.errors += f.errors;
            let wf = window.per_func.entry(f.name.clone()).or_default();
            wf.calls += f.calls;
            wf.errors += f.errors;
            let app = self.per_app.entry(doc.application.clone()).or_default();
            app.calls += f.calls;
            app.errors += f.errors;
        }
        if let Some(func) = &doc.crashed_in {
            self.per_func.entry(func.clone()).or_default().crashes += 1;
            window.per_func.entry(func.clone()).or_default().crashes += 1;
        }
    }

    fn absorb_reject(&mut self, doc: &str, reason: &'static str, cap: usize) {
        self.rejected += 1;
        if self.rejected_samples.len() < cap {
            self.rejected_samples.push(RejectedSample::of(doc, reason));
        }
    }

    /// Merges another rollup in (commutative: shard accumulators can be
    /// merged in any order).
    pub fn merge(&mut self, other: &FleetRollup, sample_cap: usize) {
        self.docs += other.docs;
        self.crash_docs += other.crash_docs;
        self.rejected += other.rejected;
        for (name, fr) in &other.per_func {
            let mine = self.per_func.entry(name.clone()).or_default();
            mine.calls += fr.calls;
            mine.cycles += fr.cycles;
            mine.errors += fr.errors;
            mine.crashes += fr.crashes;
        }
        for (name, ah) in &other.per_app {
            let mine = self.per_app.entry(name.clone()).or_default();
            mine.docs += ah.docs;
            mine.crashes += ah.crashes;
            mine.calls += ah.calls;
            mine.errors += ah.errors;
            mine.heals += ah.heals;
        }
        for (w, ws) in &other.windows {
            let mine = self.windows.entry(*w).or_default();
            mine.docs += ws.docs;
            for (name, wf) in &ws.per_func {
                let m = mine.per_func.entry(name.clone()).or_default();
                m.calls += wf.calls;
                m.errors += wf.errors;
                m.crashes += wf.crashes;
            }
        }
        self.rejected_samples.extend(other.rejected_samples.iter().cloned());
        // Shard arrival order is scheduling-dependent; a sorted, capped
        // sample keeps the merged rollup deterministic.
        self.rejected_samples
            .sort_by(|a, b| (a.reason, &a.snippet).cmp(&(b.reason, &b.snippet)));
        self.rejected_samples.truncate(sample_cap);
    }

    /// The top-N crashing functions fleet-wide: most crashes first,
    /// ties by name.
    pub fn top_crashing(&self, n: usize) -> Vec<(&str, &FuncRollup)> {
        let mut v: Vec<_> = self.per_func.iter().filter(|(_, f)| f.crashes > 0).collect();
        v.sort_by(|a, b| b.1.crashes.cmp(&a.1.crashes).then(a.0.cmp(b.0)));
        v.truncate(n);
        v.into_iter().map(|(k, f)| (k.as_str(), f)).collect()
    }
}

// ---------------------------------------------------------------------------
// exact accounting

/// Per-shard ingest counters, all monotone.
#[derive(Debug, Default)]
struct ShardCounters {
    accepted: AtomicU64,
    merged: AtomicU64,
    rejected: AtomicU64,
    shed_full: AtomicU64,
}

/// The service's exact accounting, snapshot at shutdown (or live).
/// Every submission attempt lands on exactly one of: `accepted`
/// (thence `merged` or `rejected`), `shed_full`, `shed_closed` — or it
/// got a [`SubmitOutcome::Retry`] signal and stayed with the submitter
/// (`retry_signals`, a transient pressure gauge rather than a loss
/// counter).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetAccounting {
    /// Acked (queued) submissions, per shard.
    pub accepted_per_shard: Vec<u64>,
    /// Documents merged into rollups, per shard.
    pub merged_per_shard: Vec<u64>,
    /// Documents that failed to parse, per shard.
    pub rejected_per_shard: Vec<u64>,
    /// Documents dropped because a shard was full (Shed policy only).
    pub shed_full_per_shard: Vec<u64>,
    /// Submissions refused because the service was shutting down.
    pub shed_closed: u64,
    /// Retry back-pressure signals handed out (documents *not* queued
    /// and *not* lost — they stayed with the submitter).
    pub retry_signals: u64,
}

impl FleetAccounting {
    /// Total acked submissions.
    pub fn accepted(&self) -> u64 {
        self.accepted_per_shard.iter().sum()
    }

    /// Total merged documents.
    pub fn merged(&self) -> u64 {
        self.merged_per_shard.iter().sum()
    }

    /// Total parse-rejected documents.
    pub fn rejected(&self) -> u64 {
        self.rejected_per_shard.iter().sum()
    }

    /// Total queue-full drops.
    pub fn shed_full(&self) -> u64 {
        self.shed_full_per_shard.iter().sum()
    }

    /// Total sheds of either kind.
    pub fn shed_total(&self) -> u64 {
        self.shed_full() + self.shed_closed
    }

    /// The zero-loss invariant: every acked document was merged or
    /// rejected-with-trace; nothing acked went missing.
    pub fn balanced(&self) -> bool {
        self.accepted() == self.merged() + self.rejected()
    }
}

// ---------------------------------------------------------------------------
// the service

#[derive(Debug)]
struct Shard {
    queue: BoundedQueue<String>,
    counters: ShardCounters,
    accum: Mutex<FleetRollup>,
}

/// Handle for submitting documents to a running [`FleetService`].
/// Clones are cheap; submitters on any thread share the shards.
#[derive(Debug, Clone)]
pub struct FleetCollector {
    shards: Arc<Vec<Arc<Shard>>>,
    gate: Arc<DrainGate>,
    shed_closed: Arc<AtomicU64>,
    retry_signals: Arc<AtomicU64>,
    rr: Arc<AtomicUsize>,
    shed: ShedPolicy,
}

impl FleetCollector {
    fn route(&self) -> &Shard {
        let i = self.rr.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        &self.shards[i]
    }

    /// One submission attempt. The outcome is exact:
    /// [`SubmitOutcome::Accepted`] guarantees the document reaches the
    /// rollup; anything else guarantees it did not (and says whether it
    /// was dropped-and-counted or stayed with the caller).
    pub fn submit(&self, document: &str) -> SubmitOutcome {
        if !self.gate.begin_submit() {
            self.shed_closed.fetch_add(1, Ordering::SeqCst);
            return SubmitOutcome::Shed;
        }
        let shard = self.route();
        let outcome = match shard.queue.try_push(document.to_string()) {
            Ok(()) => {
                shard.counters.accepted.fetch_add(1, Ordering::SeqCst);
                SubmitOutcome::Accepted
            }
            Err(()) => match self.shed {
                ShedPolicy::Shed => {
                    shard.counters.shed_full.fetch_add(1, Ordering::SeqCst);
                    SubmitOutcome::Shed
                }
                ShedPolicy::Retry { backoff_micros } => {
                    self.retry_signals.fetch_add(1, Ordering::SeqCst);
                    SubmitOutcome::Retry { backoff_micros }
                }
                ShedPolicy::Block => {
                    // Safe against shutdown deadlock: the gate holds
                    // `in_flight` > 0 for the whole wait, so shard
                    // workers keep draining until we are through.
                    if shard.queue.push(document.to_string()) {
                        shard.counters.accepted.fetch_add(1, Ordering::SeqCst);
                        SubmitOutcome::Accepted
                    } else {
                        self.shed_closed.fetch_add(1, Ordering::SeqCst);
                        SubmitOutcome::Shed
                    }
                }
            },
        };
        self.gate.end_submit();
        outcome
    }

    /// Submits with the policy's back-pressure resolved in place: retry
    /// signals are honoured with a capped exponential backoff plus
    /// deterministic, seeded jitter (so a storm of retrying submitters
    /// de-synchronises without any wall-clock or RNG dependency) until
    /// the document is accepted or definitively shed. Returns `true`
    /// only for an accepted (and therefore collected) document.
    pub fn submit_until_accepted(&self, document: &str) -> bool {
        let salt = document.len() as u64;
        let mut attempt = 0u32;
        loop {
            match self.submit(document) {
                SubmitOutcome::Accepted => return true,
                SubmitOutcome::Shed => return false,
                SubmitOutcome::Retry { backoff_micros } => {
                    if backoff_micros == 0 {
                        std::thread::yield_now();
                    } else {
                        let micros = retry_backoff_micros(backoff_micros, attempt, salt);
                        std::thread::sleep(Duration::from_micros(micros));
                    }
                    attempt = attempt.saturating_add(1);
                }
            }
        }
    }
}

/// Maximum sleep between retry attempts, in microseconds. The hinted
/// backoff doubles each attempt up to this cap; the jitter never pushes
/// the total past it.
const RETRY_BACKOFF_CAP_MICROS: u64 = 500;

/// The backoff schedule for [`FleetCollector::submit_until_accepted`]:
/// the policy's `hint` doubled per `attempt`, capped at
/// [`RETRY_BACKOFF_CAP_MICROS`], plus deterministic jitter derived from
/// `(salt, attempt)` by a splitmix64 finalizer — same inputs, same
/// delay, every run — spanning up to half the exponential term so
/// synchronized retry storms spread out.
fn retry_backoff_micros(hint: u64, attempt: u32, salt: u64) -> u64 {
    let hint = hint.max(1);
    let exp = hint.saturating_mul(1u64 << attempt.min(9)).min(RETRY_BACKOFF_CAP_MICROS);
    let mut z = salt ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (exp + z % (exp / 2 + 1)).min(RETRY_BACKOFF_CAP_MICROS)
}

/// The sharded, back-pressured fleet collection service. Construction
/// spawns one worker thread per shard; each worker parses submissions
/// off its bounded queue and merges them into its shard-local rollup as
/// they arrive (streaming, not post-shutdown). [`FleetService::shutdown`]
/// closes the submission gate, waits for in-flight submitters, drains
/// every queue, and returns the merged rollup with exact accounting.
#[derive(Debug)]
pub struct FleetService {
    shards: Arc<Vec<Arc<Shard>>>,
    gate: Arc<DrainGate>,
    shed_closed: Arc<AtomicU64>,
    retry_signals: Arc<AtomicU64>,
    rr: Arc<AtomicUsize>,
    shed: ShedPolicy,
    sample_cap: usize,
    workers: Vec<JoinHandle<()>>,
}

/// Everything the fleet service gathered by shutdown time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetCollected {
    /// The merged rollup.
    pub rollup: FleetRollup,
    /// The exact ingest accounting.
    pub accounting: FleetAccounting,
}

impl FleetService {
    /// Starts the service with `config`.
    pub fn start(config: FleetConfig) -> Self {
        let shards: Vec<Arc<Shard>> = (0..config.shards.max(1))
            .map(|_| {
                Arc::new(Shard {
                    queue: BoundedQueue::new(config.queue_capacity),
                    counters: ShardCounters::default(),
                    accum: Mutex::new(FleetRollup::default()),
                })
            })
            .collect();
        let sample_cap = config.rejected_sample_cap;
        let workers = shards
            .iter()
            .map(|shard| {
                let shard = Arc::clone(shard);
                std::thread::spawn(move || {
                    while let Some(doc) = shard.queue.pop() {
                        let mut accum =
                            shard.accum.lock().unwrap_or_else(|p| p.into_inner());
                        match parse_fleet_document(&doc) {
                            Ok(parsed) => {
                                accum.absorb_doc(&parsed);
                                drop(accum);
                                shard.counters.merged.fetch_add(1, Ordering::SeqCst);
                            }
                            Err(reason) => {
                                accum.absorb_reject(&doc, reason, sample_cap);
                                drop(accum);
                                shard.counters.rejected.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    }
                })
            })
            .collect();
        FleetService {
            shards: Arc::new(shards),
            gate: Arc::new(DrainGate::new()),
            shed_closed: Arc::new(AtomicU64::new(0)),
            retry_signals: Arc::new(AtomicU64::new(0)),
            rr: Arc::new(AtomicUsize::new(0)),
            shed: config.shed,
            sample_cap,
            workers,
        }
    }

    /// A handle submitters use.
    pub fn collector(&self) -> FleetCollector {
        FleetCollector {
            shards: Arc::clone(&self.shards),
            gate: Arc::clone(&self.gate),
            shed_closed: Arc::clone(&self.shed_closed),
            retry_signals: Arc::clone(&self.retry_signals),
            rr: Arc::clone(&self.rr),
            shed: self.shed,
        }
    }

    /// Waits until every accepted document has been merged (or
    /// rejected) by its shard worker. Call between submission phases —
    /// with no submitter mid-flight — to seal a logical window before
    /// reading [`FleetService::rollup_snapshot`].
    pub fn quiesce(&self) {
        loop {
            let accepted: u64 = self
                .shards
                .iter()
                .map(|s| s.counters.accepted.load(Ordering::SeqCst))
                .sum();
            let done: u64 = self
                .shards
                .iter()
                .map(|s| {
                    s.counters.merged.load(Ordering::SeqCst)
                        + s.counters.rejected.load(Ordering::SeqCst)
                })
                .sum();
            if done >= accepted {
                return;
            }
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    /// A merged copy of the live rollup — the streaming view. Counters
    /// lag in-queue documents; call [`FleetService::quiesce`] first for
    /// a sealed view.
    pub fn rollup_snapshot(&self) -> FleetRollup {
        let mut out = FleetRollup::default();
        for shard in self.shards.iter() {
            let accum = shard.accum.lock().unwrap_or_else(|p| p.into_inner());
            out.merge(&accum, self.sample_cap);
        }
        out
    }

    /// The live accounting counters.
    pub fn accounting(&self) -> FleetAccounting {
        FleetAccounting {
            accepted_per_shard: self
                .shards
                .iter()
                .map(|s| s.counters.accepted.load(Ordering::SeqCst))
                .collect(),
            merged_per_shard: self
                .shards
                .iter()
                .map(|s| s.counters.merged.load(Ordering::SeqCst))
                .collect(),
            rejected_per_shard: self
                .shards
                .iter()
                .map(|s| s.counters.rejected.load(Ordering::SeqCst))
                .collect(),
            shed_full_per_shard: self
                .shards
                .iter()
                .map(|s| s.counters.shed_full.load(Ordering::SeqCst))
                .collect(),
            shed_closed: self.shed_closed.load(Ordering::SeqCst),
            retry_signals: self.retry_signals.load(Ordering::SeqCst),
        }
    }

    /// Stops accepting submissions, drains every shard, joins the
    /// workers and returns the merged rollup with exact accounting.
    pub fn shutdown(mut self) -> FleetCollected {
        self.close_and_join();
        FleetCollected { rollup: self.rollup_snapshot(), accounting: self.accounting() }
    }

    fn close_and_join(&mut self) {
        // Order matters: close the gate and wait for in-flight
        // submitters first (blocked `push`es complete because the
        // workers are still popping), only then close the queues so the
        // workers drain what remains and exit.
        self.gate.close_and_wait();
        for shard in self.shards.iter() {
            shard.queue.close();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for FleetService {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::{to_xml_for_fleet, FleetMeta};
    use crate::stats::Stats;

    fn doc(app: &str, instance: u64, window: u64, crashed: bool) -> String {
        let stats = Stats::new();
        stats.record_call("strcpy", 40, None);
        stats.record_call("strlen", 10, Some(simproc::errno::EINVAL));
        let meta = FleetMeta {
            instance,
            window,
            crashed_in: crashed.then(|| "strcpy".to_string()),
            fault: crashed.then(|| "segv".to_string()),
        };
        to_xml_for_fleet(app, "healing", &meta, &stats.snapshot(), None)
    }

    #[test]
    fn accepted_documents_land_in_the_rollup() {
        let service = FleetService::start(FleetConfig::default());
        let c = service.collector();
        for i in 0..10 {
            assert!(c.submit(&doc("editor", i, i / 4, i % 3 == 0)).is_accepted());
        }
        let out = service.shutdown();
        assert_eq!(out.rollup.docs, 10);
        assert_eq!(out.rollup.crash_docs, 4);
        assert_eq!(out.rollup.per_app["editor"].docs, 10);
        assert_eq!(out.rollup.per_func["strcpy"].crashes, 4);
        assert_eq!(out.rollup.per_func["strcpy"].calls, 10);
        assert_eq!(out.rollup.per_func["strlen"].errors, 10);
        assert_eq!(out.rollup.windows.len(), 3);
        assert!(out.accounting.balanced(), "{:?}", out.accounting);
    }

    #[test]
    fn malformed_documents_are_rejected_with_samples() {
        let service = FleetService::start(FleetConfig::default());
        let c = service.collector();
        assert!(c.submit("not xml").is_accepted(), "accepted into the queue");
        assert!(c.submit("<healers-profile foo=\"1\">").is_accepted());
        assert!(c.submit(&doc("ok", 1, 0, false)).is_accepted());
        let out = service.shutdown();
        assert_eq!(out.rollup.docs, 1);
        assert_eq!(out.rollup.rejected, 2);
        assert_eq!(out.rollup.rejected_samples.len(), 2);
        let reasons: Vec<_> =
            out.rollup.rejected_samples.iter().map(|s| s.reason).collect();
        assert!(reasons.contains(&"no <healers-profile> root"), "{reasons:?}");
        assert!(reasons.contains(&"missing application attribute"), "{reasons:?}");
        assert!(out.accounting.balanced());
    }

    #[test]
    fn full_queue_sheds_and_counts_exactly() {
        let service = FleetService::start(FleetConfig {
            shards: 1,
            queue_capacity: 4,
            shed: ShedPolicy::Shed,
            ..FleetConfig::default()
        });
        let c = service.collector();
        let d = doc("app", 0, 0, false);
        let mut accepted = 0u64;
        let mut shed = 0u64;
        // Far more than capacity: some are shed while the worker drains.
        for _ in 0..5_000 {
            match c.submit(&d) {
                SubmitOutcome::Accepted => accepted += 1,
                SubmitOutcome::Shed => shed += 1,
                SubmitOutcome::Retry { .. } => unreachable!("policy is Shed"),
            }
        }
        let out = service.shutdown();
        assert_eq!(out.accounting.accepted(), accepted);
        assert_eq!(out.accounting.shed_full() + out.accounting.shed_closed, shed);
        assert_eq!(out.rollup.docs, accepted);
        assert!(out.accounting.balanced());
    }

    #[test]
    fn retry_signals_leave_the_document_with_the_caller() {
        let service = FleetService::start(FleetConfig {
            shards: 1,
            queue_capacity: 2,
            shed: ShedPolicy::Retry { backoff_micros: 10 },
            ..FleetConfig::default()
        });
        let c = service.collector();
        let d = doc("app", 0, 0, false);
        let mut accepted = 0u64;
        for _ in 0..200 {
            if c.submit_until_accepted(&d) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 200, "retry resolves to acceptance, never loss");
        let out = service.shutdown();
        assert_eq!(out.accounting.accepted(), 200);
        assert_eq!(out.accounting.shed_total(), 0);
        assert_eq!(out.rollup.docs, 200);
        assert!(out.accounting.balanced());
    }

    #[test]
    fn retry_backoff_is_capped_exponential_and_deterministic() {
        // Deterministic: same (hint, attempt, salt) → same delay.
        for attempt in 0..12 {
            assert_eq!(
                retry_backoff_micros(10, attempt, 42),
                retry_backoff_micros(10, attempt, 42)
            );
        }
        // Capped: never exceeds the ceiling, whatever the inputs.
        for attempt in 0..64 {
            for salt in [0u64, 1, 97, u64::MAX] {
                assert!(retry_backoff_micros(50, attempt, salt) <= 500);
                assert!(retry_backoff_micros(u64::MAX, attempt, salt) <= 500);
            }
        }
        // Exponential: the un-jittered floor doubles until the cap.
        assert!(retry_backoff_micros(10, 4, 0) >= 10 * 16 - 1);
        assert!(retry_backoff_micros(10, 0, 7) >= 10);
        // Jitter spreads distinct salts at the same attempt.
        let delays: std::collections::BTreeSet<u64> =
            (0..32u64).map(|salt| retry_backoff_micros(10, 1, salt)).collect();
        assert!(delays.len() > 4, "jitter must spread submitters: {delays:?}");
        // A zero hint is treated as the minimum granularity, not a
        // divide-by-zero or a busy spin.
        assert!(retry_backoff_micros(0, 0, 0) >= 1);
    }

    #[test]
    fn block_policy_never_loses_or_sheds() {
        let service = FleetService::start(FleetConfig {
            shards: 2,
            queue_capacity: 2,
            shed: ShedPolicy::Block,
            ..FleetConfig::default()
        });
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let c = service.collector();
                std::thread::spawn(move || {
                    let d = doc("app", t, 0, false);
                    let mut accepted = 0u64;
                    for _ in 0..100 {
                        if c.submit(&d).is_accepted() {
                            accepted += 1;
                        }
                    }
                    accepted
                })
            })
            .collect();
        let accepted: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(accepted, 400);
        let out = service.shutdown();
        assert_eq!(out.accounting.shed_total(), 0);
        assert_eq!(out.rollup.docs, 400);
        assert!(out.accounting.balanced());
    }

    #[test]
    fn submissions_after_shutdown_are_counted_shed_closed() {
        let service = FleetService::start(FleetConfig::default());
        let c = service.collector();
        assert!(c.submit(&doc("app", 0, 0, false)).is_accepted());
        let out = service.shutdown();
        assert_eq!(out.rollup.docs, 1);
        assert_eq!(c.submit("late"), SubmitOutcome::Shed);
        assert!(!c.submit_until_accepted("late"));
    }

    #[test]
    fn rollup_is_deterministic_across_shard_interleavings() {
        let run = |shards: usize| {
            let service = FleetService::start(FleetConfig {
                shards,
                shed: ShedPolicy::Block,
                ..FleetConfig::default()
            });
            let threads: Vec<_> = (0..4)
                .map(|t| {
                    let c = service.collector();
                    std::thread::spawn(move || {
                        for i in 0..50u64 {
                            let d = doc("editor", t * 100 + i, i % 5, i % 7 == 0);
                            assert!(c.submit_until_accepted(&d));
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            service.shutdown().rollup
        };
        let a = run(1);
        let b = run(8);
        assert_eq!(a, b, "rollup independent of sharding and interleaving");
    }
}
