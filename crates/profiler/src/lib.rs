//! # profiler — the profiling wrapper's runtime (paper §3.3, Figure 5)
//!
//! The profiling wrapper "gives a detailed report on what kind of errors
//! occurred, how frequently they occurred, and what were the causes of
//! errors (based on errno)". This crate holds everything behind that:
//!
//! * [`Stats`] — the shared table the `call counter`, `function
//!   exectime`, `func errors` and `collect errors` micro-generators write
//!   into (cycles come from the simulated process's deterministic
//!   counter, standing in for `rdtsc`);
//! * [`to_xml`] — the self-describing XML document shipped at process
//!   termination (§2.3);
//! * [`CollectionServer`] — the central server receiving documents from
//!   many processes over a channel;
//! * [`FleetService`] — the sharded, back-pressured fleet-scale ingest
//!   path with streaming rollups and exact shed accounting;
//! * [`Director`] — closed-loop remediation: per-function crash-rate
//!   anomaly detection over windowed rollups, escalation with rollback
//!   and a circuit breaker, every decision journaled;
//! * [`render_report`] — the Figure-5 tables (call frequency, time share,
//!   errno distribution).
//!
//! ```
//! use profiler::{Stats, render_report};
//!
//! let stats = Stats::new();
//! stats.record_call("strcpy", 120, None);
//! stats.record_call("fopen", 80, Some(simproc::errno::ENOENT));
//! let report = render_report("myapp", &stats.snapshot());
//! assert!(report.contains("strcpy"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod doc;
mod fleet;
mod flight;
mod journal;
mod oblivious;
mod remedy;
mod report;
mod server;
mod stats;

pub use doc::{
    parse_fleet_document, parse_header_fields, to_xml, to_xml_for_fleet,
    to_xml_with_flight, to_xml_with_healing, to_xml_with_oblivious, FleetDoc, FleetFunc,
    FleetMeta,
};
pub use fleet::{
    AppHealth, FleetAccounting, FleetCollected, FleetCollector, FleetConfig, FleetRollup,
    FleetService, FuncRollup, ShedPolicy, SubmitOutcome, WindowFunc, WindowStats,
};
pub use flight::{FlightRecord, FlightRecorder, MAX_ARGS_LEN};
pub use journal::{HealAction, HealEvent, HealingJournal};
pub use oblivious::{
    ManufacturedRead, ObliviousAudit, ObliviousSnapshot, ShadowWrite, TaintedUse,
    OBLIVIOUS_LEDGER_CAP,
};
pub use remedy::{
    Director, DirectorConfig, EscalationLevel, PolicyChange, RemedyAction, RemedyEvent,
};
pub use report::{
    render_ablation_report, render_escalation_report, render_fault_report,
    render_fleet_report, render_lint_report, render_report, render_report_with_healing,
    render_robust_api_health, render_substitution_report, render_worker_report,
    AblationLine, LintLine, SubstitutionLine, WorkerLine,
};
pub use server::{
    Collected, CollectionServer, Collector, RejectedSample, Submission,
    REJECTED_SAMPLE_CAP, REJECTED_SNIPPET_LEN,
};
pub use stats::{FuncStats, LatencyHistogram, MutexStats, Snapshot, Stats};
