//! Text rendering of profiling data — the tables behind the graphics of
//! the paper's Figure 5 (call frequency, execution-time share, errno
//! distribution and causes).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use simproc::errno::{errno_name, strerror_text};

use crate::journal::HealEvent;
use crate::stats::Snapshot;

/// Renders the full profiling report for one run.
pub fn render_report(app: &str, snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "HEALERS profiling report for `{app}`");
    let _ = writeln!(
        out,
        "{} wrapped calls, {} cycles inside wrapped functions\n",
        snap.total_calls(),
        snap.total_cycles
    );

    let _ = writeln!(out, "Call frequency and execution time:");
    let _ =
        writeln!(out, "{:<14} {:>8} {:>12} {:>8}", "function", "calls", "cycles", "time%");
    let mut by_cycles: Vec<_> = snap.per_func.iter().collect();
    by_cycles.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(b.0)));
    for (name, f) in by_cycles {
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>12} {:>7.2}%",
            name,
            f.calls,
            f.cycles,
            snap.time_share(name)
        );
    }

    let _ = writeln!(out, "\nError distribution (causes by errno):");
    if snap.global_errnos.is_empty() {
        let _ = writeln!(out, "  (no errors recorded)");
    }
    for (e, n) in &snap.global_errnos {
        let _ = writeln!(
            out,
            "  {:>4} {:<10} {:>6}   {}",
            e,
            errno_name(*e),
            n,
            strerror_text(*e)
        );
    }

    let _ = writeln!(out, "\nPer-function error causes:");
    let mut any = false;
    for (name, f) in &snap.per_func {
        for (e, n) in &f.errnos {
            any = true;
            let _ = writeln!(out, "  {:<14} {:<10} x{}", name, errno_name(*e), n);
        }
    }
    if !any {
        let _ = writeln!(out, "  (none)");
    }
    out
}

/// [`render_report`] followed by the healing audit journal — what the
/// healing wrapper prints at `exit`. Events are summarised per function
/// and action, then listed in order.
pub fn render_report_with_healing(
    app: &str,
    snap: &Snapshot,
    events: &[HealEvent],
) -> String {
    let mut out = render_report(app, snap);
    let _ = writeln!(out, "\nHealing audit journal ({} events):", events.len());
    if events.is_empty() {
        let _ = writeln!(out, "  (no healing actions taken)");
        return out;
    }
    let mut by_func: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for ev in events {
        *by_func.entry((ev.func.as_str(), ev.action.tag())).or_insert(0) += 1;
    }
    for ((func, action), n) in &by_func {
        let _ = writeln!(out, "  {func:<14} {action:<12} x{n}");
    }
    let _ = writeln!(out, "\n  Event log:");
    for ev in events {
        let arg = match ev.arg {
            Some(i) => format!("arg {}", i + 1),
            None => "call".into(),
        };
        let _ = writeln!(
            out,
            "    {} {} [{}] {}: {} — {}",
            ev.func, arg, ev.class, ev.action, ev.violation, ev.detail
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;

    #[test]
    fn report_contains_all_sections() {
        let stats = Stats::new();
        stats.record_call("strtok", 900, None);
        stats.record_call("fopen", 100, Some(simproc::errno::ENOENT));
        let report = render_report("wordcount", &stats.snapshot());
        assert!(report.contains("wordcount"), "{report}");
        assert!(report.contains("Call frequency"));
        assert!(report.contains("strtok"));
        assert!(report.contains("90.00%"));
        assert!(report.contains("ENOENT"));
        assert!(report.contains("No such file or directory"));
    }

    #[test]
    fn empty_run_renders() {
        let report = render_report("idle", &Stats::new().snapshot());
        assert!(report.contains("no errors recorded"));
        assert!(report.contains("(none)"));
    }

    #[test]
    fn healing_journal_is_rendered() {
        use crate::journal::{HealAction, HealEvent, HealingJournal};
        let stats = Stats::new();
        stats.record_call("strcpy", 100, None);
        let journal = HealingJournal::new();
        journal.record(HealEvent {
            func: "strcpy".into(),
            arg: Some(1),
            violation: "readable NUL-terminated string".into(),
            class: "unterminated-string".into(),
            action: HealAction::Repaired,
            detail: "NUL-terminated buffer at offset 15".into(),
        });
        let report =
            render_report_with_healing("editor", &stats.snapshot(), &journal.snapshot());
        assert!(report.contains("Healing audit journal (1 events):"), "{report}");
        assert!(report.contains("repaired"), "{report}");
        assert!(report.contains("arg 2"), "1-based in the report: {report}");
        assert!(report.contains("NUL-terminated buffer at offset 15"));

        let empty = render_report_with_healing("editor", &stats.snapshot(), &[]);
        assert!(empty.contains("no healing actions taken"), "{empty}");
    }

    #[test]
    fn functions_sorted_by_cycles() {
        let stats = Stats::new();
        stats.record_call("cheap", 10, None);
        stats.record_call("costly", 1000, None);
        let report = render_report("x", &stats.snapshot());
        let costly = report.find("costly").unwrap();
        let cheap = report.find("cheap").unwrap();
        assert!(costly < cheap);
    }
}
