//! Text rendering of profiling data — the tables behind the graphics of
//! the paper's Figure 5 (call frequency, execution-time share, errno
//! distribution and causes).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use simproc::errno::{errno_name, strerror_text};

use crate::flight::FlightRecord;
use crate::journal::HealEvent;
use crate::stats::{LatencyHistogram, Snapshot};

/// Renders the full profiling report for one run.
pub fn render_report(app: &str, snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "HEALERS profiling report for `{app}`");
    let _ = writeln!(
        out,
        "{} wrapped calls, {} cycles inside wrapped functions\n",
        snap.total_calls(),
        snap.total_cycles
    );

    let _ = writeln!(out, "Call frequency and execution time:");
    let _ =
        writeln!(out, "{:<14} {:>8} {:>12} {:>8}", "function", "calls", "cycles", "time%");
    let mut by_cycles: Vec<_> = snap.per_func.iter().collect();
    by_cycles.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(b.0)));
    for (name, f) in by_cycles {
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>12} {:>7.2}%",
            name,
            f.calls,
            f.cycles,
            snap.time_share(name)
        );
    }

    let _ = writeln!(out, "\nError distribution (causes by errno):");
    if snap.global_errnos.is_empty() {
        let _ = writeln!(out, "  (no errors recorded)");
    }
    for (e, n) in &snap.global_errnos {
        let _ = writeln!(
            out,
            "  {:>4} {:<10} {:>6}   {}",
            e,
            errno_name(*e),
            n,
            strerror_text(*e)
        );
    }

    let _ = writeln!(out, "\nPer-function error causes:");
    let mut any = false;
    for (name, f) in &snap.per_func {
        for (e, n) in &f.errnos {
            any = true;
            let _ = writeln!(out, "  {:<14} {:<10} x{}", name, errno_name(*e), n);
        }
    }
    if !any {
        let _ = writeln!(out, "  (none)");
    }

    if snap.has_latency() {
        let _ = writeln!(out, "\nLatency histograms (log2 buckets, cycles):");
        for (name, f) in &snap.per_func {
            for (stage, hist) in &f.latency {
                let _ = writeln!(out, "  {name} [{stage}] — {} samples", hist.count());
                for (b, n) in hist.buckets() {
                    let _ = writeln!(
                        out,
                        "    {:>22} {:>8}",
                        LatencyHistogram::bucket_label(b),
                        n
                    );
                }
            }
        }
    }
    out
}

/// [`render_report`] followed by the healing audit journal — what the
/// healing wrapper prints at `exit`. Events are summarised per function
/// and action, then listed in order.
pub fn render_report_with_healing(
    app: &str,
    snap: &Snapshot,
    events: &[HealEvent],
) -> String {
    let mut out = render_report(app, snap);
    let _ = writeln!(out, "\nHealing audit journal ({} events):", events.len());
    if events.is_empty() {
        let _ = writeln!(out, "  (no healing actions taken)");
        return out;
    }
    let mut by_func: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for ev in events {
        *by_func.entry((ev.func.as_str(), ev.action.tag())).or_insert(0) += 1;
    }
    for ((func, action), n) in &by_func {
        let _ = writeln!(out, "  {func:<14} {action:<12} x{n}");
    }
    let _ = writeln!(out, "\n  Event log:");
    for ev in events {
        let arg = match ev.arg {
            Some(i) => format!("arg {}", i + 1),
            None => "call".into(),
        };
        let _ = writeln!(
            out,
            "    {} {} [{}] {}: {} — {}",
            ev.func, arg, ev.class, ev.action, ev.violation, ev.detail
        );
    }
    out
}

/// Renders the campaign-health summary of a derived robust API: one
/// line per function with its confidence and coverage, functions with
/// degraded confidence first, then a totals line. This is what an
/// operator reads before deciding whether to deploy a wrapper built
/// from a budget-cut or interrupted campaign.
pub fn render_robust_api_health(api: &typelattice::RobustApi) -> String {
    use typelattice::Confidence;
    let mut out = String::new();
    let _ = writeln!(out, "Robust-API health for `{}`:", api.library);
    let mut rows: Vec<_> = api.functions.iter().collect();
    rows.sort_by(|a, b| {
        a.confidence.cmp(&b.confidence).then(a.proto.name.cmp(&b.proto.name))
    });
    let _ = writeln!(out, "{:<14} {:>12} {:>8}   notes", "function", "confidence", "cover");
    for f in &rows {
        let note = match f.confidence {
            Confidence::Inconclusive => "circuit breaker tripped; contract is a guess",
            Confidence::Partial => "campaign budget expired before full probe",
            Confidence::Flaky => "non-deterministic outcomes observed",
            Confidence::High => "",
        };
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>7.1}%   {}",
            f.proto.name,
            f.confidence.tag(),
            f.coverage * 100.0,
            note
        );
    }
    let measured = api.functions.iter().filter(|f| f.is_measured()).count();
    let _ = writeln!(
        out,
        "\n{} of {} contracts are measurements; mean coverage {:.1}%",
        measured,
        api.functions.len(),
        if api.functions.is_empty() {
            100.0
        } else {
            api.functions.iter().map(|f| f.coverage).sum::<f64>()
                / api.functions.len() as f64
                * 100.0
        }
    );
    out
}

/// One wrapper-soundness lint finding, pre-rendered by the analyzer into
/// the profiler's report vocabulary. The profiler deliberately knows
/// nothing about hook pipelines or contracts — it renders whatever lines
/// the upstream lint produced, deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintLine {
    /// Wrapped function the finding is about.
    pub func: String,
    /// Stable rule identifier (e.g. `check-after-mutation`).
    pub rule: String,
    /// `error` or `warning`.
    pub severity: String,
    /// Human-readable explanation.
    pub message: String,
}

/// Renders the wrapper-soundness lint section: one line per finding,
/// sorted by (function, rule, message) so two same-input runs render
/// byte-identically. An empty finding list renders a clean bill.
pub fn render_lint_report(library: &str, lines: &[LintLine]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Wrapper-soundness lint for `{library}`:");
    if lines.is_empty() {
        let _ = writeln!(out, "  (no findings — every modelled wrapper is sound)");
        return out;
    }
    let mut sorted: Vec<&LintLine> = lines.iter().collect();
    sorted.sort_by(|a, b| {
        a.func
            .cmp(&b.func)
            .then_with(|| a.rule.cmp(&b.rule))
            .then_with(|| a.message.cmp(&b.message))
    });
    for l in sorted {
        let _ =
            writeln!(out, "  {:<9} {:<14} [{}] {}", l.severity, l.func, l.rule, l.message);
    }
    let _ = writeln!(out, "  {} finding(s)", lines.len());
    out
}

/// One (function, policy) row of a policy-ablation study, pre-rendered
/// by the injector into the profiler's report vocabulary — like
/// [`LintLine`], the profiler knows nothing about wrapper policies; it
/// renders whatever rows the replay produced, deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AblationLine {
    /// Wrapped function the cases were replayed against.
    pub func: String,
    /// Policy label (e.g. `terminate`, `heal`, `oblivious`).
    pub policy: String,
    /// Crash cases replayed under this policy.
    pub replayed: u64,
    /// Cases that survived: the call returned normally or as a graceful
    /// errno error (the paper's availability measure).
    pub survived: u64,
    /// Cases that "survived" while corrupting process state — Ballista's
    /// Silent class, the cost side of failure-oblivious execution.
    pub corruption_escaped: u64,
    /// Survivals attributable to an audited absorption (manufactured
    /// read, suppressed write or healing action on the record).
    pub absorbed_audited: u64,
    /// Survivals with **no** audit trace — each one is a violation of
    /// the no-silent-absorption contract and must be zero for a
    /// deployable oblivious wrapper.
    pub unaudited_escapes: u64,
}

/// Renders the policy-ablation section: one line per (function, policy)
/// sorted by function then policy, followed by a per-policy totals
/// block. Input order never matters, so two same-seed replays render
/// byte-identically.
pub fn render_ablation_report(library: &str, lines: &[AblationLine]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Policy ablation for `{library}`:");
    if lines.is_empty() {
        let _ = writeln!(out, "  (no crash cases replayed)");
        return out;
    }
    let mut sorted: Vec<&AblationLine> = lines.iter().collect();
    sorted.sort_by(|a, b| a.func.cmp(&b.func).then_with(|| a.policy.cmp(&b.policy)));
    let _ = writeln!(
        out,
        "  {:<14} {:<10} {:>8} {:>9} {:>8} {:>8} {:>10}",
        "function", "policy", "replayed", "survived", "escaped", "audited", "unaudited"
    );
    for l in &sorted {
        let _ = writeln!(
            out,
            "  {:<14} {:<10} {:>8} {:>9} {:>8} {:>8} {:>10}",
            l.func,
            l.policy,
            l.replayed,
            l.survived,
            l.corruption_escaped,
            l.absorbed_audited,
            l.unaudited_escapes
        );
    }
    let mut by_policy: BTreeMap<&str, (u64, u64, u64, u64)> = BTreeMap::new();
    for l in &sorted {
        let t = by_policy.entry(l.policy.as_str()).or_insert((0, 0, 0, 0));
        t.0 += l.replayed;
        t.1 += l.survived;
        t.2 += l.corruption_escaped;
        t.3 += l.unaudited_escapes;
    }
    let _ = writeln!(out, "\n  Per-policy totals:");
    for (policy, (replayed, survived, escaped, unaudited)) in &by_policy {
        let _ = writeln!(
            out,
            "    {:<10} {}/{} survived, {} corruption escaped, {} unaudited",
            policy, survived, replayed, escaped, unaudited
        );
    }
    out
}

/// One function row of a substitution trial: the same recorded crash
/// cases replayed through the detecting (canary/terminate) wrapper and
/// through the safer-variant substitute, pre-rendered by the injector
/// into the profiler's report vocabulary. The row is the paper-level
/// claim: an overflow class moves from *detected* (process terminated
/// after the canary is smashed) to *prevented* (write clipped to the
/// exact extent, process keeps running).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstitutionLine {
    /// Wrapped function the cases were replayed against.
    pub func: String,
    /// Crash cases replayed through each arm.
    pub replayed: u64,
    /// Detection arm: cases the unsubstituted security wrapper answered
    /// by refusing or terminating (canary-detected after the fact).
    pub detected: u64,
    /// Substitution arm: cases that survived *with* a journaled
    /// `prevented` clip — the overflow never happened.
    pub prevented: u64,
    /// Substitution arm: cases that survived in total (prevented clips
    /// plus graceful rejections of unmeasurable preconditions).
    pub survived: u64,
    /// Same-seed behaviour divergences between the substitute and the
    /// unsubstituted reference on cases the reference passes — must be
    /// zero for a sound substitution (the CI gate).
    pub diverged: u64,
}

/// Renders the substitution trial: the prevented-vs-detected table, a
/// totals line, and the audit of every rewrite's discharged proof.
/// Deterministic: rows sort by function, proofs render in plan order.
pub fn render_substitution_report(
    library: &str,
    lines: &[SubstitutionLine],
    plans: &[typelattice::SubstitutionPlan],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Safer-variant substitution trial for `{library}`:");
    if lines.is_empty() {
        let _ = writeln!(out, "  (no crash cases replayed)");
    } else {
        let mut sorted: Vec<&SubstitutionLine> = lines.iter().collect();
        sorted.sort_by(|a, b| a.func.cmp(&b.func));
        let _ = writeln!(
            out,
            "  {:<14} {:>8} {:>9} {:>10} {:>9} {:>9}",
            "function", "replayed", "detected", "prevented", "survived", "diverged"
        );
        let mut tot = (0u64, 0u64, 0u64, 0u64, 0u64);
        for l in &sorted {
            let _ = writeln!(
                out,
                "  {:<14} {:>8} {:>9} {:>10} {:>9} {:>9}",
                l.func, l.replayed, l.detected, l.prevented, l.survived, l.diverged
            );
            tot.0 += l.replayed;
            tot.1 += l.detected;
            tot.2 += l.prevented;
            tot.3 += l.survived;
            tot.4 += l.diverged;
        }
        let _ = writeln!(
            out,
            "\n  Totals: {} replayed, {} detected -> {} prevented \
             ({} survived, {} diverged)",
            tot.0, tot.1, tot.2, tot.3, tot.4
        );
    }
    let _ = writeln!(out, "\n  Substitution audit ({} proven plan(s)):", plans.len());
    for plan in plans {
        for line in plan.render_proof().lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    out
}

/// Per-worker campaign metrics, pre-rendered by the injector into the
/// profiler's report vocabulary — like [`LintLine`], the profiler knows
/// nothing about campaigns; it renders whatever rows the workers
/// produced, deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerLine {
    /// Worker name (e.g. `worker-0`).
    pub worker: String,
    /// Functions this worker claimed from the shared queue.
    pub functions: usize,
    /// Injection tests it executed.
    pub executed: usize,
    /// Tests skipped via checkpoint hits.
    pub checkpoint_hits: usize,
    /// Flaky-outcome retries it performed.
    pub retries: usize,
    /// Contract violations (failures) it observed.
    pub failures: usize,
    /// Wall-clock microseconds the worker was busy.
    pub elapsed_micros: u64,
}

/// Renders the per-worker campaign metrics: one line per worker sorted
/// by name, then a totals line. Worker rows depend on scheduling, so
/// this report is for operators — it is deliberately kept out of the
/// deterministic campaign XML.
pub fn render_worker_report(library: &str, lines: &[WorkerLine]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Campaign worker metrics for `{library}`:");
    if lines.is_empty() {
        let _ = writeln!(out, "  (serial campaign — no workers)");
        return out;
    }
    let mut sorted: Vec<&WorkerLine> = lines.iter().collect();
    sorted.sort_by(|a, b| a.worker.cmp(&b.worker));
    let _ = writeln!(
        out,
        "  {:<10} {:>6} {:>9} {:>7} {:>8} {:>9} {:>10} {:>12}",
        "worker", "funcs", "executed", "hits", "retries", "failures", "elapsed", "tests/s"
    );
    let mut tot = WorkerLine {
        worker: String::new(),
        functions: 0,
        executed: 0,
        checkpoint_hits: 0,
        retries: 0,
        failures: 0,
        elapsed_micros: 0,
    };
    for w in &sorted {
        let rate = if w.elapsed_micros == 0 {
            0.0
        } else {
            w.executed as f64 * 1_000_000.0 / w.elapsed_micros as f64
        };
        let _ = writeln!(
            out,
            "  {:<10} {:>6} {:>9} {:>7} {:>8} {:>9} {:>8}us {:>12.0}",
            w.worker,
            w.functions,
            w.executed,
            w.checkpoint_hits,
            w.retries,
            w.failures,
            w.elapsed_micros,
            rate
        );
        tot.functions += w.functions;
        tot.executed += w.executed;
        tot.checkpoint_hits += w.checkpoint_hits;
        tot.retries += w.retries;
        tot.failures += w.failures;
        tot.elapsed_micros = tot.elapsed_micros.max(w.elapsed_micros);
    }
    let _ = writeln!(
        out,
        "  {:<10} {:>6} {:>9} {:>7} {:>8} {:>9} {:>8}us",
        "total",
        tot.functions,
        tot.executed,
        tot.checkpoint_hits,
        tot.retries,
        tot.failures,
        tot.elapsed_micros
    );
    out
}

/// Renders a fault report: the verdict that fired plus the flight
/// recorder's last-N calls, oldest first — the call history an operator
/// reads to see what led up to a `Fault`, `Deny` or heal.
pub fn render_fault_report(app: &str, fault: &str, tail: &[FlightRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "HEALERS fault report for `{app}`");
    let _ = writeln!(out, "Fault: {fault}");
    if tail.is_empty() {
        let _ =
            writeln!(out, "\nFlight recorder: (empty — recording disabled or no calls)");
        return out;
    }
    let _ = writeln!(out, "\nFlight recorder (last {} calls, oldest first):", tail.len());
    for rec in tail {
        let _ = writeln!(
            out,
            "  {}{} -> {} [{} cycles]",
            rec.func, rec.args, rec.verdict, rec.cycles
        );
    }
    out
}

/// Renders the fleet rollup report: top crashing functions fleet-wide,
/// per-application health, per-window crash rates, ingest accounting
/// and the bounded rejected-document sample. Every section iterates
/// sorted maps and the timing-dependent `retry_signals` gauge is
/// deliberately omitted, so two same-seed fleet runs render
/// byte-identically.
pub fn render_fleet_report(
    rollup: &crate::fleet::FleetRollup,
    accounting: &crate::fleet::FleetAccounting,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "HEALERS fleet rollup");
    let _ = writeln!(
        out,
        "{} documents merged ({} post-mortem), {} rejected\n",
        rollup.docs, rollup.crash_docs, rollup.rejected
    );

    let _ = writeln!(out, "Top crashing functions fleet-wide:");
    let top = rollup.top_crashing(10);
    if top.is_empty() {
        let _ = writeln!(out, "  (no crashes attributed)");
    } else {
        let _ = writeln!(
            out,
            "  {:<14} {:>8} {:>10} {:>8}",
            "function", "crashes", "calls", "errors"
        );
        for (name, f) in top {
            let _ = writeln!(
                out,
                "  {:<14} {:>8} {:>10} {:>8}",
                name, f.crashes, f.calls, f.errors
            );
        }
    }

    let _ = writeln!(out, "\nPer-application health:");
    let _ = writeln!(
        out,
        "  {:<14} {:>6} {:>8} {:>10} {:>8} {:>7}",
        "application", "docs", "crashes", "calls", "errors", "heals"
    );
    for (app, h) in &rollup.per_app {
        let _ = writeln!(
            out,
            "  {:<14} {:>6} {:>8} {:>10} {:>8} {:>7}",
            app, h.docs, h.crashes, h.calls, h.errors, h.heals
        );
    }

    let _ = writeln!(out, "\nCrash rate by window (\u{2030} of calls):");
    let _ = writeln!(
        out,
        "  {:<8} {:>6} {:>10} {:>8}   worst function",
        "window", "docs", "calls", "rate"
    );
    for (w, ws) in &rollup.windows {
        let calls: u64 = ws.per_func.values().map(|f| f.calls + f.crashes).sum();
        let crashes: u64 = ws.per_func.values().map(|f| f.crashes).sum();
        let rate = (crashes * 1000).checked_div(calls).unwrap_or(0);
        let worst = ws
            .per_func
            .iter()
            .filter(|(_, f)| f.crashes > 0)
            .max_by(|a, b| {
                a.1.crash_rate_x1000().cmp(&b.1.crash_rate_x1000()).then(b.0.cmp(a.0))
            })
            .map(|(name, f)| format!("{name} ({}\u{2030})", f.crash_rate_x1000()))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "  {:<8} {:>6} {:>10} {:>7}\u{2030}   {}",
            w, ws.docs, calls, rate, worst
        );
    }

    let _ = writeln!(out, "\nIngest accounting:");
    let _ = writeln!(
        out,
        "  {:<8} {:>9} {:>8} {:>9} {:>10}",
        "shard", "accepted", "merged", "rejected", "shed-full"
    );
    for i in 0..accounting.accepted_per_shard.len() {
        let _ = writeln!(
            out,
            "  {:<8} {:>9} {:>8} {:>9} {:>10}",
            i,
            accounting.accepted_per_shard[i],
            accounting.merged_per_shard.get(i).copied().unwrap_or(0),
            accounting.rejected_per_shard.get(i).copied().unwrap_or(0),
            accounting.shed_full_per_shard.get(i).copied().unwrap_or(0),
        );
    }
    let _ = writeln!(
        out,
        "  {:<8} {:>9} {:>8} {:>9} {:>10}   shed-closed {}  balanced {}",
        "total",
        accounting.accepted(),
        accounting.merged(),
        accounting.rejected(),
        accounting.shed_full(),
        accounting.shed_closed,
        accounting.balanced()
    );

    if !rollup.rejected_samples.is_empty() {
        let _ = writeln!(
            out,
            "\nRejected document samples (first {} of {}):",
            rollup.rejected_samples.len(),
            rollup.rejected
        );
        for s in &rollup.rejected_samples {
            let _ = writeln!(out, "  [{}] {:?}", s.reason, s.snippet);
        }
    }
    out
}

/// Renders the remediation director's escalation journal: one line per
/// decision in decision order, then a per-action summary. The journal
/// is already deterministic, so the rendering is too.
pub fn render_escalation_report(journal: &[crate::remedy::RemedyEvent]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Escalation journal ({} decisions):", journal.len());
    if journal.is_empty() {
        let _ = writeln!(out, "  (fleet healthy — no remediation needed)");
        return out;
    }
    for ev in journal {
        let _ = writeln!(
            out,
            "  w{:<4} {:<14} {:<10} {:>9} -> {:<9} rate {:>4}\u{2030} ewma {:>4}\u{2030}  {}",
            ev.window,
            ev.func,
            ev.action.tag(),
            ev.from.tag(),
            ev.to.tag(),
            ev.rate_x1000,
            ev.ewma_x1000,
            ev.detail
        );
    }
    let mut by_action: BTreeMap<&str, usize> = BTreeMap::new();
    for ev in journal {
        *by_action.entry(ev.action.tag()).or_insert(0) += 1;
    }
    let _ = writeln!(out, "\n  Summary:");
    for (action, n) in &by_action {
        let _ = writeln!(out, "    {action:<12} x{n}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Stats;

    #[test]
    fn report_contains_all_sections() {
        let stats = Stats::new();
        stats.record_call("strtok", 900, None);
        stats.record_call("fopen", 100, Some(simproc::errno::ENOENT));
        let report = render_report("wordcount", &stats.snapshot());
        assert!(report.contains("wordcount"), "{report}");
        assert!(report.contains("Call frequency"));
        assert!(report.contains("strtok"));
        assert!(report.contains("90.00%"));
        assert!(report.contains("ENOENT"));
        assert!(report.contains("No such file or directory"));
    }

    #[test]
    fn empty_run_renders() {
        let report = render_report("idle", &Stats::new().snapshot());
        assert!(report.contains("no errors recorded"));
        assert!(report.contains("(none)"));
    }

    #[test]
    fn healing_journal_is_rendered() {
        use crate::journal::{HealAction, HealEvent, HealingJournal};
        let stats = Stats::new();
        stats.record_call("strcpy", 100, None);
        let journal = HealingJournal::new();
        journal.record(HealEvent {
            func: "strcpy".into(),
            arg: Some(1),
            violation: "readable NUL-terminated string".into(),
            class: "unterminated-string".into(),
            action: HealAction::Repaired,
            detail: "NUL-terminated buffer at offset 15".into(),
        });
        let report =
            render_report_with_healing("editor", &stats.snapshot(), &journal.snapshot());
        assert!(report.contains("Healing audit journal (1 events):"), "{report}");
        assert!(report.contains("repaired"), "{report}");
        assert!(report.contains("arg 2"), "1-based in the report: {report}");
        assert!(report.contains("NUL-terminated buffer at offset 15"));

        let empty = render_report_with_healing("editor", &stats.snapshot(), &[]);
        assert!(empty.contains("no healing actions taken"), "{empty}");
    }

    #[test]
    fn health_report_leads_with_degraded_contracts() {
        use cdecl::{parse_prototype, TypedefTable};
        use typelattice::{Confidence, RobustApi, RobustFunction, SafePred};
        let t = TypedefTable::with_builtins();
        let mut good = RobustFunction::new(
            parse_prototype("size_t strlen(const char *s);", &t).unwrap(),
            vec![SafePred::CStr],
            true,
        );
        good.coverage = 1.0;
        let mut cut = RobustFunction::new(
            parse_prototype("int abs(int j);", &t).unwrap(),
            vec![SafePred::Always],
            false,
        );
        cut.confidence = Confidence::Partial;
        cut.coverage = 0.5;
        let api = RobustApi { library: "libsimc.so.1".into(), functions: vec![good, cut] };
        let report = render_robust_api_health(&api);
        assert!(report.contains("libsimc.so.1"), "{report}");
        let abs = report.find("abs").unwrap();
        let strlen = report.find("strlen").unwrap();
        assert!(abs < strlen, "degraded contracts listed first: {report}");
        assert!(report.contains("budget expired"), "{report}");
        assert!(report.contains("1 of 2 contracts are measurements"), "{report}");
        assert!(report.contains("75.0%"), "mean coverage: {report}");
    }

    #[test]
    fn lint_report_renders_sorted_and_deterministic() {
        let mk = |func: &str, rule: &str, msg: &str| LintLine {
            func: func.into(),
            rule: rule.into(),
            severity: "error".into(),
            message: msg.into(),
        };
        let lines = vec![
            mk("strcpy", "narrow-mask", "b"),
            mk("memcpy", "check-after-mutation", "a"),
            mk("strcpy", "check-after-mutation", "a"),
        ];
        let r1 = render_lint_report("libsimc.so.1", &lines);
        let mut reversed = lines.clone();
        reversed.reverse();
        let r2 = render_lint_report("libsimc.so.1", &reversed);
        assert_eq!(r1, r2, "input order must not matter");
        let memcpy = r1.find("memcpy").unwrap();
        let strcpy = r1.find("strcpy").unwrap();
        assert!(memcpy < strcpy, "{r1}");
        assert!(r1.contains("3 finding(s)"), "{r1}");

        let clean = render_lint_report("libsimc.so.1", &[]);
        assert!(clean.contains("no findings"), "{clean}");
    }

    #[test]
    fn ablation_report_renders_sorted_with_policy_totals() {
        let mk = |func: &str, policy: &str, survived: u64, escaped: u64| AblationLine {
            func: func.into(),
            policy: policy.into(),
            replayed: 10,
            survived,
            corruption_escaped: escaped,
            absorbed_audited: survived,
            unaudited_escapes: 0,
        };
        let lines = vec![
            mk("strcpy", "terminate", 0, 0),
            mk("memcpy", "oblivious", 9, 1),
            mk("strcpy", "oblivious", 10, 0),
        ];
        let r1 = render_ablation_report("libsimc.so.1", &lines);
        let mut reversed = lines.clone();
        reversed.reverse();
        let r2 = render_ablation_report("libsimc.so.1", &reversed);
        assert_eq!(r1, r2, "input order must not matter");
        let memcpy = r1.find("memcpy").unwrap();
        let strcpy = r1.find("strcpy").unwrap();
        assert!(memcpy < strcpy, "{r1}");
        assert!(r1.contains("Per-policy totals:"), "{r1}");
        assert!(r1.contains("oblivious  19/20 survived, 1 corruption escaped"), "{r1}");
        assert!(r1.contains("terminate  0/10 survived, 0 corruption escaped"), "{r1}");

        let empty = render_ablation_report("libsimc.so.1", &[]);
        assert!(empty.contains("no crash cases replayed"), "{empty}");
    }

    #[test]
    fn latency_section_renders_when_present() {
        let stats = Stats::new();
        stats.record_call("memcpy", 100, None);
        let plain = render_report("x", &stats.snapshot());
        assert!(!plain.contains("Latency histograms"), "{plain}");

        stats.record_latency("memcpy", "call", 3);
        stats.record_latency("memcpy", "call", 900);
        let report = render_report("x", &stats.snapshot());
        assert!(report.contains("Latency histograms"), "{report}");
        assert!(report.contains("memcpy [call] — 2 samples"), "{report}");
        assert!(report.contains("2..3"), "{report}");
        assert!(report.contains("512..1023"), "{report}");
    }

    #[test]
    fn worker_report_renders_sorted_with_totals() {
        let mk = |worker: &str, executed: usize| WorkerLine {
            worker: worker.into(),
            functions: 2,
            executed,
            checkpoint_hits: 1,
            retries: 0,
            failures: executed / 10,
            elapsed_micros: 1_000,
        };
        let lines = vec![mk("worker-1", 50), mk("worker-0", 100)];
        let r1 = render_worker_report("libsimc.so.1", &lines);
        let mut reversed = lines.clone();
        reversed.reverse();
        let r2 = render_worker_report("libsimc.so.1", &reversed);
        assert_eq!(r1, r2, "input order must not matter");
        let w0 = r1.find("worker-0").unwrap();
        let w1 = r1.find("worker-1").unwrap();
        assert!(w0 < w1, "{r1}");
        assert!(r1.contains("total"), "{r1}");
        assert!(r1.contains("150"), "summed executed: {r1}");

        let serial = render_worker_report("libsimc.so.1", &[]);
        assert!(serial.contains("no workers"), "{serial}");
    }

    #[test]
    fn fault_report_lists_flight_tail() {
        let tail = vec![
            FlightRecord {
                func: "malloc".into(),
                args: "(32)".into(),
                verdict: "ok".into(),
                cycles: 10,
            },
            FlightRecord {
                func: "strcpy".into(),
                args: "(0x1000, ...)".into(),
                verdict: "security-violation".into(),
                cycles: 44,
            },
        ];
        let report = render_fault_report("victim", "SecurityViolation in strcpy", &tail);
        assert!(report.contains("Fault: SecurityViolation in strcpy"), "{report}");
        assert!(report.contains("last 2 calls"), "{report}");
        assert!(report.contains("malloc(32) -> ok [10 cycles]"), "{report}");
        assert!(report.contains("strcpy(0x1000, ...) -> security-violation"), "{report}");
        let m = report.find("malloc").unwrap();
        let s = report.find("strcpy(0x1000").unwrap();
        assert!(m < s, "oldest first: {report}");

        let empty = render_fault_report("victim", "fault", &[]);
        assert!(empty.contains("recording disabled or no calls"), "{empty}");
    }

    #[test]
    fn functions_sorted_by_cycles() {
        let stats = Stats::new();
        stats.record_call("cheap", 10, None);
        stats.record_call("costly", 1000, None);
        let report = render_report("x", &stats.snapshot());
        let costly = report.find("costly").unwrap();
        let cheap = report.find("cheap").unwrap();
        assert!(costly < cheap);
    }

    #[test]
    fn fleet_report_renders_all_sections() {
        use crate::fleet::{
            AppHealth, FleetAccounting, FleetRollup, FuncRollup, WindowFunc, WindowStats,
        };
        let mut rollup =
            FleetRollup { docs: 12, crash_docs: 3, rejected: 1, ..FleetRollup::default() };
        rollup.per_func.insert(
            "strcpy".into(),
            FuncRollup { calls: 100, cycles: 4000, errors: 2, crashes: 3 },
        );
        rollup.per_app.insert(
            "editor".into(),
            AppHealth { docs: 12, crashes: 3, calls: 100, errors: 2, heals: 5 },
        );
        let mut w = WindowStats { docs: 12, ..WindowStats::default() };
        w.per_func.insert("strcpy".into(), WindowFunc { calls: 97, errors: 2, crashes: 3 });
        rollup.windows.insert(2, w);
        rollup
            .rejected_samples
            .push(crate::server::RejectedSample::of("junk", "no <healers-profile> root"));
        let accounting = FleetAccounting {
            accepted_per_shard: vec![7, 6],
            merged_per_shard: vec![6, 6],
            rejected_per_shard: vec![1, 0],
            shed_full_per_shard: vec![0, 2],
            shed_closed: 1,
            retry_signals: 9,
        };
        let report = render_fleet_report(&rollup, &accounting);
        assert!(report.contains("Top crashing functions"), "{report}");
        assert!(report.contains("strcpy"), "{report}");
        assert!(report.contains("editor"), "{report}");
        assert!(report.contains("strcpy (30\u{2030})"), "{report}");
        assert!(report.contains("balanced true"), "{report}");
        assert!(report.contains("no <healers-profile> root"), "{report}");
        assert!(
            !report.contains("retry"),
            "retry signals are timing-dependent and must stay out: {report}"
        );
    }

    #[test]
    fn escalation_report_lists_decisions_in_order() {
        use crate::remedy::{EscalationLevel, RemedyAction, RemedyEvent};
        let journal = vec![
            RemedyEvent {
                window: 2,
                func: "strcpy".into(),
                action: RemedyAction::Escalate,
                from: EscalationLevel::Observe,
                to: EscalationLevel::Contain,
                rate_x1000: 400,
                ewma_x1000: 10,
                detail: "burst".into(),
            },
            RemedyEvent {
                window: 4,
                func: "strcpy".into(),
                action: RemedyAction::Confirm,
                from: EscalationLevel::Contain,
                to: EscalationLevel::Contain,
                rate_x1000: 20,
                ewma_x1000: 120,
                detail: "improved".into(),
            },
        ];
        let report = render_escalation_report(&journal);
        assert!(report.contains("2 decisions"), "{report}");
        assert!(report.contains("observe -> contain"), "{report}");
        assert!(report.contains("escalate     x1"), "{report}");
        assert!(report.contains("confirm      x1"), "{report}");
        let empty = render_escalation_report(&[]);
        assert!(empty.contains("fleet healthy"), "{empty}");
    }
}
