//! Closed-loop policy remediation: the director that watches the fleet
//! rollup's per-window crash rates and walks misbehaving functions up
//! (and back down) an escalation ladder.
//!
//! The ladder mirrors the paper's §2.4 failure-handling choices, from
//! least to most intrusive:
//!
//! | level | wrapper behaviour |
//! |-------|-------------------|
//! | Observe | checks run, violations journaled, call passes through |
//! | Contain | violating calls rejected with an error return |
//! | Heal | violating arguments repaired, call proceeds |
//! | Oblivious | reads answered with manufactured values, out-of-bounds writes suppressed and audited — the process keeps serving |
//! | Terminate | violating process stopped |
//!
//! Every decision is driven by integer fixed-point arithmetic over the
//! deterministic window rollups (no floats, no wall clock), so the same
//! fleet history always produces byte-identical journals. Three
//! mechanisms keep the loop stable:
//!
//! * **anomaly detection** — a function escalates only when its
//!   windowed crash rate clears an absolute threshold *and* stands out
//!   against its own EWMA baseline;
//! * **rollback** — each escalation carries an observation window; if
//!   the crash rate has not improved by the deadline the director
//!   reverts the level and opens a circuit breaker;
//! * **circuit breaker + hysteresis** — a broken (rolled-back) function
//!   cannot re-escalate until a cooldown of quiet windows has passed,
//!   and de-escalation requires sustained quiet, so the ladder cannot
//!   flap.

use std::collections::BTreeMap;

use crate::fleet::WindowStats;

/// One rung of the remediation ladder, least intrusive first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EscalationLevel {
    /// Checks journal violations but the call passes through unchanged.
    Observe,
    /// Violating calls are rejected with an error return (paper §2.4
    /// "return an error code").
    Contain,
    /// Violating arguments are repaired and the call proceeds.
    Heal,
    /// Availability mode: violating reads are answered with manufactured
    /// context-selected values, out-of-bounds writes are suppressed and
    /// ledgered — the process keeps serving, every absorption audited.
    Oblivious,
    /// The violating process is stopped.
    Terminate,
}

impl EscalationLevel {
    /// Stable lower-case tag for reports and journals.
    pub fn tag(&self) -> &'static str {
        match self {
            EscalationLevel::Observe => "observe",
            EscalationLevel::Contain => "contain",
            EscalationLevel::Heal => "heal",
            EscalationLevel::Oblivious => "oblivious",
            EscalationLevel::Terminate => "terminate",
        }
    }

    /// The next rung up, if any.
    pub fn next(&self) -> Option<EscalationLevel> {
        match self {
            EscalationLevel::Observe => Some(EscalationLevel::Contain),
            EscalationLevel::Contain => Some(EscalationLevel::Heal),
            EscalationLevel::Heal => Some(EscalationLevel::Oblivious),
            EscalationLevel::Oblivious => Some(EscalationLevel::Terminate),
            EscalationLevel::Terminate => None,
        }
    }

    /// The next rung down, if any.
    pub fn prev(&self) -> Option<EscalationLevel> {
        match self {
            EscalationLevel::Observe => None,
            EscalationLevel::Contain => Some(EscalationLevel::Observe),
            EscalationLevel::Heal => Some(EscalationLevel::Contain),
            EscalationLevel::Oblivious => Some(EscalationLevel::Heal),
            EscalationLevel::Terminate => Some(EscalationLevel::Oblivious),
        }
    }
}

/// Director tuning. All rates are fixed-point thousandths (a rate of
/// `250` means 250 crashes per 1000 calls).
#[derive(Debug, Clone)]
pub struct DirectorConfig {
    /// EWMA smoothing factor α, x1000 (e.g. `300` = 0.3: 30% of each
    /// new window, 70% history).
    pub ewma_alpha_x1000: u64,
    /// Absolute crash-rate threshold, x1000, below which a function is
    /// never escalated.
    pub rate_threshold_x1000: u64,
    /// Relative anomaly factor, x1000: the window rate must also be at
    /// least `ewma * ewma_factor / 1000` to count as an anomaly (a
    /// chronically bad baseline does not re-trigger every window).
    pub ewma_factor_x1000: u64,
    /// Hard crash-rate ceiling, x1000: at or above this rate the
    /// EWMA-relative test is waived — a fleet losing this many calls is
    /// an anomaly no matter how bad its recent history was.
    pub hard_rate_x1000: u64,
    /// Minimum calls in a window before its rate is judged at all.
    pub min_calls: u64,
    /// Windows an escalation gets to prove itself before the verdict.
    pub observe_windows: u64,
    /// Improvement bar, x1000: at the deadline the rate must be at most
    /// `base_rate * improve_factor / 1000`, else the escalation rolls
    /// back.
    pub improve_factor_x1000: u64,
    /// Circuit-breaker cooldown after a rollback, in windows.
    pub cooldown_windows: u64,
    /// Consecutive quiet windows (rate under half the threshold) before
    /// a level de-escalates — the hysteresis that prevents flapping.
    pub deescalate_quiet_windows: u64,
}

impl Default for DirectorConfig {
    fn default() -> Self {
        DirectorConfig {
            ewma_alpha_x1000: 300,
            rate_threshold_x1000: 50,
            ewma_factor_x1000: 1500,
            hard_rate_x1000: 400,
            min_calls: 8,
            observe_windows: 2,
            improve_factor_x1000: 500,
            cooldown_windows: 4,
            deescalate_quiet_windows: 6,
        }
    }
}

/// Why the director touched (or pointedly did not touch) a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemedyAction {
    /// Crash-rate anomaly: level raised, observation clock started.
    Escalate,
    /// The escalation improved the crash rate by its deadline; it
    /// stays.
    Confirm,
    /// The escalation did not improve the crash rate; level reverted
    /// and the circuit breaker opened.
    Rollback,
    /// An anomaly fired while the circuit breaker was open; no change
    /// (the journal entry is the evidence flapping was prevented).
    Suppress,
    /// Sustained quiet: level lowered one rung.
    Deescalate,
}

impl RemedyAction {
    /// Stable lower-case tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            RemedyAction::Escalate => "escalate",
            RemedyAction::Confirm => "confirm",
            RemedyAction::Rollback => "rollback",
            RemedyAction::Suppress => "suppress",
            RemedyAction::Deescalate => "deescalate",
        }
    }
}

/// One entry in the auditable escalation journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemedyEvent {
    /// Window the decision was made in.
    pub window: u64,
    /// Function concerned.
    pub func: String,
    /// What happened.
    pub action: RemedyAction,
    /// Level before the decision.
    pub from: EscalationLevel,
    /// Level after the decision (same as `from` for Confirm/Suppress).
    pub to: EscalationLevel,
    /// The window crash rate that drove the decision, x1000.
    pub rate_x1000: u64,
    /// The function's EWMA baseline at decision time, x1000.
    pub ewma_x1000: u64,
    /// Human-readable detail for the report.
    pub detail: String,
}

/// A policy change the supervisor must apply to the fleet's wrappers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyChange {
    /// Function whose policy changes.
    pub func: String,
    /// Its new level.
    pub level: EscalationLevel,
}

#[derive(Debug, Clone)]
struct Pending {
    from: EscalationLevel,
    at_window: u64,
    base_rate_x1000: u64,
}

#[derive(Debug, Clone)]
struct FuncState {
    level: EscalationLevel,
    ewma_x1000: u64,
    seeded: bool,
    pending: Option<Pending>,
    breaker_until: Option<u64>,
    quiet: u64,
}

impl Default for FuncState {
    fn default() -> Self {
        FuncState {
            level: EscalationLevel::Observe,
            ewma_x1000: 0,
            seeded: false,
            pending: None,
            breaker_until: None,
            quiet: 0,
        }
    }
}

/// The remediation director. Feed it sealed windows in order via
/// [`Director::observe_window`]; it returns the policy changes to apply
/// and appends every decision to its journal.
#[derive(Debug)]
pub struct Director {
    config: DirectorConfig,
    funcs: BTreeMap<String, FuncState>,
    journal: Vec<RemedyEvent>,
}

impl Director {
    /// A director with `config`.
    pub fn new(config: DirectorConfig) -> Self {
        Director { config, funcs: BTreeMap::new(), journal: Vec::new() }
    }

    /// The current level for `func` (Observe if never touched).
    pub fn level_of(&self, func: &str) -> EscalationLevel {
        self.funcs.get(func).map(|s| s.level).unwrap_or(EscalationLevel::Observe)
    }

    /// The auditable escalation journal, in decision order.
    pub fn journal(&self) -> &[RemedyEvent] {
        &self.journal
    }

    /// Consumes one sealed window of fleet stats and returns the policy
    /// changes to apply. Functions are visited in sorted order and all
    /// arithmetic is integer, so the same window history always yields
    /// the same journal, byte for byte.
    pub fn observe_window(
        &mut self,
        window: u64,
        stats: &WindowStats,
    ) -> Vec<PolicyChange> {
        let mut changes = Vec::new();
        for (func, wf) in &stats.per_func {
            let rate = wf.crash_rate_x1000();
            let calls = wf.calls + wf.crashes;
            let state = self.funcs.entry(func.clone()).or_default();
            let ewma = state.ewma_x1000;
            let cfg = &self.config;

            // 1. Pending escalations reach their verdict first.
            let mut just_confirmed = false;
            if let Some(p) = state.pending.clone() {
                if window >= p.at_window + cfg.observe_windows {
                    let bar = p.base_rate_x1000 * cfg.improve_factor_x1000 / 1000;
                    if rate <= bar {
                        state.pending = None;
                        just_confirmed = true;
                        self.journal.push(RemedyEvent {
                            window,
                            func: func.clone(),
                            action: RemedyAction::Confirm,
                            from: state.level,
                            to: state.level,
                            rate_x1000: rate,
                            ewma_x1000: ewma,
                            detail: format!(
                                "rate {rate}\u{2030} <= bar {bar}\u{2030} (was {}\u{2030} before {})",
                                p.base_rate_x1000,
                                state.level.tag()
                            ),
                        });
                    } else {
                        let reverted = p.from;
                        let failed = state.level;
                        state.pending = None;
                        state.level = reverted;
                        state.breaker_until = Some(window + cfg.cooldown_windows);
                        self.journal.push(RemedyEvent {
                            window,
                            func: func.clone(),
                            action: RemedyAction::Rollback,
                            from: failed,
                            to: reverted,
                            rate_x1000: rate,
                            ewma_x1000: ewma,
                            detail: format!(
                                "rate {rate}\u{2030} > bar {bar}\u{2030}; {} did not help, breaker open until window {}",
                                failed.tag(),
                                window + cfg.cooldown_windows
                            ),
                        });
                        changes.push(PolicyChange { func: func.clone(), level: reverted });
                    }
                }
            }

            // 2. Anomaly detection on this window's rate. The
            // EWMA-relative test is waived when there is no baseline
            // yet, when the rate clears the hard ceiling, and right
            // after a Confirm whose residual rate is still above
            // threshold (the level helped but did not finish the job —
            // keep climbing).
            let state = self.funcs.get_mut(func).expect("state inserted above");
            let baseline_ok = !state.seeded
                || just_confirmed
                || rate >= cfg.hard_rate_x1000
                || rate.saturating_mul(1000) >= ewma.saturating_mul(cfg.ewma_factor_x1000);
            let anomaly =
                calls >= cfg.min_calls && rate >= cfg.rate_threshold_x1000 && baseline_ok;
            let breaker_open = state.breaker_until.is_some_and(|until| window < until);

            if anomaly {
                state.quiet = 0;
                if breaker_open {
                    self.journal.push(RemedyEvent {
                        window,
                        func: func.clone(),
                        action: RemedyAction::Suppress,
                        from: state.level,
                        to: state.level,
                        rate_x1000: rate,
                        ewma_x1000: ewma,
                        detail: format!(
                            "anomaly at {rate}\u{2030} suppressed, breaker open until window {}",
                            state.breaker_until.unwrap_or(0)
                        ),
                    });
                } else if state.pending.is_none() {
                    if let Some(next) = state.level.next() {
                        let from = state.level;
                        state.level = next;
                        state.pending = Some(Pending {
                            from,
                            at_window: window,
                            base_rate_x1000: rate,
                        });
                        self.journal.push(RemedyEvent {
                            window,
                            func: func.clone(),
                            action: RemedyAction::Escalate,
                            from,
                            to: next,
                            rate_x1000: rate,
                            ewma_x1000: ewma,
                            detail: format!(
                                "rate {rate}\u{2030} >= threshold {}\u{2030}; verdict at window {}",
                                cfg.rate_threshold_x1000,
                                window + cfg.observe_windows
                            ),
                        });
                        changes.push(PolicyChange { func: func.clone(), level: next });
                    }
                }
            } else if calls >= cfg.min_calls {
                // 3. Hysteresis: only *consecutive* quiet windows (rate
                // under half the threshold) walk the ladder down.
                if rate < cfg.rate_threshold_x1000 / 2 {
                    state.quiet += 1;
                    if state.quiet >= cfg.deescalate_quiet_windows
                        && state.pending.is_none()
                    {
                        if let Some(prev) = state.level.prev() {
                            let from = state.level;
                            state.level = prev;
                            state.quiet = 0;
                            self.journal.push(RemedyEvent {
                                window,
                                func: func.clone(),
                                action: RemedyAction::Deescalate,
                                from,
                                to: prev,
                                rate_x1000: rate,
                                ewma_x1000: ewma,
                                detail: format!(
                                    "{} quiet windows at <{}\u{2030}",
                                    cfg.deescalate_quiet_windows,
                                    cfg.rate_threshold_x1000 / 2
                                ),
                            });
                            changes.push(PolicyChange { func: func.clone(), level: prev });
                        }
                    }
                } else {
                    state.quiet = 0;
                }
            }

            // 4. EWMA baseline update, after decisions.
            let state = self.funcs.get_mut(func).expect("state inserted above");
            if calls >= cfg.min_calls {
                if state.seeded {
                    state.ewma_x1000 = (cfg.ewma_alpha_x1000 * rate
                        + (1000 - cfg.ewma_alpha_x1000) * state.ewma_x1000)
                        / 1000;
                } else {
                    state.ewma_x1000 = rate;
                    state.seeded = true;
                }
            }
        }
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::WindowFunc;

    fn window(entries: &[(&str, u64, u64)]) -> WindowStats {
        let mut w = WindowStats::default();
        for (name, calls, crashes) in entries {
            w.per_func.insert(
                (*name).to_string(),
                WindowFunc { calls: *calls, errors: 0, crashes: *crashes },
            );
            w.docs += 1;
        }
        w
    }

    fn director() -> Director {
        Director::new(DirectorConfig::default())
    }

    #[test]
    fn ladder_places_oblivious_between_heal_and_terminate() {
        assert_eq!(EscalationLevel::Heal.next(), Some(EscalationLevel::Oblivious));
        assert_eq!(EscalationLevel::Oblivious.next(), Some(EscalationLevel::Terminate));
        assert_eq!(EscalationLevel::Oblivious.prev(), Some(EscalationLevel::Heal));
        assert_eq!(EscalationLevel::Terminate.prev(), Some(EscalationLevel::Oblivious));
        assert!(EscalationLevel::Heal < EscalationLevel::Oblivious);
        assert!(EscalationLevel::Oblivious < EscalationLevel::Terminate);
        assert_eq!(EscalationLevel::Oblivious.tag(), "oblivious");
    }

    #[test]
    fn quiet_fleet_never_escalates() {
        let mut d = director();
        for w in 0..10 {
            let changes = d.observe_window(w, &window(&[("strcpy", 100, 1)]));
            assert!(changes.is_empty(), "window {w}: {changes:?}");
        }
        assert!(d.journal().is_empty());
        assert_eq!(d.level_of("strcpy"), EscalationLevel::Observe);
    }

    #[test]
    fn crash_burst_escalates_and_confirms_up_the_ladder() {
        let mut d = director();
        // w0: quiet. w1: burst -> Escalate to Contain.
        assert!(d.observe_window(0, &window(&[("strcpy", 100, 0)])).is_empty());
        let c = d.observe_window(1, &window(&[("strcpy", 60, 40)]));
        assert_eq!(
            c,
            vec![PolicyChange { func: "strcpy".into(), level: EscalationLevel::Contain }]
        );
        // w2: still bad (containment stops the crash but the rate needs
        // its verdict window). w3: verdict — improved to zero, Confirm;
        // then the *still-high* EWMA does not block later anomalies.
        assert!(d.observe_window(2, &window(&[("strcpy", 100, 10)])).is_empty());
        let c = d.observe_window(3, &window(&[("strcpy", 100, 0)]));
        assert!(c.is_empty(), "{c:?}");
        let tags: Vec<_> = d.journal().iter().map(|e| e.action.tag()).collect();
        assert_eq!(tags, vec!["escalate", "confirm"]);
        assert_eq!(d.level_of("strcpy"), EscalationLevel::Contain);
        // w4: a fresh burst escalates Contain -> Heal.
        let c = d.observe_window(4, &window(&[("strcpy", 50, 50)]));
        assert_eq!(
            c,
            vec![PolicyChange { func: "strcpy".into(), level: EscalationLevel::Heal }]
        );
    }

    #[test]
    fn failed_escalation_rolls_back_and_breaker_suppresses() {
        let mut d = director();
        let burst = window(&[("memcpy", 50, 50)]);
        let c = d.observe_window(0, &burst);
        assert_eq!(c.len(), 1, "escalate on first burst");
        // Burst continues unabated through the verdict window.
        assert!(d.observe_window(1, &burst).is_empty());
        let c = d.observe_window(2, &burst);
        // Verdict: no improvement -> rollback to Observe...
        assert_eq!(
            c,
            vec![PolicyChange { func: "memcpy".into(), level: EscalationLevel::Observe }]
        );
        assert_eq!(d.level_of("memcpy"), EscalationLevel::Observe);
        // ...and the breaker swallows the ongoing anomaly: no changes,
        // Suppress entries in the journal instead.
        for w in 3..6 {
            let c = d.observe_window(w, &burst);
            assert!(c.is_empty(), "window {w}: breaker must suppress, got {c:?}");
        }
        let tags: Vec<_> = d.journal().iter().map(|e| e.action.tag()).collect();
        assert_eq!(
            tags,
            vec!["escalate", "rollback", "suppress", "suppress", "suppress", "suppress"]
        );
        // Breaker expires at window 2+4=6: the anomaly escalates again.
        let c = d.observe_window(6, &burst);
        assert_eq!(c.len(), 1, "breaker expired, escalation allowed: {c:?}");
    }

    #[test]
    fn sustained_quiet_deescalates_with_hysteresis() {
        let mut d = director();
        let c = d.observe_window(0, &window(&[("strcpy", 40, 60)]));
        assert_eq!(c.len(), 1);
        // Quiet from w1 on; verdict (Confirm) lands at w2; hysteresis
        // needs 6 *consecutive* quiet windows.
        let quiet = window(&[("strcpy", 100, 0)]);
        let mut deescalated_at = None;
        for w in 1..12 {
            let c = d.observe_window(w, &quiet);
            if let Some(change) = c.first() {
                assert_eq!(change.level, EscalationLevel::Observe);
                deescalated_at = Some(w);
                break;
            }
        }
        assert_eq!(deescalated_at, Some(6), "6 quiet windows starting at w1");
        assert_eq!(d.level_of("strcpy"), EscalationLevel::Observe);
    }

    #[test]
    fn chronic_baseline_does_not_retrigger() {
        let mut d = director();
        let chronic = window(&[("gets", 90, 10)]);
        // ~100‰ every window: the first window escalates (no baseline
        // yet), then the EWMA absorbs the rate; with the verdict
        // rolled back and the breaker expired, the *unchanged* chronic
        // rate no longer clears the EWMA-relative bar.
        let mut escalations = 0;
        for w in 0..20 {
            for ch in d.observe_window(w, &chronic) {
                if ch.level > EscalationLevel::Observe {
                    escalations += 1;
                }
            }
        }
        assert_eq!(escalations, 1, "journal: {:?}", d.journal());
    }

    #[test]
    fn journal_is_deterministic() {
        let run = || {
            let mut d = director();
            d.observe_window(0, &window(&[("a", 100, 0), ("b", 50, 50)]));
            d.observe_window(1, &window(&[("a", 30, 70), ("b", 50, 50)]));
            d.observe_window(2, &window(&[("a", 100, 0), ("b", 50, 50)]));
            d.observe_window(3, &window(&[("a", 100, 0), ("b", 100, 0)]));
            d.journal().to_vec()
        };
        assert_eq!(run(), run());
    }
}
