//! A bounded flight recorder: a fixed-size ring of the last N wrapped
//! calls (function, truncated arguments, verdict, cycles). Cheap enough
//! to leave on, and dumped into the fault report / profile document the
//! moment a `Fault`, `Deny` or heal fires — so every detected violation
//! ships with its immediate call history, in the spirit of an aircraft
//! flight data recorder.

use std::collections::VecDeque;

use parking_lot::Mutex;

/// Longest argument string kept per record; longer strings are
/// truncated with a `...` suffix so a pathological argument can never
/// bloat the ring.
pub const MAX_ARGS_LEN: usize = 64;

/// One recorded call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Wrapped function name.
    pub func: String,
    /// Rendered argument list, truncated to [`MAX_ARGS_LEN`].
    pub args: String,
    /// Outcome: `"ok"`, or the fault / deny / heal verdict.
    pub verdict: String,
    /// Cycles spent in the call (entry to exit, hooks included).
    pub cycles: u64,
}

/// Fixed-capacity ring buffer of the most recent calls through a
/// wrapper. Shared by all of a library's wrapped functions through an
/// `Arc`; a capacity of zero disables recording entirely.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    ring: Mutex<VecDeque<FlightRecord>>,
}

impl FlightRecorder {
    /// Creates a recorder keeping the last `cap` calls.
    pub fn new(cap: usize) -> Self {
        FlightRecorder { cap, ring: Mutex::new(VecDeque::with_capacity(cap.min(1024))) }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Records one call, evicting the oldest entry when full. `args` is
    /// truncated to [`MAX_ARGS_LEN`] characters.
    pub fn record(&self, func: &str, args: &str, verdict: &str, cycles: u64) {
        if self.cap == 0 {
            return;
        }
        let args = if args.chars().count() > MAX_ARGS_LEN {
            let mut s: String = args.chars().take(MAX_ARGS_LEN).collect();
            s.push_str("...");
            s
        } else {
            args.to_string()
        };
        let mut ring = self.ring.lock();
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(FlightRecord {
            func: func.to_string(),
            args,
            verdict: verdict.to_string(),
            cycles,
        });
    }

    /// The recorded tail, oldest first.
    pub fn tail(&self) -> Vec<FlightRecord> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().is_empty()
    }

    /// Drops every record (capacity is kept).
    pub fn clear(&self) {
        self.ring.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_only_the_last_n_calls() {
        let rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.record("f", &format!("({i})"), "ok", i);
        }
        let tail = rec.tail();
        assert_eq!(tail.len(), 3);
        assert_eq!(tail[0].args, "(2)");
        assert_eq!(tail[2].args, "(4)");
        assert_eq!(rec.capacity(), 3);
    }

    #[test]
    fn truncates_long_args() {
        let rec = FlightRecorder::new(1);
        let long = "x".repeat(200);
        rec.record("f", &long, "ok", 1);
        let tail = rec.tail();
        assert_eq!(tail[0].args.chars().count(), MAX_ARGS_LEN + 3);
        assert!(tail[0].args.ends_with("..."));
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let rec = FlightRecorder::new(0);
        rec.record("f", "()", "ok", 1);
        assert!(rec.is_empty());
        assert_eq!(rec.len(), 0);
    }

    #[test]
    fn clear_empties_the_ring() {
        let rec = FlightRecorder::new(4);
        rec.record("f", "()", "ok", 1);
        assert!(!rec.is_empty());
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.capacity(), 4);
    }
}
