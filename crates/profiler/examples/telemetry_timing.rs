//! Telemetry hot-path benchmark: sharded `Stats` vs the single-mutex
//! `MutexStats` baseline it replaced.
//!
//! Two scenarios:
//!
//! * **Single-threaded** — the cost a wrapper pays per recorded call
//!   when there is no contention at all. The sharded design must not
//!   regress this path.
//! * **Contended** — 8 threads hammering the same telemetry object.
//!   This is where the per-thread shards pay off: each thread locks
//!   its own cache-line-aligned shard instead of serializing on one
//!   global mutex.
//!
//! Run with `--json` to emit a machine-readable summary (all values
//! integers, suitable for `BENCH_telemetry.json` and the CI
//! perf-smoke gate). `speedup_x100` is the contended sharded/mutex
//! throughput ratio times 100, so `200` means "2x faster".

use std::sync::Arc;
use std::time::Instant;

use profiler::{MutexStats, Stats};

const ST_RECORDS: u64 = 1_000_000;
const MT_THREADS: usize = 8;
const MT_RECORDS_PER_THREAD: u64 = 200_000;

const FUNCS: [&str; 4] = ["strlen", "strcpy", "malloc", "memset"];

/// One representative telemetry record: a counted call with cycles,
/// an occasional errno, and a latency sample — the mix a profiling
/// wrapper with histograms enabled produces per intercepted call.
macro_rules! record_one {
    ($stats:expr, $i:expr) => {{
        let func = FUNCS[($i % 4) as usize];
        let errno = if $i % 64 == 0 { Some(34) } else { None };
        $stats.record_call(func, 120 + ($i % 32), errno);
        $stats.record_latency(func, "call", 120 + ($i % 32));
    }};
}

fn bench_single<S>(stats: &S) -> u64
where
    S: Recorder,
{
    let t0 = Instant::now();
    for i in 0..ST_RECORDS {
        stats.record(i);
    }
    let elapsed = t0.elapsed();
    elapsed.as_nanos() as u64 / ST_RECORDS
}

fn bench_contended<S>(stats: &Arc<S>) -> u64
where
    S: Recorder + Send + Sync + 'static,
{
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..MT_THREADS {
            let stats = Arc::clone(stats);
            scope.spawn(move || {
                for i in 0..MT_RECORDS_PER_THREAD {
                    stats.record(t as u64 * MT_RECORDS_PER_THREAD + i);
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let total = (MT_THREADS as u64 * MT_RECORDS_PER_THREAD) as f64;
    // Thousands of records per second across all threads.
    (total / elapsed / 1_000.0) as u64
}

trait Recorder {
    fn record(&self, i: u64);
    fn total_calls(&self) -> u64;
}

impl Recorder for Stats {
    fn record(&self, i: u64) {
        record_one!(self, i);
    }
    fn total_calls(&self) -> u64 {
        self.snapshot().total_calls()
    }
}

impl Recorder for MutexStats {
    fn record(&self, i: u64) {
        record_one!(self, i);
    }
    fn total_calls(&self) -> u64 {
        self.snapshot().total_calls()
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    // Contended throughput only diverges when threads actually run in
    // parallel; record the host's parallelism so consumers (and the CI
    // gate) can interpret `speedup_x100` honestly. On a 1-core host all
    // 8 threads serialize and the ratio sits near 100 regardless of
    // locking strategy.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Warm up allocator and branch predictors on a throwaway pass.
    let warm = Stats::default();
    for i in 0..50_000 {
        warm.record(i);
    }

    let sharded = Stats::default();
    let st_sharded_ns = bench_single(&sharded);
    let mutexed = MutexStats::default();
    let st_mutex_ns = bench_single(&mutexed);
    assert_eq!(sharded.total_calls(), ST_RECORDS);
    assert_eq!(mutexed.total_calls(), ST_RECORDS);

    let sharded = Arc::new(Stats::default());
    let mt_sharded_krec_per_s = bench_contended(&sharded);
    let mutexed = Arc::new(MutexStats::default());
    let mt_mutex_krec_per_s = bench_contended(&mutexed);
    let expected = MT_THREADS as u64 * MT_RECORDS_PER_THREAD;
    assert_eq!(sharded.total_calls(), expected, "sharded merge lost records");
    assert_eq!(mutexed.total_calls(), expected, "mutex baseline lost records");

    let speedup_x100 = mt_sharded_krec_per_s * 100 / mt_mutex_krec_per_s.max(1);

    if json {
        println!("{{");
        println!("  \"st_sharded_ns_per_rec\": {st_sharded_ns},");
        println!("  \"st_mutex_ns_per_rec\": {st_mutex_ns},");
        println!("  \"cores\": {cores},");
        println!("  \"mt_threads\": {MT_THREADS},");
        println!("  \"mt_sharded_krec_per_s\": {mt_sharded_krec_per_s},");
        println!("  \"mt_mutex_krec_per_s\": {mt_mutex_krec_per_s},");
        println!("  \"speedup_x100\": {speedup_x100}");
        println!("}}");
    } else {
        println!("single-threaded (per record):");
        println!("  sharded Stats  {st_sharded_ns:>6} ns");
        println!("  MutexStats     {st_mutex_ns:>6} ns");
        println!(
            "contended ({MT_THREADS} threads on {cores} core(s), {MT_RECORDS_PER_THREAD} records each):"
        );
        println!("  sharded Stats  {mt_sharded_krec_per_s:>8} krec/s");
        println!("  MutexStats     {mt_mutex_krec_per_s:>8} krec/s");
        println!("  speedup        {:>7}.{:02}x", speedup_x100 / 100, speedup_x100 % 100);
    }
}
