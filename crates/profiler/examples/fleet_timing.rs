//! Fleet ingest throughput benchmark: documents per second through the
//! sharded collection service at 1, 4 and 16 shards, submitted by 8
//! concurrent threads with back-pressure resolved in place
//! (`submit_until_accepted` under the default Retry policy).
//!
//! Each run asserts exact accounting — every submission acked, every
//! ack merged — so the numbers measure the *correct* path, not a lossy
//! one. Run with `--json` for a machine-readable summary (all values
//! integers, suitable for `BENCH_fleet.json` and the CI perf-smoke
//! gate).

use std::time::Instant;

use profiler::{FleetConfig, FleetMeta, FleetService, Stats};

const THREADS: u64 = 8;
const DOCS_PER_THREAD: u64 = 4_000;

fn sample_doc(instance: u64) -> String {
    let stats = Stats::new();
    stats.record_call("strcpy", 40 + instance % 16, None);
    stats.record_call("strlen", 10, None);
    stats.record_call("memcpy", 25, Some(simproc::errno::EINVAL));
    let meta = FleetMeta {
        instance,
        window: instance % 8,
        crashed_in: if instance.is_multiple_of(50) { Some("strcpy".into()) } else { None },
        fault: if instance.is_multiple_of(50) { Some("segv".into()) } else { None },
    };
    profiler::to_xml_for_fleet("bench-app", "healing", &meta, &stats.snapshot(), None)
}

/// Thousands of documents per second ingested (submitted, parsed and
/// merged) at the given shard count.
fn bench(shards: usize, docs: &[String]) -> u64 {
    let service = FleetService::start(FleetConfig {
        shards,
        queue_capacity: 256,
        ..FleetConfig::default()
    });
    let total = THREADS * DOCS_PER_THREAD;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let c = service.collector();
            let docs = &docs;
            scope.spawn(move || {
                for i in 0..DOCS_PER_THREAD {
                    let doc =
                        &docs[((t * DOCS_PER_THREAD + i) % docs.len() as u64) as usize];
                    assert!(c.submit_until_accepted(doc), "service refused a document");
                }
            });
        }
    });
    let out = service.shutdown();
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(out.accounting.accepted(), total, "every submission acked");
    assert_eq!(out.rollup.docs, total, "every ack merged");
    assert!(out.accounting.balanced(), "{:?}", out.accounting);
    (total as f64 / elapsed / 1_000.0) as u64
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let docs: Vec<String> = (0..256).map(sample_doc).collect();

    // Warm-up pass: allocator, parser and branch predictors.
    let _ = bench(2, &docs);

    let shards1_kdocs_per_s = bench(1, &docs);
    let shards4_kdocs_per_s = bench(4, &docs);
    let shards16_kdocs_per_s = bench(16, &docs);
    let docs_total = THREADS * DOCS_PER_THREAD;
    // 4-shard vs 1-shard win, x100 (integer). Only meaningful with real
    // parallelism: on a 1-core box both configurations serialize and
    // this sits near 100 — `cores` records the provenance so gates can
    // skip the comparison there.
    let speedup_x100 =
        (shards4_kdocs_per_s * 100).checked_div(shards1_kdocs_per_s).unwrap_or(0);

    if json {
        println!("{{");
        println!("  \"docs\": {docs_total},");
        println!("  \"cores\": {cores},");
        println!("  \"threads\": {THREADS},");
        println!("  \"shards1_kdocs_per_s\": {shards1_kdocs_per_s},");
        println!("  \"shards4_kdocs_per_s\": {shards4_kdocs_per_s},");
        println!("  \"shards16_kdocs_per_s\": {shards16_kdocs_per_s},");
        println!("  \"speedup_x100\": {speedup_x100}");
        println!("}}");
    } else {
        println!(
            "fleet ingest ({docs_total} docs, {THREADS} submitter threads, {cores} core(s)):"
        );
        println!("   1 shard   {shards1_kdocs_per_s:>7} kdocs/s");
        println!("   4 shards  {shards4_kdocs_per_s:>7} kdocs/s");
        println!("  16 shards  {shards16_kdocs_per_s:>7} kdocs/s");
        println!("  4-shard/1-shard speedup: {speedup_x100}x100");
    }
}
