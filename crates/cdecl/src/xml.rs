//! The XML-style declaration files of the paper's §3.1 demo ("our system
//! will create a XML-style declaration file that describes the prototype
//! of each function in the library"), plus the small writer the profiling
//! wrapper reuses for its self-describing documents.

use std::fmt;

use crate::ctype::{CType, Param, Prototype};
use crate::parser::{parse_type, ParseError, TypedefTable};

/// A minimal, escaping XML writer.
///
/// ```
/// use cdecl::xml::XmlWriter;
/// let mut w = XmlWriter::new();
/// w.open("library", &[("name", "libc")]);
/// w.leaf("function", &[("name", "strcpy")]);
/// w.close();
/// let doc = w.finish();
/// assert!(doc.contains("<library name=\"libc\">"));
/// ```
#[derive(Debug, Default)]
pub struct XmlWriter {
    buf: String,
    stack: Vec<String>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            other => out.push(other),
        }
    }
    out
}

impl XmlWriter {
    /// A writer with the standard XML declaration already emitted.
    pub fn new() -> Self {
        let mut w = XmlWriter { buf: String::new(), stack: Vec::new() };
        w.buf.push_str("<?xml version=\"1.0\"?>\n");
        w
    }

    fn indent(&mut self) {
        for _ in 0..self.stack.len() {
            self.buf.push_str("  ");
        }
    }

    fn write_attrs(&mut self, attrs: &[(&str, &str)]) {
        for (k, v) in attrs {
            self.buf.push(' ');
            self.buf.push_str(k);
            self.buf.push_str("=\"");
            self.buf.push_str(&escape(v));
            self.buf.push('"');
        }
    }

    /// Opens an element.
    pub fn open(&mut self, tag: &str, attrs: &[(&str, &str)]) {
        self.indent();
        self.buf.push('<');
        self.buf.push_str(tag);
        self.write_attrs(attrs);
        self.buf.push_str(">\n");
        self.stack.push(tag.to_string());
    }

    /// Writes a self-closing element.
    pub fn leaf(&mut self, tag: &str, attrs: &[(&str, &str)]) {
        self.indent();
        self.buf.push('<');
        self.buf.push_str(tag);
        self.write_attrs(attrs);
        self.buf.push_str("/>\n");
    }

    /// Writes an element with text content.
    pub fn text_element(&mut self, tag: &str, attrs: &[(&str, &str)], text: &str) {
        self.indent();
        self.buf.push('<');
        self.buf.push_str(tag);
        self.write_attrs(attrs);
        self.buf.push('>');
        self.buf.push_str(&escape(text));
        self.buf.push_str("</");
        self.buf.push_str(tag);
        self.buf.push_str(">\n");
    }

    /// Closes the most recently opened element.
    ///
    /// # Panics
    ///
    /// Panics if no element is open.
    pub fn close(&mut self) {
        let tag = self.stack.pop().expect("close without open");
        self.indent();
        self.buf.push_str("</");
        self.buf.push_str(&tag);
        self.buf.push_str(">\n");
    }

    /// Finishes the document.
    ///
    /// # Panics
    ///
    /// Panics if elements remain open.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed elements: {:?}", self.stack);
        self.buf
    }
}

/// Serialises a library's prototypes into a declaration file.
pub fn write_declaration_file(library: &str, protos: &[Prototype]) -> String {
    let mut w = XmlWriter::new();
    w.open("library", &[("name", library)]);
    for p in protos {
        w.open("function", &[("name", &p.name)]);
        w.leaf("return", &[("type", &p.ret.to_string())]);
        for (i, param) in p.params.iter().enumerate() {
            let ty = param.ty.to_string();
            let name = param.display_name(i);
            w.leaf("param", &[("name", &name), ("type", &ty)]);
        }
        if p.variadic {
            w.leaf("varargs", &[]);
        }
        w.close();
    }
    w.close();
    w.finish()
}

/// An error reading a declaration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "declaration file error: {}", self.message)
    }
}

impl std::error::Error for XmlError {}

impl From<ParseError> for XmlError {
    fn from(e: ParseError) -> Self {
        XmlError { message: e.to_string() }
    }
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&amp;", "&")
}

/// One parsed tag: name + attributes + whether it was a close tag.
#[derive(Debug)]
struct Tag {
    name: String,
    attrs: Vec<(String, String)>,
    closing: bool,
}

fn tags(doc: &str) -> Result<Vec<Tag>, XmlError> {
    let mut out = Vec::new();
    let mut rest = doc;
    while let Some(start) = rest.find('<') {
        let end = rest[start..]
            .find('>')
            .ok_or_else(|| XmlError { message: "unterminated tag".into() })?
            + start;
        let inner = &rest[start + 1..end];
        rest = &rest[end + 1..];
        if inner.starts_with('?') || inner.starts_with('!') {
            continue;
        }
        let closing = inner.starts_with('/');
        let body = inner.trim_start_matches('/').trim_end_matches('/').trim();
        let mut parts = body.splitn(2, char::is_whitespace);
        let name = parts.next().unwrap_or_default().to_string();
        let mut attrs = Vec::new();
        if let Some(attr_text) = parts.next() {
            let mut s = attr_text.trim();
            while !s.is_empty() {
                let eq = match s.find('=') {
                    Some(i) => i,
                    None => break,
                };
                let key = s[..eq].trim().to_string();
                let after = s[eq + 1..].trim_start();
                if !after.starts_with('"') {
                    return Err(XmlError {
                        message: format!("unquoted attribute `{key}`"),
                    });
                }
                let close_quote = after[1..].find('"').ok_or_else(|| XmlError {
                    message: format!("unterminated attribute `{key}`"),
                })?;
                let value = unescape(&after[1..1 + close_quote]);
                attrs.push((key, value));
                s = after[close_quote + 2..].trim_start();
            }
        }
        out.push(Tag { name, attrs, closing });
    }
    Ok(out)
}

fn attr<'a>(tag: &'a Tag, key: &str) -> Option<&'a str> {
    tag.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

/// Parses a declaration file produced by [`write_declaration_file`].
///
/// Types that fail to parse against `typedefs` degrade to
/// [`CType::Named`] with the raw text, so a file is never rejected merely
/// because a struct type's definition isn't available.
///
/// # Errors
///
/// [`XmlError`] on malformed XML or missing required attributes.
pub fn parse_declaration_file(
    doc: &str,
    typedefs: &TypedefTable,
) -> Result<(String, Vec<Prototype>), XmlError> {
    let mut library = String::new();
    let mut protos: Vec<Prototype> = Vec::new();
    let mut current: Option<Prototype> = None;
    let parse_or_named = |text: &str| -> CType {
        parse_type(text, typedefs).unwrap_or_else(|_| CType::Named(text.to_string()))
    };

    for tag in tags(doc)? {
        match (tag.name.as_str(), tag.closing) {
            ("library", false) => {
                library = attr(&tag, "name")
                    .ok_or_else(|| XmlError { message: "library without name".into() })?
                    .to_string();
            }
            ("function", false) => {
                let name = attr(&tag, "name")
                    .ok_or_else(|| XmlError { message: "function without name".into() })?;
                current = Some(Prototype::new(name, CType::Void, vec![]));
            }
            ("function", true) => {
                protos.push(
                    current
                        .take()
                        .ok_or_else(|| XmlError { message: "stray </function>".into() })?,
                );
            }
            ("return", false) => {
                let ty = attr(&tag, "type")
                    .ok_or_else(|| XmlError { message: "return without type".into() })?;
                if let Some(p) = current.as_mut() {
                    p.ret = parse_or_named(ty);
                }
            }
            ("param", false) => {
                let ty = attr(&tag, "type")
                    .ok_or_else(|| XmlError { message: "param without type".into() })?;
                let name = attr(&tag, "name").map(str::to_string);
                if let Some(p) = current.as_mut() {
                    p.params.push(Param { name, ty: parse_or_named(ty) });
                }
            }
            ("varargs", false) => {
                if let Some(p) = current.as_mut() {
                    p.variadic = true;
                }
            }
            _ => {}
        }
    }
    Ok((library, protos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_prototype;

    fn protos() -> Vec<Prototype> {
        let t = TypedefTable::with_builtins();
        vec![
            parse_prototype("char *strcpy(char *dest, const char *src);", &t).unwrap(),
            parse_prototype("size_t strlen(const char *s);", &t).unwrap(),
            parse_prototype("int snprintf(char *str, size_t size, const char *fmt, ...);", &t)
                .unwrap(),
            parse_prototype(
                "void qsort(void *base, size_t nmemb, size_t size, int (*compar)(const void *, const void *));",
                &t,
            )
            .unwrap(),
        ]
    }

    #[test]
    fn declaration_file_roundtrip() {
        let original = protos();
        let doc = write_declaration_file("libsimc.so.1", &original);
        let t = TypedefTable::with_builtins();
        let (lib, parsed) = parse_declaration_file(&doc, &t).unwrap();
        assert_eq!(lib, "libsimc.so.1");
        assert_eq!(parsed.len(), original.len());
        for (a, b) in parsed.iter().zip(&original) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.ret, b.ret, "{}", a.name);
            assert_eq!(a.params.len(), b.params.len());
            assert_eq!(a.variadic, b.variadic);
            for (pa, pb) in a.params.iter().zip(&b.params) {
                assert_eq!(pa.ty, pb.ty, "{}", a.name);
            }
        }
    }

    #[test]
    fn writer_escapes_special_chars() {
        let mut w = XmlWriter::new();
        w.leaf("t", &[("v", "a<b&c\"d")]);
        let doc = w.finish();
        assert!(doc.contains("a&lt;b&amp;c&quot;d"), "{doc}");
    }

    #[test]
    fn unknown_types_degrade_to_named() {
        let doc = r#"<?xml version="1.0"?>
<library name="libx">
  <function name="mystery">
    <return type="struct opaque_thing*"/>
    <param name="a1" type="opaque_t"/>
  </function>
</library>
"#;
        let t = TypedefTable::with_builtins();
        let (_, parsed) = parse_declaration_file(doc, &t).unwrap();
        assert_eq!(parsed[0].params[0].ty, CType::Named("opaque_t".into()));
    }

    #[test]
    fn malformed_xml_rejected() {
        let t = TypedefTable::with_builtins();
        assert!(parse_declaration_file("<library name=\"x\"", &t).is_err());
        assert!(parse_declaration_file("<library><function/></library>", &t).is_err());
    }

    #[test]
    fn text_element_writes_content() {
        let mut w = XmlWriter::new();
        w.open("doc", &[]);
        w.text_element("note", &[("k", "v")], "x < y");
        w.close();
        let doc = w.finish();
        assert!(doc.contains("<note k=\"v\">x &lt; y</note>"), "{doc}");
    }

    #[test]
    fn writer_is_indented() {
        let doc = write_declaration_file("l", &protos());
        assert!(doc.contains("\n  <function"), "{doc}");
        assert!(doc.contains("\n    <param"), "{doc}");
    }
}
