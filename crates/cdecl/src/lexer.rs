//! A small lexer for the C declaration subset HEALERS extracts from
//! headers and man pages.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Number(u64),
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `...`
    Ellipsis,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Star => write!(f, "*"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Ellipsis => write!(f, "..."),
        }
    }
}

/// A lexing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// The offending character.
    pub ch: char,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected character `{}` at byte {}", self.ch, self.offset)
    }
}

impl std::error::Error for LexError {}

/// Tokenises a declaration string. Comments (`/* */` and `//`) are
/// skipped.
///
/// # Errors
///
/// Returns [`LexError`] on any character outside the declaration subset.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment.
                let mut j = i + 2;
                while j + 1 < bytes.len() && !(bytes[j] == b'*' && bytes[j + 1] == b'/') {
                    j += 1;
                }
                i = (j + 2).min(bytes.len());
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '.' if bytes.get(i + 1) == Some(&b'.') && bytes.get(i + 2) == Some(&b'.') => {
                out.push(Token::Ellipsis);
                i += 3;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Token::Ident(src[start..i].to_string()));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_alphanumeric() {
                    i += 1;
                }
                let text = &src[start..i];
                let value = if let Some(hex) =
                    text.strip_prefix("0x").or_else(|| text.strip_prefix("0X"))
                {
                    u64::from_str_radix(hex, 16)
                } else {
                    text.trim_end_matches(['u', 'U', 'l', 'L']).parse()
                };
                match value {
                    Ok(n) => out.push(Token::Number(n)),
                    Err(_) => return Err(LexError { offset: start, ch: c }),
                }
            }
            other => return Err(LexError { offset: i, ch: other }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_simple_prototype() {
        let toks = lex("char *strcpy(char *dest, const char *src);").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("char".into()),
                Token::Star,
                Token::Ident("strcpy".into()),
                Token::LParen,
                Token::Ident("char".into()),
                Token::Star,
                Token::Ident("dest".into()),
                Token::Comma,
                Token::Ident("const".into()),
                Token::Ident("char".into()),
                Token::Star,
                Token::Ident("src".into()),
                Token::RParen,
                Token::Semi,
            ]
        );
    }

    #[test]
    fn lexes_numbers_and_arrays() {
        let toks = lex("int buf[16]").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("int".into()),
                Token::Ident("buf".into()),
                Token::LBracket,
                Token::Number(16),
                Token::RBracket,
            ]
        );
        assert_eq!(lex("0x10").unwrap(), vec![Token::Number(16)]);
        assert_eq!(lex("10UL").unwrap(), vec![Token::Number(10)]);
    }

    #[test]
    fn lexes_ellipsis() {
        let toks = lex("int printf(const char *fmt, ...);").unwrap();
        assert!(toks.contains(&Token::Ellipsis));
    }

    #[test]
    fn skips_comments() {
        let toks = lex("int /* width */ x; // trailing\nint y;").unwrap();
        let idents: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(idents, vec!["int", "x", "int", "y"]);
    }

    #[test]
    fn rejects_garbage() {
        let err = lex("int x @ y").unwrap_err();
        assert_eq!(err.ch, '@');
        assert!(err.to_string().contains('@'));
    }

    #[test]
    fn unterminated_block_comment_is_skipped_to_eof() {
        let toks = lex("int x /* never closed").unwrap();
        assert_eq!(toks.len(), 2);
    }
}
