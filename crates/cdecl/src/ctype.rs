//! The C type model extracted from headers and man pages.

use std::fmt;

/// Width of a C integer type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntWidth {
    /// `short`
    Short,
    /// `int`
    Int,
    /// `long`
    Long,
    /// `long long`
    LongLong,
}

impl IntWidth {
    /// Size in bytes on the simulated (LP64) machine.
    pub fn size(self) -> u64 {
        match self {
            IntWidth::Short => 2,
            IntWidth::Int => 4,
            IntWidth::Long | IntWidth::LongLong => 8,
        }
    }
}

/// A C type as it appears in library prototypes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CType {
    /// `void`
    Void,
    /// `char` / `unsigned char` / `signed char`
    Char {
        /// Whether the char is signed (plain `char` is signed here).
        signed: bool,
    },
    /// Integer types.
    Int {
        /// Signedness.
        signed: bool,
        /// Width class.
        width: IntWidth,
    },
    /// `float`
    Float,
    /// `double`
    Double,
    /// A pointer type.
    Ptr {
        /// The pointed-to type.
        pointee: Box<CType>,
        /// Whether the pointee is `const`-qualified (`const char *`).
        const_pointee: bool,
    },
    /// An array in a parameter list (decays to pointer) or declaration.
    Array {
        /// Element type.
        elem: Box<CType>,
        /// Declared length, if given.
        len: Option<u64>,
    },
    /// A function pointer, e.g. `int (*cmp)(const void*, const void*)`.
    FuncPtr {
        /// Return type.
        ret: Box<CType>,
        /// Parameter types.
        params: Vec<CType>,
    },
    /// A named struct/union/enum or unresolved typedef, e.g. `FILE`.
    Named(String),
}

impl CType {
    /// Plain `int`.
    pub const INT: CType = CType::Int { signed: true, width: IntWidth::Int };
    /// `unsigned long`, the usual `size_t` expansion.
    pub const ULONG: CType = CType::Int { signed: false, width: IntWidth::Long };
    /// `long`.
    pub const LONG: CType = CType::Int { signed: true, width: IntWidth::Long };

    /// A pointer to `self`.
    pub fn ptr_to(self) -> CType {
        CType::Ptr { pointee: Box::new(self), const_pointee: false }
    }

    /// A pointer to `const self`.
    pub fn const_ptr_to(self) -> CType {
        CType::Ptr { pointee: Box::new(self), const_pointee: true }
    }

    /// Whether this is any pointer type (including arrays, which decay,
    /// and function pointers).
    pub fn is_pointer(&self) -> bool {
        matches!(self, CType::Ptr { .. } | CType::Array { .. } | CType::FuncPtr { .. })
    }

    /// Whether this is a pointer whose pointee may be written through
    /// (`char *` yes, `const char *` no).
    pub fn is_writable_pointer(&self) -> bool {
        matches!(self, CType::Ptr { const_pointee: false, .. })
    }

    /// Whether this is a `char*`-family pointer (C string candidate).
    pub fn is_char_pointer(&self) -> bool {
        match self {
            CType::Ptr { pointee, .. } => matches!(**pointee, CType::Char { .. }),
            _ => false,
        }
    }

    /// Whether this is `void*`-family.
    pub fn is_void_pointer(&self) -> bool {
        match self {
            CType::Ptr { pointee, .. } => matches!(**pointee, CType::Void),
            _ => false,
        }
    }

    /// Whether this is an integer (including char) type.
    pub fn is_integral(&self) -> bool {
        matches!(self, CType::Char { .. } | CType::Int { .. })
    }

    /// Whether this is a floating type.
    pub fn is_floating(&self) -> bool {
        matches!(self, CType::Float | CType::Double)
    }

    /// Size in bytes on the simulated LP64 machine; `None` for `void` and
    /// incomplete named types.
    pub fn size(&self) -> Option<u64> {
        match self {
            CType::Void => None,
            CType::Char { .. } => Some(1),
            CType::Int { width, .. } => Some(width.size()),
            CType::Float => Some(4),
            CType::Double => Some(8),
            CType::Ptr { .. } | CType::FuncPtr { .. } => Some(8),
            CType::Array { elem, len } => {
                let l = (*len)?;
                Some(elem.size()? * l)
            }
            CType::Named(_) => None,
        }
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CType::Void => write!(f, "void"),
            CType::Char { signed: true } => write!(f, "char"),
            CType::Char { signed: false } => write!(f, "unsigned char"),
            CType::Int { signed, width } => {
                if !signed {
                    write!(f, "unsigned ")?;
                }
                match width {
                    IntWidth::Short => write!(f, "short"),
                    IntWidth::Int => write!(f, "int"),
                    IntWidth::Long => write!(f, "long"),
                    IntWidth::LongLong => write!(f, "long long"),
                }
            }
            CType::Float => write!(f, "float"),
            CType::Double => write!(f, "double"),
            CType::Ptr { pointee, const_pointee } => {
                // `const char*` reads naturally for scalar pointees; when
                // the pointee is itself a pointer the qualifier must sit
                // at its own level: `void* const*`, not `const void**`.
                if *const_pointee && pointee.is_pointer() {
                    write!(f, "{pointee} const*")
                } else {
                    if *const_pointee {
                        write!(f, "const ")?;
                    }
                    write!(f, "{pointee}*")
                }
            }
            CType::Array { elem, len } => match len {
                Some(n) => write!(f, "{elem}[{n}]"),
                None => write!(f, "{elem}[]"),
            },
            CType::FuncPtr { ret, params } => {
                write!(f, "{ret} (*)(")?;
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            CType::Named(n) => write!(f, "{n}"),
        }
    }
}

/// A named (or anonymous) function parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name if the declaration had one.
    pub name: Option<String>,
    /// Parameter type.
    pub ty: CType,
}

impl Param {
    /// A parameter with a name.
    pub fn named(name: impl Into<String>, ty: CType) -> Self {
        Param { name: Some(name.into()), ty }
    }

    /// An anonymous parameter.
    pub fn anon(ty: CType) -> Self {
        Param { name: None, ty }
    }

    /// The name to use in generated code: the declared name or `aN`
    /// (matching the paper's generated wrapper, which calls the argument
    /// of `wctrans` `a1`).
    pub fn display_name(&self, index: usize) -> String {
        match &self.name {
            Some(n) => n.clone(),
            None => format!("a{}", index + 1),
        }
    }
}

impl CType {
    /// Renders `self name` as a C declarator — function pointers put the
    /// name inside (`int (*cmp)(const void*, const void*)`), everything
    /// else is `type name`.
    pub fn declare(&self, name: &str) -> String {
        match self {
            CType::FuncPtr { ret, params } => {
                let ps = if params.is_empty() {
                    "void".to_string()
                } else {
                    params.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(", ")
                };
                format!("{ret} (*{name})({ps})")
            }
            CType::Array { elem, len } => match len {
                Some(n) => format!("{elem} {name}[{n}]"),
                None => format!("{elem} {name}[]"),
            },
            other => format!("{other} {name}"),
        }
    }
}

/// A function prototype.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prototype {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameters, in order. Empty for `f(void)`.
    pub params: Vec<Param>,
    /// Whether the prototype ends with `...`.
    pub variadic: bool,
}

impl Prototype {
    /// Builds a prototype.
    pub fn new(name: impl Into<String>, ret: CType, params: Vec<Param>) -> Self {
        Prototype { name: name.into(), ret, params, variadic: false }
    }

    /// Number of fixed parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }
}

impl fmt::Display for Prototype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}(", self.ret, self.name)?;
        if self.params.is_empty() && !self.variadic {
            write!(f, "void")?;
        }
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match &p.name {
                Some(n) => write!(f, "{}", p.ty.declare(n))?,
                None => write!(f, "{}", p.ty)?,
            }
        }
        if self.variadic {
            if !self.params.is_empty() {
                write!(f, ", ")?;
            }
            write!(f, "...")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_scalar_types() {
        assert_eq!(CType::INT.to_string(), "int");
        assert_eq!(CType::ULONG.to_string(), "unsigned long");
        assert_eq!(CType::Char { signed: true }.to_string(), "char");
        assert_eq!(CType::Void.to_string(), "void");
        assert_eq!(CType::Double.to_string(), "double");
        assert_eq!(
            CType::Int { signed: true, width: IntWidth::LongLong }.to_string(),
            "long long"
        );
    }

    #[test]
    fn display_pointers() {
        assert_eq!(CType::Char { signed: true }.const_ptr_to().to_string(), "const char*");
        assert_eq!(CType::Void.ptr_to().to_string(), "void*");
        assert_eq!(CType::Char { signed: true }.ptr_to().ptr_to().to_string(), "char**");
    }

    #[test]
    fn display_funcptr() {
        let cmp = CType::FuncPtr {
            ret: Box::new(CType::INT),
            params: vec![CType::Void.const_ptr_to(), CType::Void.const_ptr_to()],
        };
        assert_eq!(cmp.to_string(), "int (*)(const void*, const void*)");
    }

    #[test]
    fn classification() {
        let cp = CType::Char { signed: true }.const_ptr_to();
        assert!(cp.is_pointer());
        assert!(cp.is_char_pointer());
        assert!(!cp.is_writable_pointer());
        assert!(CType::Void.ptr_to().is_void_pointer());
        assert!(CType::INT.is_integral());
        assert!(CType::Double.is_floating());
        assert!(!CType::INT.is_pointer());
    }

    #[test]
    fn sizes() {
        assert_eq!(CType::INT.size(), Some(4));
        assert_eq!(CType::ULONG.size(), Some(8));
        assert_eq!(CType::Void.size(), None);
        assert_eq!(CType::Char { signed: true }.ptr_to().size(), Some(8));
        let arr = CType::Array { elem: Box::new(CType::INT), len: Some(4) };
        assert_eq!(arr.size(), Some(16));
        assert_eq!(CType::Named("FILE".into()).size(), None);
    }

    #[test]
    fn prototype_display_matches_c() {
        let p = Prototype::new(
            "strncpy",
            CType::Char { signed: true }.ptr_to(),
            vec![
                Param::named("dst", CType::Char { signed: true }.ptr_to()),
                Param::named("src", CType::Char { signed: true }.const_ptr_to()),
                Param::named("n", CType::ULONG),
            ],
        );
        assert_eq!(
            p.to_string(),
            "char* strncpy(char* dst, const char* src, unsigned long n)"
        );
        assert_eq!(p.arity(), 3);
    }

    #[test]
    fn prototype_void_params() {
        let p = Prototype::new("rand", CType::INT, vec![]);
        assert_eq!(p.to_string(), "int rand(void)");
    }

    #[test]
    fn variadic_display() {
        let mut p = Prototype::new(
            "printf",
            CType::INT,
            vec![Param::named("fmt", CType::Char { signed: true }.const_ptr_to())],
        );
        p.variadic = true;
        assert_eq!(p.to_string(), "int printf(const char* fmt, ...)");
    }

    #[test]
    fn param_display_names() {
        assert_eq!(Param::anon(CType::INT).display_name(0), "a1");
        assert_eq!(Param::named("n", CType::INT).display_name(3), "n");
    }
}
