//! Recursive-descent parser for the C declaration subset.
//!
//! HEALERS only needs prototypes of global functions, so the grammar here
//! covers declaration specifiers, pointer/array/function declarators
//! (including function-pointer parameters like `qsort`'s comparator) and
//! typedefs — not expressions, statements or struct bodies.

use std::collections::HashMap;
use std::fmt;

use crate::ctype::{CType, IntWidth, Param, Prototype};
use crate::lexer::{lex, LexError, Token};

/// A parse error with some context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError { message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::new(e.to_string())
    }
}

/// Registered typedef names and their expansions.
#[derive(Debug, Clone)]
pub struct TypedefTable {
    map: HashMap<String, CType>,
}

impl Default for TypedefTable {
    fn default() -> Self {
        TypedefTable::with_builtins()
    }
}

impl TypedefTable {
    /// An empty table.
    pub fn new() -> Self {
        TypedefTable { map: HashMap::new() }
    }

    /// A table pre-seeded with the POSIX typedefs the simulated C library
    /// uses.
    pub fn with_builtins() -> Self {
        let mut t = TypedefTable::new();
        t.define("size_t", CType::ULONG);
        t.define("ssize_t", CType::LONG);
        t.define("ptrdiff_t", CType::LONG);
        t.define("wchar_t", CType::INT);
        t.define("wint_t", CType::Int { signed: false, width: IntWidth::Int });
        t.define("wctrans_t", CType::LONG);
        t.define("wctype_t", CType::ULONG);
        t.define("time_t", CType::LONG);
        t.define("clock_t", CType::LONG);
        t.define("intptr_t", CType::LONG);
        t.define("uintptr_t", CType::ULONG);
        t.define("FILE", CType::Named("FILE".into()));
        t.define("div_t", CType::Named("div_t".into()));
        t.define("ldiv_t", CType::Named("ldiv_t".into()));
        t.define("va_list", CType::Named("va_list".into()));
        t
    }

    /// Defines (or redefines) a typedef.
    pub fn define(&mut self, name: impl Into<String>, ty: CType) {
        self.map.insert(name.into(), ty);
    }

    /// Looks up a typedef.
    pub fn resolve(&self, name: &str) -> Option<&CType> {
        self.map.get(name)
    }

    /// Whether `name` is a known typedef.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }
}

/// One parsed declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// A function prototype.
    Proto(Prototype),
    /// A typedef introducing `name` for a type.
    Typedef {
        /// The new name.
        name: String,
        /// Its expansion.
        ty: CType,
    },
    /// An object (variable) declaration, e.g. `extern int errno;`.
    Var {
        /// Variable name.
        name: String,
        /// Its type.
        ty: CType,
    },
}

const STORAGE_WORDS: &[&str] =
    &["extern", "static", "inline", "register", "auto", "__inline"];
const QUALIFIER_WORDS: &[&str] =
    &["const", "volatile", "restrict", "__restrict", "__const"];

/// Parses a single function prototype, e.g.
/// `"char *strcpy(char *dest, const char *src);"`.
///
/// # Errors
///
/// [`ParseError`] if the text is not a prototype in the supported subset.
///
/// ```
/// use cdecl::{parse_prototype, TypedefTable};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let t = TypedefTable::with_builtins();
/// let p = parse_prototype("size_t strlen(const char *s);", &t)?;
/// assert_eq!(p.name, "strlen");
/// assert_eq!(p.arity(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_prototype(
    src: &str,
    typedefs: &TypedefTable,
) -> Result<Prototype, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { toks: &tokens, pos: 0, typedefs };
    let decl = p.parse_declaration()?;
    p.eat_if(&Token::Semi);
    p.expect_end()?;
    match decl {
        Decl::Proto(proto) => Ok(proto),
        other => {
            Err(ParseError::new(format!("expected a function prototype, got {other:?}")))
        }
    }
}

/// Parses a standalone type (with optional abstract declarator), e.g.
/// `"const char*"` or `"int (*)(const void*, const void*)"`.
///
/// # Errors
///
/// [`ParseError`] if the text is not a type in the supported subset.
pub fn parse_type(src: &str, typedefs: &TypedefTable) -> Result<CType, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { toks: &tokens, pos: 0, typedefs };
    let (base, _, base_const) = p.parse_specifiers()?;
    let node = p.parse_declarator()?;
    p.expect_end()?;
    let (name, built) = apply(node, base, base_const)?;
    if name.is_some() {
        return Err(ParseError::new("expected an abstract type, found a declarator name"));
    }
    match built {
        Built::Ty(t) => Ok(t),
        Built::Func { ret, params, .. } => Ok(CType::FuncPtr {
            ret: Box::new(ret),
            params: params.into_iter().map(|p| p.ty).collect(),
        }),
    }
}

/// Parses a sequence of declarations separated by `;`, updating the
/// typedef table as `typedef`s are encountered.
///
/// # Errors
///
/// [`ParseError`] on the first declaration outside the subset.
pub fn parse_declarations(
    src: &str,
    typedefs: &mut TypedefTable,
) -> Result<Vec<Decl>, ParseError> {
    let tokens = lex(src)?;
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        // Consume stray semicolons.
        if tokens[pos] == Token::Semi {
            pos += 1;
            continue;
        }
        let mut p = Parser { toks: &tokens, pos, typedefs };
        let decl = p.parse_declaration()?;
        pos = p.pos;
        if pos < tokens.len() {
            if tokens[pos] != Token::Semi {
                return Err(ParseError::new(format!(
                    "expected `;` after declaration, found `{}`",
                    tokens[pos]
                )));
            }
            pos += 1;
        }
        if let Decl::Typedef { name, ty } = &decl {
            typedefs.define(name.clone(), ty.clone());
        }
        out.push(decl);
    }
    Ok(out)
}

/// Internal declarator tree (standard C declarator recursion).
#[derive(Debug)]
enum DeclNode {
    Name(Option<String>),
    Ptr { inner: Box<DeclNode>, is_const: bool },
    Array { inner: Box<DeclNode>, len: Option<u64> },
    Func { inner: Box<DeclNode>, params: Vec<Param>, variadic: bool },
}

/// Intermediate "type being built": either an object type or a function
/// type awaiting its declarator context.
#[derive(Debug)]
enum Built {
    Ty(CType),
    Func { ret: CType, params: Vec<Param>, variadic: bool },
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    typedefs: &'a TypedefTable,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat_if(t) {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected `{t}`, found `{}`",
                self.peek().map(|x| x.to_string()).unwrap_or_else(|| "<eof>".into())
            )))
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "trailing tokens starting at `{}`",
                self.toks[self.pos]
            )))
        }
    }

    /// Parses declaration-specifiers. Returns (base type, is_typedef,
    /// base_is_const).
    fn parse_specifiers(&mut self) -> Result<(CType, bool, bool), ParseError> {
        let mut is_typedef = false;
        let mut is_const = false;
        let mut signedness: Option<bool> = None;
        let mut long_count = 0u8;
        let mut short = false;
        let mut core: Option<CType> = None;
        let mut saw_int_word = false;

        while let Some(Token::Ident(s)) = self.peek() {
            let word = s.clone();
            match word.as_str() {
                "typedef" => {
                    is_typedef = true;
                    self.pos += 1;
                }
                w if STORAGE_WORDS.contains(&w) => {
                    self.pos += 1;
                }
                w if QUALIFIER_WORDS.contains(&w) => {
                    is_const |= w.contains("const");
                    self.pos += 1;
                }
                "signed" => {
                    signedness = Some(true);
                    self.pos += 1;
                }
                "unsigned" => {
                    signedness = Some(false);
                    self.pos += 1;
                }
                "short" => {
                    short = true;
                    self.pos += 1;
                }
                "long" => {
                    long_count += 1;
                    self.pos += 1;
                }
                "int" => {
                    saw_int_word = true;
                    self.pos += 1;
                }
                "char" => {
                    core = Some(CType::Char { signed: true });
                    self.pos += 1;
                }
                "float" => {
                    core = Some(CType::Float);
                    self.pos += 1;
                }
                "double" => {
                    core = Some(CType::Double);
                    self.pos += 1;
                }
                "void" => {
                    core = Some(CType::Void);
                    self.pos += 1;
                }
                "struct" | "union" | "enum" => {
                    self.pos += 1;
                    match self.next() {
                        Some(Token::Ident(tag)) => {
                            core = Some(CType::Named(tag.clone()));
                        }
                        other => {
                            return Err(ParseError::new(format!(
                                "expected tag after `{word}`, found {other:?}"
                            )))
                        }
                    }
                }
                other => {
                    // A typedef name is a specifier only if we have no core
                    // type yet; otherwise it is the declarator name.
                    if core.is_none()
                        && !saw_int_word
                        && signedness.is_none()
                        && long_count == 0
                        && !short
                        && self.typedefs.contains(other)
                    {
                        core =
                            Some(self.typedefs.resolve(other).expect("contains").clone());
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
            }
        }

        let base = match core {
            Some(CType::Char { .. }) => CType::Char { signed: signedness.unwrap_or(true) },
            Some(CType::Double) if long_count > 0 => CType::Double, // long double ≈ double
            Some(t) => {
                if signedness.is_some() || long_count > 0 || short {
                    // e.g. `unsigned size_t` — out of subset.
                    if let CType::Int { width, .. } = t {
                        CType::Int { signed: signedness.unwrap_or(true), width }
                    } else {
                        return Err(ParseError::new("conflicting type specifiers"));
                    }
                } else {
                    t
                }
            }
            None => {
                if !saw_int_word && signedness.is_none() && long_count == 0 && !short {
                    return Err(ParseError::new(format!(
                        "expected a type, found `{}`",
                        self.peek()
                            .map(|x| x.to_string())
                            .unwrap_or_else(|| "<eof>".into())
                    )));
                }
                let width = if short {
                    IntWidth::Short
                } else if long_count >= 2 {
                    IntWidth::LongLong
                } else if long_count == 1 {
                    IntWidth::Long
                } else {
                    IntWidth::Int
                };
                CType::Int { signed: signedness.unwrap_or(true), width }
            }
        };
        Ok((base, is_typedef, is_const))
    }

    fn parse_declarator(&mut self) -> Result<DeclNode, ParseError> {
        if self.eat_if(&Token::Star) {
            // Qualifiers after `*`: `const` makes this pointer level
            // const-qualified (`void *const *`); `restrict`/`volatile`
            // don't change the model.
            let mut is_const = false;
            while let Some(Token::Ident(s)) = self.peek() {
                if !QUALIFIER_WORDS.contains(&s.as_str()) {
                    break;
                }
                is_const |= s.contains("const");
                self.pos += 1;
            }
            let inner = self.parse_declarator()?;
            return Ok(DeclNode::Ptr { inner: Box::new(inner), is_const });
        }
        self.parse_direct()
    }

    fn parse_direct(&mut self) -> Result<DeclNode, ParseError> {
        let mut node = match self.peek() {
            Some(Token::LParen) => {
                // `(` starts a parenthesised declarator only if what
                // follows could begin one; otherwise it is a parameter
                // list of an abstract declarator.
                let next = self.toks.get(self.pos + 1);
                let starts_declarator = match next {
                    Some(Token::Star) | Some(Token::LParen) => true,
                    Some(Token::Ident(s)) => {
                        !self.typedefs.contains(s)
                            && !is_type_word(s)
                            && !QUALIFIER_WORDS.contains(&s.as_str())
                            && !STORAGE_WORDS.contains(&s.as_str())
                    }
                    _ => false,
                };
                if starts_declarator {
                    self.pos += 1;
                    let inner = self.parse_declarator()?;
                    self.expect(&Token::RParen)?;
                    inner
                } else {
                    DeclNode::Name(None)
                }
            }
            Some(Token::Ident(s)) if !is_type_word(s) => {
                let name = s.clone();
                self.pos += 1;
                DeclNode::Name(Some(name))
            }
            _ => DeclNode::Name(None),
        };

        loop {
            if self.eat_if(&Token::LParen) {
                let (params, variadic) = self.parse_param_list()?;
                self.expect(&Token::RParen)?;
                node = DeclNode::Func { inner: Box::new(node), params, variadic };
            } else if self.eat_if(&Token::LBracket) {
                let len = match self.peek() {
                    Some(Token::Number(n)) => {
                        let n = *n;
                        self.pos += 1;
                        Some(n)
                    }
                    _ => None,
                };
                self.expect(&Token::RBracket)?;
                node = DeclNode::Array { inner: Box::new(node), len };
            } else {
                break;
            }
        }
        Ok(node)
    }

    fn parse_param_list(&mut self) -> Result<(Vec<Param>, bool), ParseError> {
        let mut params = Vec::new();
        let mut variadic = false;
        if self.peek() == Some(&Token::RParen) {
            return Ok((params, variadic));
        }
        // `(void)` means no parameters.
        if matches!(self.peek(), Some(Token::Ident(s)) if s == "void")
            && self.toks.get(self.pos + 1) == Some(&Token::RParen)
        {
            self.pos += 1;
            return Ok((params, variadic));
        }
        loop {
            if self.eat_if(&Token::Ellipsis) {
                variadic = true;
                break;
            }
            let (base, is_typedef, base_const) = self.parse_specifiers()?;
            if is_typedef {
                return Err(ParseError::new("typedef inside parameter list"));
            }
            let node = self.parse_declarator()?;
            let (name, built) = apply(node, base, base_const)?;
            let ty = match built {
                Built::Ty(t) => decay(t),
                Built::Func { ret, params, .. } => CType::FuncPtr {
                    ret: Box::new(ret),
                    params: params.into_iter().map(|p| p.ty).collect(),
                },
            };
            params.push(Param { name, ty });
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        Ok((params, variadic))
    }

    fn parse_declaration(&mut self) -> Result<Decl, ParseError> {
        let (base, is_typedef, base_const) = self.parse_specifiers()?;
        let node = self.parse_declarator()?;
        let (name, built) = apply(node, base, base_const)?;
        match built {
            Built::Func { ret, params, variadic } => {
                let name = name
                    .ok_or_else(|| ParseError::new("function prototype without a name"))?;
                if is_typedef {
                    return Err(ParseError::new("typedef of function type not supported"));
                }
                Ok(Decl::Proto(Prototype { name, ret, params, variadic }))
            }
            Built::Ty(ty) => {
                let name =
                    name.ok_or_else(|| ParseError::new("declaration without a name"))?;
                if is_typedef {
                    Ok(Decl::Typedef { name, ty })
                } else {
                    Ok(Decl::Var { name, ty })
                }
            }
        }
    }
}

fn is_type_word(s: &str) -> bool {
    matches!(
        s,
        "void"
            | "char"
            | "short"
            | "int"
            | "long"
            | "float"
            | "double"
            | "signed"
            | "unsigned"
            | "struct"
            | "union"
            | "enum"
    )
}

/// Array-to-pointer decay for parameters.
fn decay(t: CType) -> CType {
    match t {
        CType::Array { elem, .. } => CType::Ptr { pointee: elem, const_pointee: false },
        other => other,
    }
}

/// Applies a declarator tree to a base type, producing the declared name
/// and its type. `base_const` is the constness of the declaration's base
/// specifier (`const char` in `const char *s`).
fn apply(
    node: DeclNode,
    base: CType,
    base_const: bool,
) -> Result<(Option<String>, Built), ParseError> {
    match node {
        DeclNode::Name(name) => Ok((name, Built::Ty(base))),
        DeclNode::Ptr { inner, is_const } => {
            let new_base =
                CType::Ptr { pointee: Box::new(base), const_pointee: base_const };
            // A `const` written after this `*` qualifies the pointer type
            // just built, i.e. it becomes the next level's pointee-const.
            apply(*inner, new_base, is_const)
        }
        DeclNode::Array { inner, len } => {
            let new_base = CType::Array { elem: Box::new(base), len };
            apply(*inner, new_base, base_const)
        }
        DeclNode::Func { inner, params, variadic } => {
            // `base` is the return type of this function declarator.
            match *inner {
                DeclNode::Name(name) => {
                    Ok((name, Built::Func { ret: base, params, variadic }))
                }
                DeclNode::Ptr { inner: pinner, .. } => {
                    // `ret (*name)(params)` — a function pointer object.
                    let fp = CType::FuncPtr {
                        ret: Box::new(base),
                        params: params.into_iter().map(|p| p.ty).collect(),
                    };
                    apply(*pinner, fp, false)
                }
                other => Err(ParseError::new(format!(
                    "unsupported declarator shape: function suffix on {other:?}"
                ))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TypedefTable {
        TypedefTable::with_builtins()
    }

    #[test]
    fn simple_prototype() {
        let p = parse_prototype("int abs(int j);", &table()).unwrap();
        assert_eq!(p.name, "abs");
        assert_eq!(p.ret, CType::INT);
        assert_eq!(p.params, vec![Param::named("j", CType::INT)]);
    }

    #[test]
    fn pointer_return_and_const_param() {
        let p = parse_prototype("char *strcpy(char *dest, const char *src);", &table())
            .unwrap();
        assert_eq!(p.ret, CType::Char { signed: true }.ptr_to());
        assert_eq!(p.params[0].ty, CType::Char { signed: true }.ptr_to());
        assert_eq!(p.params[1].ty, CType::Char { signed: true }.const_ptr_to());
        assert_eq!(p.params[1].name.as_deref(), Some("src"));
    }

    #[test]
    fn typedef_expansion() {
        let p = parse_prototype("size_t strlen(const char *s);", &table()).unwrap();
        assert_eq!(p.ret, CType::ULONG);
    }

    #[test]
    fn paper_figure3_wctrans() {
        // The exact function shown in the paper's Figure 3.
        let p = parse_prototype("wctrans_t wctrans(const char* a1);", &table()).unwrap();
        assert_eq!(p.name, "wctrans");
        assert_eq!(p.ret, CType::LONG);
        assert_eq!(p.params[0].ty, CType::Char { signed: true }.const_ptr_to());
    }

    #[test]
    fn void_params() {
        let p = parse_prototype("int rand(void);", &table()).unwrap();
        assert!(p.params.is_empty());
        let q = parse_prototype("int rand();", &table()).unwrap();
        assert!(q.params.is_empty());
    }

    #[test]
    fn void_pointer_params() {
        let p = parse_prototype(
            "void *memcpy(void *dest, const void *src, size_t n);",
            &table(),
        )
        .unwrap();
        assert!(p.ret.is_void_pointer());
        assert!(p.params[0].ty.is_void_pointer());
        assert!(p.params[0].ty.is_writable_pointer());
        assert!(!p.params[1].ty.is_writable_pointer());
        assert_eq!(p.params[2].ty, CType::ULONG);
    }

    #[test]
    fn function_pointer_parameter() {
        let p = parse_prototype(
            "void qsort(void *base, size_t nmemb, size_t size, int (*compar)(const void *, const void *));",
            &table(),
        )
        .unwrap();
        assert_eq!(p.params.len(), 4);
        let cmp = &p.params[3];
        assert_eq!(cmp.name.as_deref(), Some("compar"));
        match &cmp.ty {
            CType::FuncPtr { ret, params } => {
                assert_eq!(**ret, CType::INT);
                assert_eq!(params.len(), 2);
                assert!(params[0].is_void_pointer());
            }
            other => panic!("expected function pointer, got {other:?}"),
        }
    }

    #[test]
    fn variadic_prototype() {
        let p = parse_prototype(
            "int snprintf(char *str, size_t size, const char *format, ...);",
            &table(),
        )
        .unwrap();
        assert!(p.variadic);
        assert_eq!(p.params.len(), 3);
    }

    #[test]
    fn unsigned_long_long() {
        let p = parse_prototype(
            "unsigned long long strtoull(const char *s, char **end, int base);",
            &table(),
        )
        .unwrap();
        assert_eq!(p.ret, CType::Int { signed: false, width: IntWidth::LongLong });
        // char** parameter
        assert_eq!(p.params[1].ty, CType::Char { signed: true }.ptr_to().ptr_to());
    }

    #[test]
    fn struct_return() {
        let p = parse_prototype("div_t div(int numerator, int denominator);", &table())
            .unwrap();
        assert_eq!(p.ret, CType::Named("div_t".into()));
    }

    #[test]
    fn array_param_decays() {
        let p = parse_prototype("int sum(int values[16], int n);", &table()).unwrap();
        assert_eq!(p.params[0].ty, CType::INT.ptr_to());
    }

    #[test]
    fn typedef_declaration_updates_table() {
        let mut t = table();
        let decls = parse_declarations(
            "typedef unsigned long my_size; my_size my_strlen(const char *s);",
            &mut t,
        )
        .unwrap();
        assert_eq!(decls.len(), 2);
        assert!(matches!(&decls[0], Decl::Typedef { name, .. } if name == "my_size"));
        match &decls[1] {
            Decl::Proto(p) => assert_eq!(p.ret, CType::ULONG),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn variable_declaration() {
        let mut t = table();
        let decls = parse_declarations("extern int opterr;", &mut t).unwrap();
        assert_eq!(decls, vec![Decl::Var { name: "opterr".into(), ty: CType::INT }]);
    }

    #[test]
    fn anonymous_params_get_positional_names() {
        let p =
            parse_prototype("int strcmp(const char *, const char *);", &table()).unwrap();
        assert_eq!(p.params[0].display_name(0), "a1");
        assert_eq!(p.params[1].display_name(1), "a2");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_prototype("strcpy(char *d);", &table()).is_err(), "no return type");
        assert!(parse_prototype("int 5x(void);", &table()).is_err());
        assert!(parse_prototype("int f(void) int g(void);", &table()).is_err());
    }

    #[test]
    fn struct_tag_types() {
        let mut t = table();
        let decls =
            parse_declarations("struct tm *localtime(const long *timep);", &mut t).unwrap();
        match &decls[0] {
            Decl::Proto(p) => {
                assert_eq!(p.ret, CType::Named("tm".into()).ptr_to());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn restrict_qualifiers_are_ignored() {
        let p = parse_prototype(
            "char *strncpy(char *restrict dest, const char *restrict src, size_t n);",
            &table(),
        )
        .unwrap();
        assert_eq!(p.params.len(), 3);
        assert!(p.params[0].ty.is_writable_pointer());
    }
}
