//! Man-page SYNOPSIS extraction — the second prototype source the paper's
//! Figure 2 feeds into the fault injector ("parses the header files and
//! manual pages from C libraries").

use crate::ctype::Prototype;
use crate::parser::{parse_prototype, TypedefTable};

/// Prototypes harvested from one man page.
#[derive(Debug, Clone, Default)]
pub struct ManpageInfo {
    /// Prototypes found in the SYNOPSIS section.
    pub prototypes: Vec<Prototype>,
    /// SYNOPSIS lines that did not parse.
    pub skipped: Vec<String>,
}

/// Extracts the SYNOPSIS section from (roff-rendered or plain) man-page
/// text: everything between a `SYNOPSIS` heading and the next all-caps
/// heading.
pub fn synopsis_section(text: &str) -> Option<String> {
    let mut in_synopsis = false;
    let mut out = String::new();
    for line in text.lines() {
        let trimmed = line.trim();
        let is_heading = !trimmed.is_empty()
            && !line.starts_with(char::is_whitespace)
            && trimmed.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_whitespace());
        if is_heading {
            if in_synopsis {
                break;
            }
            in_synopsis = trimmed == "SYNOPSIS";
            continue;
        }
        if in_synopsis {
            out.push_str(line);
            out.push('\n');
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// Parses the prototypes out of a man page.
pub fn parse_manpage(text: &str, typedefs: &TypedefTable) -> ManpageInfo {
    let mut info = ManpageInfo::default();
    let Some(section) = synopsis_section(text) else {
        return info;
    };
    // Join continuation lines: a declaration ends at `;`.
    let mut pending = String::new();
    for line in section.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with("#include") {
            continue;
        }
        pending.push_str(line);
        pending.push(' ');
        if line.ends_with(';') {
            let decl = pending.trim().to_string();
            pending.clear();
            match parse_prototype(&decl, typedefs) {
                Ok(p) => info.prototypes.push(p),
                Err(_) => info.skipped.push(decl),
            }
        }
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;

    const STRCPY_MAN: &str = r#"
STRCPY(3)                  Linux Programmer's Manual                 STRCPY(3)

NAME
       strcpy, strncpy - copy a string

SYNOPSIS
       #include <string.h>

       char *strcpy(char *dest, const char *src);

       char *strncpy(char *dest, const char *src,
                     size_t n);

DESCRIPTION
       The strcpy() function copies the string pointed to by src.
"#;

    #[test]
    fn extracts_synopsis() {
        let s = synopsis_section(STRCPY_MAN).unwrap();
        assert!(s.contains("strcpy"));
        assert!(!s.contains("DESCRIPTION"));
        assert!(!s.contains("copies the string"));
    }

    #[test]
    fn parses_prototypes_including_continuations() {
        let t = TypedefTable::with_builtins();
        let info = parse_manpage(STRCPY_MAN, &t);
        let names: Vec<_> = info.prototypes.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["strcpy", "strncpy"]);
        assert_eq!(info.prototypes[1].arity(), 3);
        assert!(info.skipped.is_empty());
    }

    #[test]
    fn missing_synopsis_yields_empty() {
        let t = TypedefTable::with_builtins();
        let info = parse_manpage("NAME\n  foo - bar\n", &t);
        assert!(info.prototypes.is_empty());
    }

    #[test]
    fn unparseable_synopsis_lines_recorded() {
        let t = TypedefTable::with_builtins();
        let text = "SYNOPSIS\n       int f(void);\n       weird !! decl;\nSEE ALSO\n";
        let info = parse_manpage(text, &t);
        assert_eq!(info.prototypes.len(), 1);
        assert_eq!(info.skipped.len(), 1);
    }
}
