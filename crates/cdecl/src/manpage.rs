//! Man-page SYNOPSIS extraction — the second prototype source the paper's
//! Figure 2 feeds into the fault injector ("parses the header files and
//! manual pages from C libraries").

use crate::ctype::Prototype;
use crate::parser::{parse_prototype, TypedefTable};

/// Prototypes harvested from one man page.
#[derive(Debug, Clone, Default)]
pub struct ManpageInfo {
    /// Prototypes found in the SYNOPSIS section.
    pub prototypes: Vec<Prototype>,
    /// SYNOPSIS lines that did not parse.
    pub skipped: Vec<String>,
}

/// Extracts one named all-caps section: everything between the heading
/// and the next heading, recognising both rendered pages (a non-indented
/// all-caps line) and roff source (`.SH NAME`).
fn named_section(text: &str, heading: &str) -> Option<String> {
    let mut in_section = false;
    let mut out = String::new();
    for line in text.lines() {
        let trimmed = line.trim();
        let heading_name = if let Some(rest) = trimmed.strip_prefix(".SH ") {
            Some(rest.trim().trim_matches('"').to_string())
        } else {
            let is_heading = !trimmed.is_empty()
                && !line.starts_with(char::is_whitespace)
                && trimmed
                    .chars()
                    .all(|c| c.is_ascii_uppercase() || c.is_ascii_whitespace());
            is_heading.then(|| trimmed.to_string())
        };
        if let Some(name) = heading_name {
            if in_section {
                break;
            }
            in_section = name == heading;
            continue;
        }
        if in_section {
            out.push_str(line);
            out.push('\n');
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// Extracts the SYNOPSIS section from (roff-rendered or plain) man-page
/// text: everything between a `SYNOPSIS` heading and the next heading.
pub fn synopsis_section(text: &str) -> Option<String> {
    named_section(text, "SYNOPSIS")
}

/// Extracts the DESCRIPTION section — the prose the contract-inference
/// pass mines for phrases like "must not be NULL" or "null-terminated".
pub fn description_section(text: &str) -> Option<String> {
    named_section(text, "DESCRIPTION")
}

/// Removes roff font escapes (`\fB`, `\fI`, `\fR`, `\fP`, …): `\f`
/// followed by one font-selector character.
fn strip_roff_escapes(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\\' && chars.peek() == Some(&'f') {
            chars.next();
            chars.next();
            continue;
        }
        out.push(c);
    }
    out
}

/// If `line` starts with a roff font macro (`.B`, `.BI`, `.BR`, …),
/// returns the macro's operand text; `None` for anything else.
fn roff_font_operand(line: &str) -> Option<&str> {
    for macro_name in [".BI", ".BR", ".IB", ".IR", ".RB", ".RI", ".B", ".I"] {
        if let Some(rest) = line.strip_prefix(macro_name) {
            if rest.is_empty() || rest.starts_with(' ') {
                return Some(rest.trim_start());
            }
        }
    }
    None
}

/// Removes `__attribute__((...))` annotations (balanced parentheses) from
/// a declaration.
fn strip_attributes(decl: &str) -> String {
    let mut out = String::new();
    let mut rest = decl;
    while let Some(pos) = rest.find("__attribute__") {
        out.push_str(&rest[..pos]);
        let after = rest[pos + "__attribute__".len()..].trim_start();
        let Some(body) = after.strip_prefix('(') else {
            rest = after;
            continue;
        };
        let mut depth = 1usize;
        let mut end = body.len();
        for (i, c) in body.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &body[end.min(body.len())..];
    }
    out.push_str(rest);
    out
}

/// Drops `restrict` qualifiers (C99 and the GNU spellings), including the
/// glued `*restrict` form man pages favour.
fn strip_restrict(decl: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    for tok in decl.split_whitespace() {
        let bare = tok.trim_start_matches('*');
        let stars = &tok[..tok.len() - bare.len()];
        if matches!(bare, "restrict" | "__restrict" | "__restrict__") {
            if !stars.is_empty() {
                parts.push(stars);
            }
            continue;
        }
        parts.push(tok);
    }
    parts.join(" ")
}

/// Parses the prototypes out of a man page. Tolerates the noise real
/// pages carry: multi-line prototypes, roff font macros and escapes,
/// `__attribute__` annotations and `restrict` qualifiers. Lines that
/// still fail to parse land in [`ManpageInfo::skipped`].
pub fn parse_manpage(text: &str, typedefs: &TypedefTable) -> ManpageInfo {
    let mut info = ManpageInfo::default();
    let Some(section) = synopsis_section(text) else {
        return info;
    };
    // Join continuation lines: a declaration ends at `;`.
    let mut pending = String::new();
    let take = |pending: &mut String, info: &mut ManpageInfo| {
        let decl = strip_restrict(&strip_attributes(pending.trim()));
        pending.clear();
        if decl.is_empty() {
            return;
        }
        match parse_prototype(&decl, typedefs) {
            Ok(p) => info.prototypes.push(p),
            Err(_) => info.skipped.push(decl),
        }
    };
    for raw in section.lines() {
        let unescaped = strip_roff_escapes(raw);
        let mut line = unescaped.trim();
        let dequoted;
        if let Some(operand) = roff_font_operand(line) {
            // Mixed-font macros quote the fragments; dropping the quotes
            // reassembles the declaration text.
            dequoted = operand.replace('"', "");
            line = dequoted.trim();
        } else if line.starts_with('.') {
            continue; // layout macros: .PP, .nf, .fi, ...
        } else if line.contains('"') {
            dequoted = line.replace('"', "");
            line = dequoted.trim();
        }
        if line.is_empty() || line.starts_with("#include") {
            continue;
        }
        pending.push_str(line);
        pending.push(' ');
        if line.ends_with(';') {
            take(&mut pending, &mut info);
        }
    }
    // A declaration left open at section end (missing `;`) is noise worth
    // surfacing, not silently dropping.
    if !pending.trim().is_empty() {
        take(&mut pending, &mut info);
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;

    const STRCPY_MAN: &str = r#"
STRCPY(3)                  Linux Programmer's Manual                 STRCPY(3)

NAME
       strcpy, strncpy - copy a string

SYNOPSIS
       #include <string.h>

       char *strcpy(char *dest, const char *src);

       char *strncpy(char *dest, const char *src,
                     size_t n);

DESCRIPTION
       The strcpy() function copies the string pointed to by src.
"#;

    #[test]
    fn extracts_synopsis() {
        let s = synopsis_section(STRCPY_MAN).unwrap();
        assert!(s.contains("strcpy"));
        assert!(!s.contains("DESCRIPTION"));
        assert!(!s.contains("copies the string"));
    }

    #[test]
    fn parses_prototypes_including_continuations() {
        let t = TypedefTable::with_builtins();
        let info = parse_manpage(STRCPY_MAN, &t);
        let names: Vec<_> = info.prototypes.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["strcpy", "strncpy"]);
        assert_eq!(info.prototypes[1].arity(), 3);
        assert!(info.skipped.is_empty());
    }

    #[test]
    fn missing_synopsis_yields_empty() {
        let t = TypedefTable::with_builtins();
        let info = parse_manpage("NAME\n  foo - bar\n", &t);
        assert!(info.prototypes.is_empty());
    }

    #[test]
    fn unparseable_synopsis_lines_recorded() {
        let t = TypedefTable::with_builtins();
        let text = "SYNOPSIS\n       int f(void);\n       weird !! decl;\nSEE ALSO\n";
        let info = parse_manpage(text, &t);
        assert_eq!(info.prototypes.len(), 1);
        assert_eq!(info.skipped.len(), 1);
    }

    #[test]
    fn attribute_and_restrict_noise_is_stripped() {
        let t = TypedefTable::with_builtins();
        let text = "SYNOPSIS\n       \
            __attribute__((nonnull(1, 2))) char *strcpy(char *restrict dest,\n              \
            const char *__restrict src);\n       \
            void *memcpy(void *__restrict__ dest, const void *restrict src, size_t n);\n\
            DESCRIPTION\n";
        let info = parse_manpage(text, &t);
        let names: Vec<_> = info.prototypes.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["strcpy", "memcpy"], "skipped: {:?}", info.skipped);
        assert!(info.skipped.is_empty());
        assert_eq!(info.prototypes[0].arity(), 2);
    }

    #[test]
    fn roff_source_synopsis_parses() {
        let t = TypedefTable::with_builtins();
        let text = "\
.SH NAME\nmalloc \\- allocate memory\n\
.SH SYNOPSIS\n.nf\n.B #include <stdlib.h>\n.PP\n\
.BI \"void *malloc(size_t \" size );\n\
.BI \"void free(void *\" ptr );\n.fi\n\
.SH DESCRIPTION\nThe \\fBmalloc\\fP() function allocates memory.\n";
        let info = parse_manpage(text, &t);
        let names: Vec<_> = info.prototypes.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["malloc", "free"], "skipped: {:?}", info.skipped);
        let desc = description_section(text).unwrap();
        assert!(desc.contains("allocates memory"));
    }

    #[test]
    fn roff_escapes_are_removed_from_rendered_lines() {
        let t = TypedefTable::with_builtins();
        let text = "SYNOPSIS\n       \\fBint abs(int \\fIj\\fB);\\fR\nNOTES\n";
        let info = parse_manpage(text, &t);
        assert_eq!(info.prototypes.len(), 1, "skipped: {:?}", info.skipped);
        assert_eq!(info.prototypes[0].name, "abs");
    }

    #[test]
    fn unterminated_declaration_lands_in_skipped() {
        let t = TypedefTable::with_builtins();
        let text = "SYNOPSIS\n       int g(int a,\n       int b\nNOTES\n";
        let info = parse_manpage(text, &t);
        assert!(info.prototypes.is_empty());
        assert_eq!(info.skipped, vec!["int g(int a, int b"]);
    }

    #[test]
    fn description_section_absent_when_missing() {
        assert!(description_section("NAME\n  x\nSYNOPSIS\n  int f(void);\n").is_none());
        let desc = description_section(STRCPY_MAN).unwrap();
        assert!(desc.contains("copies the string"));
        assert!(!desc.contains("strncpy(char"));
    }
}
