//! # cdecl — prototype extraction for HEALERS
//!
//! The first stage of the HEALERS pipeline (paper §2.2, Figure 2): "the
//! system parses the header files and manual pages from C libraries to
//! generate the prototype information for all global functions". This
//! crate provides
//!
//! * a C type model ([`CType`], [`Prototype`]);
//! * a declaration parser for the practical subset found in libc headers,
//!   including function-pointer parameters ([`parse_prototype`],
//!   [`parse_declarations`], [`parse_type`]);
//! * whole-header and man-page SYNOPSIS harvesting ([`header`],
//!   [`manpage`]);
//! * the XML-style declaration files of the §3.1 demo ([`xml`]).
//!
//! ```
//! use cdecl::{parse_prototype, TypedefTable};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let typedefs = TypedefTable::with_builtins();
//! let proto = parse_prototype("wctrans_t wctrans(const char* a1);", &typedefs)?;
//! assert_eq!(proto.to_string(), "long wctrans(const char* a1)");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ctype;
pub mod header;
mod lexer;
pub mod manpage;
mod parser;
pub mod xml;

pub use ctype::{CType, IntWidth, Param, Prototype};
pub use header::{parse_header, HeaderInfo};
pub use lexer::{lex, LexError, Token};
pub use manpage::{description_section, parse_manpage, synopsis_section, ManpageInfo};
pub use parser::{
    parse_declarations, parse_prototype, parse_type, Decl, ParseError, TypedefTable,
};
