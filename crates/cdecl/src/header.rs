//! Whole-header scanning: preprocessor stripping, struct-body elision and
//! declaration harvesting — the "parses the header files ... to generate
//! the prototype information for all global functions" step of Figure 2.

use crate::ctype::Prototype;
use crate::parser::{parse_declarations, Decl, ParseError, TypedefTable};

/// Everything harvested from one header.
#[derive(Debug, Clone, Default)]
pub struct HeaderInfo {
    /// Function prototypes found, in order.
    pub prototypes: Vec<Prototype>,
    /// Typedef names introduced.
    pub typedefs: Vec<String>,
    /// Declarations the subset parser could not handle (the paper notes
    /// "some manual editing may be needed"); kept for diagnostics.
    pub skipped: Vec<String>,
}

/// Strips `#...` preprocessor lines and replaces `{ ... }` bodies with `;`
/// so struct definitions and inline functions don't derail the
/// declaration parser.
fn preprocess(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut depth = 0usize;
    for raw_line in text.lines() {
        let line = raw_line.trim();
        if line.starts_with('#') {
            continue;
        }
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                }
                c if depth == 0 => out.push(c),
                _ => {}
            }
        }
        if depth == 0 {
            out.push('\n');
        }
    }
    out
}

/// Parses a header file's text. Unparseable declarations are recorded in
/// [`HeaderInfo::skipped`] rather than failing the whole header, because
/// real headers always contain constructs outside any practical subset.
pub fn parse_header(text: &str, typedefs: &mut TypedefTable) -> HeaderInfo {
    let clean = preprocess(text);
    let mut info = HeaderInfo::default();
    for stmt in clean.split(';') {
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        let stmt_sc = format!("{stmt};");
        match parse_declarations(&stmt_sc, typedefs) {
            Ok(decls) => {
                for d in decls {
                    match d {
                        Decl::Proto(p) => info.prototypes.push(p),
                        Decl::Typedef { name, .. } => info.typedefs.push(name),
                        Decl::Var { .. } => {}
                    }
                }
            }
            Err(ParseError { .. }) => info.skipped.push(stmt.to_string()),
        }
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctype::CType;

    const SAMPLE_HEADER: &str = r#"
#ifndef _STRING_H
#define _STRING_H 1
#include <stddef.h>

/* Copying functions. */
char *strcpy(char *dest, const char *src);
char *strncpy(char *dest, const char *src, size_t n);
void *memcpy(void *dest, const void *src, size_t n);

typedef struct _entry { int k; int v; } entry_t;

size_t strlen(const char *s);
extern int some_global;
struct weird_thing make_weird(int x, ...);
int sum_array(int xs[8], size_t n);

#endif
"#;

    #[test]
    fn harvests_prototypes_and_skips_junk() {
        let mut t = TypedefTable::with_builtins();
        let info = parse_header(SAMPLE_HEADER, &mut t);
        let names: Vec<_> = info.prototypes.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["strcpy", "strncpy", "memcpy", "strlen", "make_weird", "sum_array"]
        );
        assert!(info.skipped.is_empty(), "{:?}", info.skipped);
    }

    #[test]
    fn struct_bodies_do_not_break_parsing() {
        let mut t = TypedefTable::with_builtins();
        let info = parse_header("struct point { int x; int y; };\nint f(void);", &mut t);
        assert_eq!(info.prototypes.len(), 1);
        assert_eq!(info.prototypes[0].name, "f");
    }

    #[test]
    fn typedefs_carry_forward() {
        let mut t = TypedefTable::with_builtins();
        let info = parse_header(
            "typedef unsigned long mylen_t;\nmylen_t measure(const char *s);",
            &mut t,
        );
        assert_eq!(info.typedefs, vec!["mylen_t"]);
        assert_eq!(info.prototypes[0].ret, CType::ULONG);
    }

    #[test]
    fn unparseable_lines_recorded() {
        let mut t = TypedefTable::with_builtins();
        let info = parse_header("int f(void);\n@garbage@;\nint g(void);", &mut t);
        assert_eq!(info.prototypes.len(), 2);
        assert_eq!(info.skipped.len(), 1);
    }

    #[test]
    fn preprocessor_lines_stripped() {
        let mut t = TypedefTable::with_builtins();
        let info = parse_header("#define FOO 1\nint f(void);", &mut t);
        assert_eq!(info.prototypes.len(), 1);
    }
}
