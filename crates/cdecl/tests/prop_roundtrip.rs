//! Property tests for the declaration parser: pretty-printed prototypes
//! re-parse to the same AST, and declaration files round-trip, for
//! arbitrarily generated types in the supported subset.

use proptest::prelude::*;

use cdecl::xml::{parse_declaration_file, write_declaration_file};
use cdecl::{parse_prototype, parse_type, CType, IntWidth, Param, Prototype, TypedefTable};

fn scalar() -> impl Strategy<Value = CType> {
    prop_oneof![
        Just(CType::Void),
        any::<bool>().prop_map(|signed| CType::Char { signed }),
        (
            any::<bool>(),
            prop_oneof![
                Just(IntWidth::Short),
                Just(IntWidth::Int),
                Just(IntWidth::Long),
                Just(IntWidth::LongLong)
            ]
        )
            .prop_map(|(signed, width)| CType::Int { signed, width }),
        Just(CType::Float),
        Just(CType::Double),
    ]
}

/// Data-pointer types: scalars and (const-qualified) pointers over them.
fn data_type() -> impl Strategy<Value = CType> {
    scalar().prop_recursive(3, 8, 4, |inner| {
        (inner, any::<bool>()).prop_map(
            |(t, c)| {
                if c {
                    t.const_ptr_to()
                } else {
                    t.ptr_to()
                }
            },
        )
    })
}

/// Types as they appear in parameter lists (post array decay): data
/// types plus simple function pointers. C cannot name a function pointer
/// returning a function pointer without a typedef, so the generator
/// stays inside the expressible subset (as the parser does).
fn param_type() -> impl Strategy<Value = CType> {
    prop_oneof![
        4 => data_type(),
        1 => (
            data_type(),
            prop::collection::vec(
                data_type().prop_filter("void param", |t| *t != CType::Void),
                0..3
            )
        )
            .prop_map(|(ret, params)| CType::FuncPtr { ret: Box::new(ret), params }),
    ]
}

/// A parameter type that is legal in C (no bare void params).
fn legal_param() -> impl Strategy<Value = CType> {
    param_type().prop_filter("void is not a parameter type", |t| *t != CType::Void)
}

fn identifier() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,10}".prop_filter("not a C keyword or typedef", |s| {
        ![
            "void", "char", "short", "int", "long", "float", "double", "signed",
            "unsigned", "struct", "union", "enum", "const", "volatile", "restrict",
            "extern", "static", "typedef", "inline", "register", "auto",
        ]
        .contains(&s.as_str())
    })
}

fn prototype() -> impl Strategy<Value = Prototype> {
    (
        identifier(),
        data_type(), // return type (void allowed; functions cannot return functions)
        prop::collection::vec((identifier(), legal_param()), 0..5),
        any::<bool>(),
    )
        .prop_map(|(name, ret, params, variadic)| {
            let mut seen = std::collections::BTreeSet::new();
            let params = params
                .into_iter()
                .enumerate()
                .map(|(i, (pname, ty))| {
                    // Ensure distinct, non-colliding parameter names.
                    let pname = if seen.insert(pname.clone()) && pname != name {
                        pname
                    } else {
                        format!("p{i}")
                    };
                    Param::named(pname, ty)
                })
                .collect();
            let mut p = Prototype::new(name, ret, params);
            p.variadic = variadic;
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn type_display_reparses(ty in param_type()) {
        let table = TypedefTable::with_builtins();
        let text = ty.to_string();
        let parsed = parse_type(&text, &table)
            .map_err(|e| TestCaseError::fail(format!("`{text}`: {e}")))?;
        prop_assert_eq!(parsed, ty, "`{}`", text);
    }

    #[test]
    fn prototype_display_reparses(proto in prototype()) {
        let table = TypedefTable::with_builtins();
        let text = format!("{proto};");
        let parsed = parse_prototype(&text, &table)
            .map_err(|e| TestCaseError::fail(format!("`{text}`: {e}")))?;
        prop_assert_eq!(&parsed.name, &proto.name);
        prop_assert_eq!(&parsed.ret, &proto.ret);
        prop_assert_eq!(parsed.variadic, proto.variadic);
        prop_assert_eq!(parsed.params.len(), proto.params.len());
        for (a, b) in parsed.params.iter().zip(&proto.params) {
            prop_assert_eq!(&a.ty, &b.ty, "`{}`", text);
        }
    }

    #[test]
    fn declaration_file_roundtrips(protos in prop::collection::vec(prototype(), 0..8)) {
        let table = TypedefTable::with_builtins();
        let doc = write_declaration_file("libprop.so", &protos);
        let (lib, parsed) = parse_declaration_file(&doc, &table)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(lib, "libprop.so");
        prop_assert_eq!(parsed.len(), protos.len());
        for (a, b) in parsed.iter().zip(&protos) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.ret, &b.ret);
            prop_assert_eq!(a.params.len(), b.params.len());
            prop_assert_eq!(a.variadic, b.variadic);
        }
    }
}
