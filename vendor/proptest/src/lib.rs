//! Offline vendored shim for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro (with `#![proptest_config]`),
//! `Strategy` with `prop_map`/`prop_filter`/`prop_recursive`/`boxed`,
//! `any::<T>()`, integer-range / tuple / `Just` / regex-string
//! strategies, `prop::collection::vec`, `prop_oneof!` (weighted and
//! unweighted), and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: generation is uniform rather than
//! edge-biased, there is no shrinking, and the RNG is seeded
//! deterministically from the test name so runs are reproducible.

pub mod test_runner {
    use std::fmt;

    /// Per-`proptest!` configuration (subset: `cases`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Upper bound on rejected (assumed/filtered) cases.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Hard failure: the property is violated.
        Fail(String),
        /// Soft rejection: inputs did not satisfy an assumption.
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a hard failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Builds a soft rejection.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }

        /// True for soft rejections.
        pub fn is_reject(&self) -> bool {
            matches!(self, TestCaseError::Reject(_))
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic RNG (SplitMix64) used for value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x5bf0_3635_4b16_f5d3 }
        }

        /// Seeds from a test name, for reproducible runs.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng::new(h)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A generator of test values (subset of proptest's `Strategy`;
    /// no shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Discards values failing `pred`, regenerating in place.
        fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence: whence.into(), pred }
        }

        /// Builds recursive values: `recurse` wraps the strategy for one
        /// nesting level; generation picks a level in `0..=depth`.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            Recursive {
                base: self.boxed(),
                recurse: Rc::new(move |s| recurse(s).boxed()),
                depth,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe view used by [`BoxedStrategy`].
    trait ErasedStrategy<T> {
        fn erased_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ErasedStrategy<S::Value> for S {
        fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn ErasedStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.erased_generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 10000 consecutive values", self.whence);
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        #[allow(clippy::type_complexity)]
        recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let levels = rng.below(self.depth as u64 + 1);
            let mut strat = self.base.clone();
            for _ in 0..levels {
                strat = (self.recurse)(strat);
            }
            strat.generate(rng)
        }
    }

    /// Weighted union of strategies; built by `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total.max(1));
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            self.arms[self.arms.len() - 1].1.generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (start as i128 + off as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// String strategy from a regex subset: concatenated `[...]` char
    /// classes (ranges and literals) and literal characters, each with
    /// an optional `{n,m}` / `{n}` repetition.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let class: Vec<char> = if chars[i] == '[' {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad range in pattern {pattern}");
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern}");
                i += 1; // consume ']'
                set
            } else if chars[i] == '\\' && i + 1 < chars.len() {
                i += 2;
                vec![chars[i - 1]]
            } else {
                i += 1;
                vec![chars[i - 1]]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unterminated {} in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("bad repeat min"),
                        b.trim().parse::<usize>().expect("bad repeat max"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!class.is_empty(), "empty char class in pattern {pattern}");
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.min < size.max_exclusive, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let n = self.size.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// `prop::` namespace as re-exported by the real prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Hard-fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Hard-fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Hard-fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Soft-rejects the current case unless `cond` holds; rejected cases
/// are regenerated and do not count toward the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// Picks among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]`, multiple `fn name(pat in strategy, ...)`
/// items, and bodies that use `?` with [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: $crate::test_runner::TestCaseResult =
                        (|| -> $crate::test_runner::TestCaseResult {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err(e) if e.is_reject() => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest '{}': too many rejected cases ({})",
                                    stringify!($name),
                                    rejected
                                );
                            }
                        }
                        ::core::result::Result::Err(e) => {
                            panic!(
                                "proptest '{}' failed after {} passing case(s): {}",
                                stringify!($name),
                                passed,
                                e
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(any::<u8>(), 0..5)
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(u8),
        Node(Box<Tree>, bool),
    }

    fn tree() -> impl Strategy<Value = Tree> {
        (0u8..16).prop_map(Tree::Leaf).prop_recursive(3, 8, 4, |inner| {
            (inner, any::<bool>()).prop_map(|(t, b)| Tree::Node(Box::new(t), b))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in -4i64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn vec_sizes(v in small_vec()) {
            prop_assert!(v.len() < 5, "len {}", v.len());
        }

        #[test]
        fn regex_subset(s in "[a-z][a-z0-9_]{0,10}", t in "[ -~]{0,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 11);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(t.len() <= 8);
            prop_assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }

        #[test]
        fn oneof_weighted(v in prop_oneof![4 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn recursive_bounded(t in tree()) {
            fn depth(t: &Tree) -> usize {
                match t {
                    Tree::Leaf(_) => 0,
                    Tree::Node(inner, _) => 1 + depth(inner),
                }
            }
            prop_assert!(depth(&t) <= 3, "depth {}", depth(&t));
        }

        #[test]
        fn question_mark_bodies(x in 0u32..100) {
            let y: u32 = format!("{x}")
                .parse()
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(x, y);
        }

        #[test]
        fn assume_rejects(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn filter_regenerates() {
        let strat = (0u8..100).prop_filter("even", |v| v % 2 == 0);
        let mut rng = crate::test_runner::TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }
}
