//! Offline vendored shim for `rand`.
//!
//! Exposes the API surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over integer
//! ranges. The generator is SplitMix64 — statistically fine for test
//! and fuzzing workloads, deterministic for a fixed seed.

/// Core random-number-generator trait (subset of `rand::RngCore` +
/// `rand::Rng`).
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: SplitMix64 in this shim.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(2003);
        for _ in 0..1000 {
            let v: u8 = r.gen_range(0x21..0x7f);
            assert!((0x21..0x7f).contains(&v));
            let w: i64 = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }
}
