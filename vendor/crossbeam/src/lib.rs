//! Offline vendored shim for `crossbeam`.
//!
//! Provides the `channel` module surface the workspace uses: an
//! unbounded MPSC channel with disconnect detection and a two-arm
//! `select!` macro. Built on `std::sync` primitives; `select!` polls
//! with a short sleep instead of parking on an event list.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    pub use crate::select;

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receiver_alive: AtomicBool,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiver disconnected; the message is handed back.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// All senders disconnected and the queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking receive outcome when no message is ready.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel is empty but senders remain.
        Empty,
        /// Channel is empty and every sender is gone.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receiver_alive: AtomicBool::new(true),
        });
        (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if !self.chan.receiver_alive.load(Ordering::Acquire) {
                return Err(SendError(value));
            }
            let mut q = self.chan.queue.lock().unwrap_or_else(|p| p.into_inner());
            q.push_back(value);
            drop(q);
            self.chan.ready.notify_all();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::AcqRel);
            Sender { chan: Arc::clone(&self.chan) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.chan.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|p| p.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.chan.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive; errors once every sender is gone and the
        /// queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.chan.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.chan.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.chan.ready.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan.receiver_alive.store(false, Ordering::Release);
        }
    }

    /// Polling `select!` over one or two `recv` arms. A disconnected
    /// channel counts as ready (its arm sees `Err(RecvError)`), matching
    /// crossbeam semantics. Arm bodies run *outside* the internal polling
    /// loop, so `break`/`continue` inside a body target the caller's
    /// enclosing loop exactly as with the real macro.
    #[macro_export]
    macro_rules! select {
        (
            recv($rx:expr) -> $pat:pat => $body:expr $(,)?
        ) => {{
            let __msg = $rx.recv();
            let $pat = __msg;
            $body
        }};
        (
            recv($rx1:expr) -> $pat1:pat => $body1:expr ,
            recv($rx2:expr) -> $pat2:pat => $body2:expr $(,)?
        ) => {{
            let __which;
            let mut __msg1 = ::core::option::Option::None;
            let mut __msg2 = ::core::option::Option::None;
            loop {
                match $rx1.try_recv() {
                    ::core::result::Result::Ok(v) => {
                        __msg1 =
                            ::core::option::Option::Some(::core::result::Result::Ok(v));
                        __which = 1usize;
                        break;
                    }
                    ::core::result::Result::Err(
                        $crate::channel::TryRecvError::Disconnected,
                    ) => {
                        __msg1 = ::core::option::Option::Some(::core::result::Result::Err(
                            $crate::channel::RecvError,
                        ));
                        __which = 1usize;
                        break;
                    }
                    ::core::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                }
                match $rx2.try_recv() {
                    ::core::result::Result::Ok(v) => {
                        __msg2 =
                            ::core::option::Option::Some(::core::result::Result::Ok(v));
                        __which = 2usize;
                        break;
                    }
                    ::core::result::Result::Err(
                        $crate::channel::TryRecvError::Disconnected,
                    ) => {
                        __msg2 = ::core::option::Option::Some(::core::result::Result::Err(
                            $crate::channel::RecvError,
                        ));
                        __which = 2usize;
                        break;
                    }
                    ::core::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                }
                ::std::thread::sleep(::std::time::Duration::from_micros(50));
            }
            if __which == 1 {
                let $pat1 = __msg1.expect("select!: arm 1 fired without a message");
                $body1
            } else {
                let $pat2 = __msg2.expect("select!: arm 2 fired without a message");
                $body2
            }
        }};
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};
    use crate::select;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn select_two_arms_with_break() {
        let (tx, rx) = unbounded::<i32>();
        let (stop_tx, stop_rx) = unbounded::<()>();
        tx.send(5).unwrap();
        stop_tx.send(()).unwrap();
        let mut seen = Vec::new();
        loop {
            select! {
                recv(rx) -> msg => match msg {
                    Ok(v) => seen.push(v),
                    Err(_) => break,
                },
                recv(stop_rx) -> _ => {
                    while let Ok(v) = rx.try_recv() {
                        seen.push(v);
                    }
                    break;
                }
            }
        }
        assert_eq!(seen, vec![5]);
    }

    #[test]
    fn select_sees_disconnect() {
        let (tx, rx) = unbounded::<i32>();
        let (_stop_tx, stop_rx) = unbounded::<()>();
        drop(tx);
        let mut disconnected = false;
        loop {
            select! {
                recv(rx) -> msg => match msg {
                    Ok(_) => {}
                    Err(_) => { disconnected = true; break; }
                },
                recv(stop_rx) -> _ => break,
            }
        }
        assert!(disconnected);
    }
}
