//! Offline vendored shim for `parking_lot`.
//!
//! The build environment has no network access, so the real crate
//! cannot be fetched; this shim exposes the (tiny) API surface the
//! workspace uses — a `Mutex` whose `lock` never returns a poison
//! error — implemented on top of `std::sync::Mutex`.

use std::fmt;
use std::sync::MutexGuard as StdGuard;

/// A mutex that, like `parking_lot::Mutex`, has no lock poisoning:
/// `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: StdGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. A panicked
    /// previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        MutexGuard { guard }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(v) => f.debug_struct("Mutex").field("data", &&*v).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn no_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
