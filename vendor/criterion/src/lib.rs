//! Offline vendored shim for `criterion`.
//!
//! The bench targets keep the real Criterion structure (groups,
//! `Bencher::iter`, `criterion_group!`/`criterion_main!`); this shim
//! runs each benchmark for a slice of the configured measurement time
//! and prints a mean per-iteration figure. When invoked by `cargo test`
//! (harness `--test` mode) each benchmark body runs exactly once, so
//! `cargo test -q` stays fast.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark driver; mirrors `criterion::Criterion` builder methods.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(200),
            sample_size: 20,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self, &id.0, f);
        self
    }
}

/// Label for one benchmark, convertible from strings and parameters.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a bench parameter (e.g. an input size).
    pub fn from_parameter<P: fmt::Display>(p: P) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, p: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), p))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, &label, f);
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, &label, |b| f(b, input));
        self
    }

    /// Ends the group (printing is per-benchmark in this shim).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly and records the mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(c: &Criterion, label: &str, mut f: F) {
    if c.test_mode {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        println!("test bench {label} ... ok");
        return;
    }
    // Calibrate: run once, then size the batch to roughly fill a share
    // of the measurement window.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = c.measurement_time / (c.sample_size.max(1) as u32);
    let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let samples = c.sample_size.clamp(1, 40);
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed / (iters as u32);
        best = best.min(per_iter);
        total += per_iter;
        if total > c.measurement_time * 4 {
            break;
        }
    }
    let mean = total / (samples as u32);
    println!(
        "bench {label:<50} best {best:>12?}  mean {mean:>12?}  ({iters} iters/sample)"
    );
}

/// Re-export so benches can use `criterion::black_box` if they wish.
pub use std::hint::black_box;

/// Declares a benchmark group; both the `name/config/targets` form and
/// the positional form are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
