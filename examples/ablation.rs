//! Ablation studies over the campaign engine and the wrapper policies.
//!
//! **Detector ablation** (`DESIGN.md` §4, `EXPERIMENTS.md` A1): what
//! silent-failure detection and pairwise validation each contribute to
//! the derived contracts.
//!
//! **Policy ablation** (`DESIGN.md` §14, `EXPERIMENTS.md` X7): the same
//! recorded crash cases replayed under Terminate vs Heal vs Oblivious
//! wrappers — requests survived vs corruption escaped per function,
//! with the no-silent-absorption audit contract checked on the
//! Oblivious arm.
//!
//! ```sh
//! cargo run --release --example ablation
//! cargo run --release --example ablation -- --oblivious-gate
//! ```
//!
//! `--oblivious-gate` runs only the policy ablation, twice, and exits
//! nonzero unless (a) both same-seed runs render byte-identically,
//! (b) Oblivious survives strictly more requests than Terminate, and
//! (c) every Oblivious survival is audited (zero unaudited escapes).

use healers::injector::{
    run_campaign, run_policy_ablation, targets_from_simlibc, AblationArm, CampaignConfig,
    TargetFn,
};
use healers::profiler::{render_ablation_report, AblationLine};
use healers::simproc::{CVal, Fault, Proc};
use healers::{
    process_factory, Policy, PolicyEngine, Toolkit, WrapperConfig, WrapperLibrary,
};

/// Wrapper-front dispatch: route through the wrapper when the function
/// is wrapped, fall back to the bare symbol otherwise.
fn front<'a>(
    lib: &'a WrapperLibrary,
    targets: &'a [TargetFn],
) -> impl FnMut(&str, &mut Proc, &[CVal]) -> Result<CVal, Fault> + 'a {
    move |name, p, a| match lib.get(name) {
        Some(w) => w.call(p, a),
        None => (targets.iter().find(|t| t.name == name).expect("target").imp)(p, a),
    }
}

/// One full policy-ablation run: campaign, three healing wrappers that
/// differ only in policy, replay, render. Deterministic in the seed.
fn policy_ablation() -> (String, Vec<AblationLine>) {
    let names = ["strlen", "strcpy", "strcat", "strstr", "memcpy"];
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| names.contains(&t.name.as_str()))
        .collect();
    let config =
        CampaignConfig { pair_values: 4, fuel: 300_000, ..CampaignConfig::default() };
    let campaign = run_campaign("libsimc.so.1", &targets, process_factory, &config);

    let toolkit = Toolkit::new();
    let healing = |policy: PolicyEngine| {
        toolkit.generate_healing_wrapper(
            &campaign.api,
            &WrapperConfig { policy: Some(policy), ..WrapperConfig::default() },
        )
    };
    let terminate = healing(PolicyEngine::terminating());
    let heal = healing(PolicyEngine::healing());
    let oblivious = healing(PolicyEngine::new(Policy::Oblivious));

    // The oblivious audit probe: every ledger entry (manufactured read,
    // suppressed write, tainted use, capped overflow) plus every healing
    // journal record counts as an audit trace.
    let audit = oblivious.oblivious.clone().expect("oblivious wrapper carries an audit");
    let journal = oblivious.journal.clone();
    let mut probe = move || {
        let s = audit.snapshot();
        journal.len() as u64
            + s.reads.len() as u64
            + s.writes.len() as u64
            + s.uses.len() as u64
            + s.dropped
    };

    let mut term_front = front(&terminate, &targets);
    let mut heal_front = front(&heal, &targets);
    let mut obl_front = front(&oblivious, &targets);
    let mut arms = [
        AblationArm { policy: "terminate", dispatch: &mut term_front, probe: None },
        AblationArm { policy: "heal", dispatch: &mut heal_front, probe: None },
        AblationArm {
            policy: "oblivious",
            dispatch: &mut obl_front,
            probe: Some(&mut probe),
        },
    ];
    let rows = run_policy_ablation(
        &campaign.crashes,
        &targets,
        process_factory,
        &config,
        &mut arms,
    );
    (render_ablation_report("libsimc.so.1", &rows), rows)
}

/// `--oblivious-gate`: the CI contract for the availability mode.
fn oblivious_gate() -> i32 {
    let (report_a, rows) = policy_ablation();
    let (report_b, _) = policy_ablation();
    print!("{report_a}");

    let mut failed = false;
    let mut check = |ok: bool, what: &str| {
        if ok {
            println!("gate: ok   - {what}");
        } else {
            println!("gate: FAIL - {what}");
            failed = true;
        }
    };
    check(report_a == report_b, "same-seed replays render byte-identically");
    let survived = |policy: &str| -> u64 {
        rows.iter().filter(|r| r.policy == policy).map(|r| r.survived).sum()
    };
    let (term, heal, obl) =
        (survived("terminate"), survived("heal"), survived("oblivious"));
    println!("gate: survived terminate={term} heal={heal} oblivious={obl}");
    check(obl > term, "oblivious survives strictly more requests than terminate");
    let unaudited: u64 = rows.iter().map(|r| r.unaudited_escapes).sum();
    check(unaudited == 0, "every oblivious absorption left an audit trace");
    i32::from(failed)
}

fn detector_ablation() {
    let names = ["strcpy", "strcat", "memcpy", "memset", "strncpy", "sprintf"];
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| names.contains(&t.name.as_str()))
        .collect();

    let variants: [(&str, CampaignConfig); 4] = [
        ("full (paper + both detectors)", CampaignConfig::default()),
        (
            "no silent detection",
            CampaignConfig { detect_silent: false, ..CampaignConfig::default() },
        ),
        (
            "no pairwise validation",
            CampaignConfig { validate_pairs: false, ..CampaignConfig::default() },
        ),
        (
            "neither (pure per-parameter Ballista)",
            CampaignConfig {
                detect_silent: false,
                validate_pairs: false,
                ..CampaignConfig::default()
            },
        ),
    ];

    println!("Ablation: what each detector contributes to the derived contracts\n");
    println!(
        "{:<38} {:>7} {:>9}   derived type of strcpy's dest",
        "variant", "tests", "failures"
    );
    println!("{}", "-".repeat(100));
    for (label, config) in variants {
        let result = run_campaign("libsimc.so.1", &targets, process_factory, &config);
        let strcpy = result.api.function("strcpy").unwrap();
        println!(
            "{:<38} {:>7} {:>9}   {}",
            label,
            result.total_tests(),
            result.total_failures(),
            strcpy.preds[0]
        );
    }

    println!();
    println!("Reading the table:");
    println!("  - without silent detection, in-arena overflows look like passes, so");
    println!("    dest degrades to a mere writability check — the wrapper would then");
    println!("    wave real overflows through;");
    println!("  - without pairwise validation, the relational failure (small dest x");
    println!("    long src) is never even exercised, with the same degradation;");
    println!("  - the full configuration derives the paper's relational contract.");
}

fn main() {
    if std::env::args().any(|a| a == "--oblivious-gate") {
        std::process::exit(oblivious_gate());
    }
    detector_ablation();
    println!();
    let (report, _) = policy_ablation();
    print!("{report}");
    println!();
    println!("Reading the policy table:");
    println!("  - terminate converts every violation into a contained refusal: nothing");
    println!("    corrupts, but no request survives;");
    println!("  - heal survives what argument repair can fix;");
    println!("  - oblivious survives the rest by manufacturing context-aware reads and");
    println!("    suppressing out-of-bounds writes — every absorption is on the audit");
    println!("    record, which is what makes the mode measurable rather than silent.");
}
