//! Ablation study over the two design choices the campaign engine adds
//! on top of the paper's description (see `DESIGN.md` §4 and
//! `EXPERIMENTS.md` A1):
//!
//! * **Silent-failure detection** — post-call heap-invariant checks that
//!   turn in-arena buffer overflows (which never touch an unmapped page)
//!   into observable failures;
//! * **Pairwise validation** — 2-way argument-combination testing that
//!   exposes relational failures like `strcpy(small_dst, long_src)`.
//!
//! ```sh
//! cargo run --release --example ablation
//! ```

use healers::injector::{run_campaign, targets_from_simlibc, CampaignConfig};
use healers::process_factory;

fn main() {
    let names = ["strcpy", "strcat", "memcpy", "memset", "strncpy", "sprintf"];
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| names.contains(&t.name.as_str()))
        .collect();

    let variants: [(&str, CampaignConfig); 4] = [
        ("full (paper + both detectors)", CampaignConfig::default()),
        (
            "no silent detection",
            CampaignConfig { detect_silent: false, ..CampaignConfig::default() },
        ),
        (
            "no pairwise validation",
            CampaignConfig { validate_pairs: false, ..CampaignConfig::default() },
        ),
        (
            "neither (pure per-parameter Ballista)",
            CampaignConfig {
                detect_silent: false,
                validate_pairs: false,
                ..CampaignConfig::default()
            },
        ),
    ];

    println!("Ablation: what each detector contributes to the derived contracts\n");
    println!(
        "{:<38} {:>7} {:>9}   derived type of strcpy's dest",
        "variant", "tests", "failures"
    );
    println!("{}", "-".repeat(100));
    for (label, config) in variants {
        let result = run_campaign("libsimc.so.1", &targets, process_factory, &config);
        let strcpy = result.api.function("strcpy").unwrap();
        println!(
            "{:<38} {:>7} {:>9}   {}",
            label,
            result.total_tests(),
            result.total_failures(),
            strcpy.preds[0]
        );
    }

    println!();
    println!("Reading the table:");
    println!("  - without silent detection, in-arena overflows look like passes, so");
    println!("    dest degrades to a mere writability check — the wrapper would then");
    println!("    wave real overflows through;");
    println!("  - without pairwise validation, the relational failure (small dest x");
    println!("    long src) is never even exercised, with the same degradation;");
    println!("  - the full configuration derives the paper's relational contract.");
}
