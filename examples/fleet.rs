//! The fleet demo: hundreds of simulated application instances running
//! under healing wrappers, shipping exit documents to the sharded
//! collection service, while the remediation director watches windowed
//! crash rates and walks `strcpy` up the escalation ladder — live, with
//! no rebuild and no restart.
//!
//! ```text
//! cargo run --release --example fleet -- --instances 256 --rounds 8
//! ```
//!
//! `--gate` exits nonzero unless the run is lossless (every expected
//! document merged, accounting balanced, nothing shed), the injected
//! burst drove the Observe → Contain → Heal escalation, and a same-seed
//! re-run renders a byte-identical fleet report — the CI fleet-smoke
//! contract.

use healers_core::{run_fleet_sim, FleetSimConfig};
use profiler::{EscalationLevel, RemedyAction};

fn arg_value(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let gate = args.iter().any(|a| a == "--gate");
    let config = FleetSimConfig {
        instances: arg_value(&args, "--instances").unwrap_or(256),
        rounds: arg_value(&args, "--rounds").unwrap_or(8),
        ..FleetSimConfig::default()
    };

    println!(
        "running fleet: {} instances x {} rounds, {} shards\n",
        config.instances, config.rounds, config.shards
    );
    let out = run_fleet_sim(&config);

    println!("{}", out.fleet_report);
    println!("{}", out.escalation_report);

    if !gate {
        return;
    }

    let mut failures = Vec::new();
    if !out.lossless() {
        failures.push(format!(
            "acked-submission loss: {} docs merged of {} expected, accounting {:?}",
            out.rollup.docs, out.expected_docs, out.accounting
        ));
    }
    let escalated_to = |to: EscalationLevel| {
        out.journal
            .iter()
            .any(|e| e.action == RemedyAction::Escalate && e.func == "strcpy" && e.to == to)
    };
    if !escalated_to(EscalationLevel::Contain) {
        failures.push("burst did not escalate strcpy to Contain".into());
    }
    if !escalated_to(EscalationLevel::Heal) {
        failures.push("residual crash rate did not escalate strcpy to Heal".into());
    }
    if out.journal.iter().any(|e| e.action == RemedyAction::Rollback) {
        failures.push("an improving escalation was rolled back".into());
    }

    // Same-seed determinism: a second run must render byte-identically.
    let rerun = run_fleet_sim(&config);
    if rerun.fleet_report != out.fleet_report {
        failures.push("same-seed re-run rendered a different fleet report".into());
    }
    if rerun.escalation_report != out.escalation_report {
        failures.push("same-seed re-run rendered a different escalation journal".into());
    }

    if failures.is_empty() {
        println!(
            "fleet gate OK: {} docs, {} crashes, {} escalation decisions, zero loss, deterministic",
            out.rollup.docs,
            out.rollup.crash_docs,
            out.journal.len()
        );
    } else {
        for f in &failures {
            eprintln!("fleet gate FAILED: {f}");
        }
        std::process::exit(1);
    }
}
