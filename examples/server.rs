//! The threaded-server demo: one simulated process, N worker threads
//! sharing an address space and heap, each handling a stream of requests
//! (parse → `malloc` → string processing → `free`) through the
//! security-wrapped C library, driven by a seeded load generator — with
//! cross-thread attacks (racing double-frees, canary smashes detected on
//! another worker's free) folded into the mix and contained in stride.
//!
//! ```text
//! cargo run --release --example server -- --workers 4 --requests 120000
//! ```
//!
//! `--gate` exits nonzero unless the run is lossless (every request
//! accounted: ok + rejected + contained, zero faulted, zero lost), the
//! adversarial mix was actually exercised and contained, and the
//! same-seed canonical report and telemetry XML are byte-identical at
//! 1, 4 and 8 workers — the CI server-smoke contract.

use healers_core::{run_server_sim, ServerConfig};

fn arg_value(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let gate = args.iter().any(|a| a == "--gate");
    let config = ServerConfig {
        workers: arg_value(&args, "--workers").unwrap_or(4) as usize,
        requests: arg_value(&args, "--requests").unwrap_or(120_000),
        seed: arg_value(&args, "--seed").unwrap_or(0xD00D_F00D),
        ..ServerConfig::default()
    };

    println!(
        "running simserved: {} workers x {} requests (seed {:#x})\n",
        config.workers, config.requests, config.seed
    );
    let out = run_server_sim(&config);

    println!("{}", out.canonical);
    println!("per-worker split (not part of the canonical report):");
    for (w, n) in out.per_worker.iter().enumerate() {
        println!("  worker-{w}: {n} requests");
    }

    if !gate {
        return;
    }

    let mut failures = Vec::new();
    if config.workers < 4 || config.requests < 100_000 {
        failures.push(format!(
            "gate needs >=4 workers and >=100k requests, got {} x {}",
            config.workers, config.requests
        ));
    }
    if out.lost != 0 {
        failures.push(format!("{} requests lost/unaccounted", out.lost));
    }
    if out.handled != config.requests {
        failures.push(format!("handled {} of {} requests", out.handled, config.requests));
    }
    if out.faulted != 0 {
        failures.push(format!(
            "{} requests died on uncontained faults under the wrapper",
            out.faulted
        ));
    }
    if out.contained == 0 {
        failures.push("adversarial mix was never exercised (0 contained)".into());
    }
    if out.quarantined == 0 {
        failures.push("no smash was detected/quarantined".into());
    }

    // Merge discipline: the same seed must render byte-identical
    // canonical reports and telemetry XML at any worker count.
    for workers in [1usize, 4, 8] {
        let rerun = run_server_sim(&ServerConfig { workers, ..config.clone() });
        if rerun.canonical != out.canonical {
            failures
                .push(format!("canonical report differs at {workers} workers (same seed)"));
        }
        if rerun.telemetry_xml != out.telemetry_xml {
            failures
                .push(format!("telemetry XML differs at {workers} workers (same seed)"));
        }
    }

    if failures.is_empty() {
        println!("GATE OK: lossless, contained, worker-count invariant");
    } else {
        for f in &failures {
            eprintln!("GATE FAIL: {f}");
        }
        std::process::exit(1);
    }
}
