//! Safer-variant substitution, end to end: prove the rewrites sound,
//! reroute the fragile writers, and measure overflows moving from
//! *canary-detected* to *prevented outright*.
//!
//! ```sh
//! cargo run --release --example substitute                 # full demo
//! cargo run --release --example substitute -- --lint-gate  # CI gate
//! ```
//!
//! 1. Derive the robust API and infer static contracts for
//!    `libsimc.so.1`.
//! 2. Run the flow-sensitive substitution analysis over the security
//!    wrapper's call models: every proof obligation must discharge for
//!    `strcpy`, `strcat` and `sprintf`.
//! 3. Build the `Substitute` wrapper from the proven plans and replay
//!    the campaign's crash cases through the detecting and substituting
//!    arms — the prevented-vs-detected breakdown, rendered
//!    byte-identically across same-seed runs.
//! 4. Check byte-level equivalence on in-contract calls (same seeds,
//!    same buffers, identical return/errno/destination bytes) — a
//!    single divergence is an unsound substitution and fails the gate.
//! 5. Lint every wrapper kind including `Substitute`; any finding,
//!    divergence or missing proof exits nonzero under `--lint-gate`.

use healers::injector::{
    run_substitution_trial, targets_from_simlibc, CampaignConfig, SubstitutionArms,
};
use healers::profiler::render_substitution_report;
use healers::{
    analyzer, process_factory, simlibc, simproc, HealAction, Toolkit, WrapperConfig,
    WrapperKind,
};
use simproc::{CVal, Proc};

fn gate(ok: bool, what: &str) {
    if !ok {
        eprintln!("FAIL: {what}");
        std::process::exit(1);
    }
}

fn main() {
    let lint_gate = std::env::args().any(|a| a == "--lint-gate");
    let toolkit = Toolkit::new();
    let config = CampaignConfig::default();

    // --- 1. campaign + contracts ---------------------------------------
    println!("== Step 1: robust API and static contracts ==\n");
    let targets = targets_from_simlibc();
    let protos: Vec<_> = targets.iter().map(|t| t.proto.clone()).collect();
    let base = analyzer::infer_contracts("libsimc.so.1", &protos, &simlibc::man_page);
    let result =
        healers::injector::run_campaign("libsimc.so.1", &targets, process_factory, &config);
    println!(
        "{} functions probed, {} crash cases recorded\n",
        result.api.functions.len(),
        result.crashes.len()
    );

    // --- 2. the flow-sensitive substitution analysis --------------------
    println!("== Step 2: substitution analysis over the security wrapper ==\n");
    let security = toolkit.generate_wrapper(
        WrapperKind::Security,
        &result.api,
        &WrapperConfig::default(),
    );
    let analysis = toolkit.analyze_substitutions(&security, Some(&base));
    print!("{}", analysis.to_text());
    let proven: Vec<&str> = analysis.plans.iter().map(|p| p.func.as_str()).collect();
    gate(
        proven == ["sprintf", "strcat", "strcpy"],
        &format!("proofs must discharge for all three fragile writers, got {proven:?}"),
    );

    // --- 3. prevented vs detected on identical crash cases --------------
    println!("\n== Step 3: substitution trial (prevented vs detected) ==\n");
    let substitute = toolkit.generate_substitute_wrapper(
        &result.api,
        &WrapperConfig::default(),
        &analysis.plans,
    );
    let journal = std::sync::Arc::clone(&substitute.journal);
    let run_trial = || {
        let mut det = |n: &str, p: &mut Proc, a: &[CVal]| match security.get(n) {
            Some(w) => w.call(p, a),
            None => (targets.iter().find(|t| t.name == n).unwrap().imp)(p, a),
        };
        let mut refr = |n: &str, p: &mut Proc, a: &[CVal]| match security.get(n) {
            Some(w) => w.call(p, a),
            None => (targets.iter().find(|t| t.name == n).unwrap().imp)(p, a),
        };
        let mut sub = |n: &str, p: &mut Proc, a: &[CVal]| match substitute.get(n) {
            Some(w) => w.call(p, a),
            None => match security.get(n) {
                Some(w) => w.call(p, a),
                None => (targets.iter().find(|t| t.name == n).unwrap().imp)(p, a),
            },
        };
        let mut probe = || {
            journal.snapshot().iter().filter(|e| e.action == HealAction::Prevented).count()
                as u64
        };
        let mut arms = SubstitutionArms {
            detect: &mut det,
            substitute: &mut sub,
            reference: &mut refr,
            prevented_probe: &mut probe,
        };
        let summary = run_substitution_trial(
            &result.crashes,
            &targets,
            process_factory,
            &config,
            &mut arms,
        );
        let report =
            render_substitution_report("libsimc.so.1", &summary.lines, &analysis.plans);
        (summary, report)
    };
    let (summary, report) = run_trial();
    let (_, report2) = run_trial();
    print!("{report}");
    gate(report == report2, "same-seed substitution reports must be byte-identical");
    gate(
        summary.divergences.is_empty(),
        &format!("unsound substitution: {:?}", summary.divergences),
    );
    let prevented: u64 = summary.lines.iter().map(|l| l.prevented).sum();
    let detected: u64 = summary.lines.iter().map(|l| l.detected).sum();
    gate(
        prevented > 0 && detected > 0,
        "at least one overflow class must convert from detected to prevented",
    );

    // --- 4. byte-level equivalence on in-contract calls ------------------
    println!("\n== Step 4: in-contract byte equivalence ==\n");
    let cases: &[(&str, &[&str])] = &[
        ("strcpy", &["hello, substitution"]),
        ("strcat", &[", appended"]),
        ("sprintf", &["%s/%d", "path"]),
    ];
    for (func, parts) in cases {
        let bare = targets.iter().find(|t| t.name == *func).unwrap().imp;
        let wrapped = substitute.get(func).expect("proven function is wrapped");
        type Call<'c> = &'c dyn Fn(&mut Proc, &[CVal]) -> Result<CVal, simproc::Fault>;
        let run = |call: Call<'_>| {
            let mut p = process_factory();
            let dst = simlibc::heap::malloc(&mut p, 64).unwrap();
            p.write_cstr(dst, b"seed").unwrap();
            let mut args = vec![CVal::Ptr(dst)];
            for part in *parts {
                let a = p.alloc_cstr(part);
                args.push(CVal::Ptr(a));
            }
            if *func == "sprintf" {
                args.push(CVal::Int(42));
            }
            let ret = call(&mut p, &args);
            (ret, p.errno(), p.read_cstr_lossy(dst))
        };
        let reference = run(&|p, a| bare(p, a));
        let substituted = run(&|p, a| wrapped.call(p, a));
        gate(
            reference == substituted,
            &format!("in-contract divergence on {func}: {reference:?} vs {substituted:?}"),
        );
        println!("{func:<8} identical: ret {:?}, dst `{}`", reference.0, reference.2);
    }
    gate(
        journal
            .snapshot()
            .iter()
            .all(|e| e.action != HealAction::Prevented || e.detail.contains("clip")),
        "every prevented event must journal its clip",
    );

    // --- 5. lint every wrapper kind, including Substitute ----------------
    println!("\n== Step 5: wrapper-soundness lint (all kinds + substitute) ==\n");
    let mut findings = analyzer::lint_contracts(&base);
    let kinds = [
        WrapperKind::Robustness,
        WrapperKind::Security,
        WrapperKind::Healing,
        WrapperKind::Profiling,
        WrapperKind::Tracing,
    ];
    let mut modelled = 0usize;
    for kind in kinds {
        let wrapper =
            toolkit.generate_wrapper(kind, &result.api, &WrapperConfig::default());
        modelled += wrapper.len();
        findings.extend(toolkit.lint_wrapper(&wrapper));
    }
    // The substitute wrapper must stay fully lintable: every model
    // describes real check/mutate ops, never an opaque fallback.
    for (name, f) in substitute.iter() {
        modelled += 1;
        let model = f.call_model();
        gate(
            !model.ops.is_empty()
                && !model
                    .ops
                    .iter()
                    .any(|op| matches!(op.op, healers::wrappergen::HookOp::Opaque)),
            &format!("substitute wrapper for {name} went unlintable"),
        );
    }
    findings.extend(toolkit.lint_wrapper(&substitute));
    print!("{}", analyzer::render_findings("libsimc.so.1 (incl. substitute)", &findings));
    println!("{modelled} wrapper models linted");
    if !findings.is_empty() {
        std::process::exit(1);
    }
    let _ = lint_gate; // every gate above is fatal in both modes
    println!("\nsubstitution gate: all proofs discharged, zero divergences");
}
