//! Static analysis pass: contract inference, ladder pre-seeding and the
//! wrapper-soundness lint.
//!
//! ```sh
//! cargo run --release --example analyze              # full demo
//! cargo run --release --example analyze -- --lint-gate   # CI: exit 1 on findings
//! ```
//!
//! 1. Infer contracts for `libsimc.so.1` from prototypes + man pages.
//! 2. Run the fault-injection campaign twice — plain and pre-seeded by
//!    the contracts — and show that the verdicts are identical while the
//!    seeded run injects measurably fewer cases (the pruned counts).
//! 3. Generate every standard wrapper kind and run the soundness lint
//!    over their call models; `--lint-gate` exits nonzero on any finding.

use healers::analyzer;
use healers::injector::{
    run_campaign, run_campaign_with_hints, targets_from_simlibc, CampaignConfig,
};
use healers::{process_factory, simlibc, Toolkit, WrapperConfig, WrapperKind};

fn main() {
    let lint_gate = std::env::args().any(|a| a == "--lint-gate");
    let toolkit = Toolkit::new();
    let config = CampaignConfig::default();

    // --- 1. static contract inference ----------------------------------
    println!("== Step 1: static contract inference ==\n");
    let targets = targets_from_simlibc();
    let protos: Vec<_> = targets.iter().map(|t| t.proto.clone()).collect();
    let base = analyzer::infer_contracts("libsimc.so.1", &protos, &simlibc::man_page);
    let text = base.to_text();
    if lint_gate {
        println!("{} functions in the fact base", base.functions.len());
    } else {
        for line in text.lines().take(28) {
            println!("{line}");
        }
        println!("  ... ({} lines total)\n", text.lines().count());
    }

    // --- 2. contract-seeded campaign vs the plain one -------------------
    println!("== Step 2: ladder pre-seeding (pruned injection cases) ==\n");
    let hints = analyzer::ladder_hints(&base, &protos);
    let plain = run_campaign("libsimc.so.1", &targets, process_factory, &config);
    let seeded =
        run_campaign_with_hints("libsimc.so.1", &targets, process_factory, &config, &hints);
    if seeded.api.to_xml() != plain.api.to_xml() {
        eprintln!("FAIL: contract-seeded campaign changed the robust-API verdicts");
        std::process::exit(1);
    }
    println!(
        "verdicts identical; seeded campaign ran {} cases vs {} ({} pruned by contracts)",
        seeded.executed_cases(),
        plain.executed_cases(),
        seeded.total_pruned()
    );
    if !lint_gate {
        println!("\nper-function pruning (functions with a contract floor):");
        for r in seeded.reports.iter().filter(|r| r.pruned > 0) {
            println!("  {:<14} {:>5} cases pruned", r.name, r.pruned);
        }
    }

    // --- 3. the wrapper-soundness lint ----------------------------------
    println!("\n== Step 3: wrapper-soundness lint over generated wrappers ==\n");
    let mut findings = analyzer::lint_contracts(&base);
    let kinds = [
        WrapperKind::Robustness,
        WrapperKind::Security,
        WrapperKind::Healing,
        WrapperKind::Profiling,
        WrapperKind::Tracing,
    ];
    for kind in kinds {
        let wrapper =
            toolkit.generate_wrapper(kind, &seeded.api, &WrapperConfig::default());
        findings.extend(toolkit.lint_wrapper(&wrapper));
    }
    if let Some((math, math_base)) =
        toolkit.derive_robust_api_with_contracts("libsimm.so.1")
    {
        findings.extend(analyzer::lint_contracts(&math_base));
        let wrapper = toolkit.generate_wrapper(
            WrapperKind::Robustness,
            &math.api,
            &WrapperConfig::default(),
        );
        findings.extend(toolkit.lint_wrapper(&wrapper));
    }
    print!("{}", analyzer::render_findings("libsimc.so.1 + libsimm.so.1", &findings));
    if !findings.is_empty() {
        std::process::exit(1);
    }
}
