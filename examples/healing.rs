//! Self-healing wrappers: repair the arguments, don't just refuse them.
//!
//! ```sh
//! cargo run --release --example healing
//! ```
//!
//! 1. Fault-inject a slice of `libsimc.so.1` to derive its robust API.
//! 2. Generate BOTH a containment (robustness) wrapper and a healing
//!    wrapper from the same API.
//! 3. Replay every recorded crash through each and compare the outcome
//!    distributions: healing converts contained calls into passes.
//! 4. Print the healing audit journal — every repair is accounted for.

use healers::injector::{replay_cases, run_campaign, targets_from_simlibc, CampaignConfig};
use healers::simproc::{CVal, Fault, Proc};
use healers::{
    process_factory, Policy, PolicyEngine, Toolkit, WrapperConfig, WrapperKind,
    WrapperLibrary,
};

fn dispatch_through(
    wrapper: &WrapperLibrary,
) -> impl FnMut(&str, &mut Proc, &[CVal]) -> Result<CVal, Fault> + '_ {
    move |name, p, args| match wrapper.get(name) {
        Some(w) => w.call(p, args),
        None => (healers::simlibc::find_symbol(name).unwrap().imp)(p, args),
    }
}

fn main() {
    let toolkit = Toolkit::new();
    let cfg = CampaignConfig { pair_values: 6, fuel: 400_000, ..CampaignConfig::default() };

    // --- 1. derive the robust API --------------------------------------
    println!("== Step 1: fault-injection campaign ==\n");
    let names = [
        "strlen", "strcpy", "strcat", "strcmp", "strchr", "strdup", "memcpy", "memset",
        "atoi", "free", "puts",
    ];
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| names.contains(&t.name.as_str()))
        .collect();
    let campaign = run_campaign("libsimc.so.1", &targets, process_factory, &cfg);
    println!(
        "{} injected calls, {} failures recorded\n",
        campaign.total_tests(),
        campaign.total_failures()
    );

    // --- 2. generate both wrappers -------------------------------------
    println!("== Step 2: containment wrapper vs healing wrapper ==\n");
    let containment = toolkit.generate_wrapper(
        WrapperKind::Robustness,
        &campaign.api,
        &WrapperConfig::default(),
    );
    // The policy engine is configurable per function and per violation
    // class; here `free` degrades to Oblivious (drop the call) while
    // everything else heals and retries.
    let policy = PolicyEngine::healing().with_func("free", Policy::Oblivious);
    let healing = toolkit.generate_healing_wrapper(
        &campaign.api,
        &WrapperConfig { policy: Some(policy), ..WrapperConfig::default() },
    );
    println!("--- healing wrapper source (excerpt) ---");
    for line in healing.source.lines().take(24) {
        println!("{line}");
    }
    println!("...\n");

    // --- 3. replay the crash corpus through both ------------------------
    println!("== Step 3: outcome distributions over the crash corpus ==\n");
    let contained_summary = {
        let mut d = dispatch_through(&containment);
        replay_cases(&campaign.crashes, &targets, process_factory, &cfg, &mut d)
    };
    let healed_summary = {
        let mut d = dispatch_through(&healing);
        replay_cases(&campaign.crashes, &targets, process_factory, &cfg, &mut d)
    };
    println!("containment: {:?}", contained_summary.histogram);
    println!("healing:     {:?}\n", healed_summary.histogram);
    assert_eq!(healed_summary.still_failing, 0);

    // --- 4. the audit journal -------------------------------------------
    println!("== Step 4: healing audit journal ==\n");
    let events = healing.journal.snapshot();
    let report = healers::profiler::render_report_with_healing(
        "healing-demo",
        &healers::profiler::Snapshot::default(),
        &events,
    );
    // The per-event log is long; print the summary head.
    for line in report.lines().skip(2).take(14) {
        println!("{line}");
    }
    println!("... ({} events total)", events.len());
}
