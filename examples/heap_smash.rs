//! The paper's §3.4 demonstration: "It first shows that an attacker can
//! hijack the control flow of a root privileged program by overflowing a
//! buffer allocated on the heap. This results in a root shell for the
//! attacker. ... Then we show that our security wrapper can detect such
//! buffer overflows and terminate the attacker's program."
//!
//! ```sh
//! cargo run --release --example heap_smash
//! ```
//!
//! The victim is a setuid-root "request daemon" with a classic bug: it
//! `fread`s up to 256 bytes of request into a 64-byte heap buffer. The
//! attack overflows into the adjacent free chunk's boundary tags so that
//! `free()`'s unlink macro writes the payload's address over the `atexit`
//! handler table; `exit()` then jumps into the attacker's shellcode.

use healers::injector::{run_campaign, targets_from_simlibc, CampaignConfig};
use healers::interpose::{Executable, Session};
use healers::simlibc::state::ATEXIT_TABLE;
use healers::simproc::{CVal, Fault, SHELLCODE_MAGIC};
use healers::{process_factory, Toolkit, WrapperConfig, WrapperKind};

/// The victim's `atexit` logger (innocent cleanup code).
fn logger(p: &mut healers::simproc::Proc, _args: &[CVal]) -> Result<CVal, Fault> {
    p.kernel.stdout.extend_from_slice(b"[netd] clean shutdown\n");
    Ok(CVal::Void)
}

/// The vulnerable daemon. The bug: `fread(session, 1, 256, req)` into a
/// 64-byte allocation.
fn netd_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
    let banner = s.literal("[netd] accepting request");
    s.call("puts", &[CVal::Ptr(banner)])?;

    // Open the request first (the FILE object is allocated before the
    // session buffers, so the grooming below stays adjacent). The handle
    // is never closed — the daemon leaks it, like so many did.
    let path = s.literal("request.bin");
    let mode = s.literal("rb");
    let f = s.call("fopen", &[CVal::Ptr(path), CVal::Ptr(mode)])?;
    if f.is_null() {
        let msg = s.literal("[netd] no request");
        s.call("puts", &[CVal::Ptr(msg)])?;
        s.call("exit", &[CVal::Int(1)])?;
    }

    // Allocation pattern: session next to a freed spare chunk.
    let session = s.malloc(64)?;
    let spare = s.malloc(64)?;
    let _pin = s.malloc(16)?;
    s.call("free", &[CVal::Ptr(spare)])?;

    // The info leak every 2003 daemon had somewhere in its logs.
    let fmt = s.literal("[netd] session buffer at %p\n");
    s.call("printf", &[CVal::Ptr(fmt), CVal::Ptr(session)])?;

    // Register innocent cleanup.
    let logger_addr = s.proc().register_host_fn("netd_logger", logger);
    s.call("atexit", &[CVal::Ptr(logger_addr)])?;

    // Process the request: THE BUG — up to 256 bytes into 64.
    s.call("fread", &[CVal::Ptr(session), CVal::Int(1), CVal::Int(256), f])?;

    // Done with the session.
    s.call("free", &[CVal::Ptr(session)])?;
    s.call("exit", &[CVal::Int(0)])?;
    unreachable!("exit does not return")
}

fn netd(request: Option<Vec<u8>>) -> Executable {
    let mut exe = Executable::new(
        "netd",
        &["libsimc.so.1"],
        &["puts", "printf", "malloc", "free", "atexit", "fopen", "fread", "fclose", "exit"],
        netd_entry,
    )
    .setuid();
    // Ship the request file with the executable description by installing
    // it via a tiny pre-main: we wrap entry to install the file first.
    // (The simulated kernel has no shared filesystem between runs.)
    exe.entry = match request {
        Some(_) => netd_with_attack_entry,
        None => netd_with_benign_entry,
    };
    // Stash the request where the pre-main entries can find it.
    *REQUEST.lock().unwrap() = request;
    exe
}

static REQUEST: std::sync::Mutex<Option<Vec<u8>>> = std::sync::Mutex::new(None);

fn netd_with_benign_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
    s.proc().kernel.install_file("request.bin", b"GET /status".to_vec());
    netd_entry(s)
}

fn netd_with_attack_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
    let payload = REQUEST.lock().unwrap().clone().expect("attack payload");
    s.proc().kernel.install_file("request.bin", payload);
    netd_entry(s)
}

/// Crafts the unlink payload for a session buffer at `session_addr`.
///
/// Layout (offsets from the session buffer):
/// ```text
///   0..16   clobbered by unlink/insert — the "jump over" bytes
///  16..27   SHELLCODE_MAGIC (the simulated payload)
///  27..64   filler
///  64..72   spare chunk's prev_size  (don't care)
///  72..80   spare chunk's size|flags (must stay 80|PREV_INUSE)
///  80..88   spare chunk's fd  = &atexit_slot0 - 8
///  88..96   spare chunk's bk  = session buffer address
/// ```
/// `free(session)` forward-coalesces with the "free" spare chunk and
/// unlink performs `*(fd+8) = bk` — writing the session address over the
/// atexit slot — and `*bk = fd`, clobbering the payload's first 8 bytes
/// (hence the magic at offset 16).
fn craft_payload(session_addr: u64) -> Vec<u8> {
    let mut p = vec![0x90u8; 96];
    p[16..16 + SHELLCODE_MAGIC.len()].copy_from_slice(SHELLCODE_MAGIC);
    p[64..72].copy_from_slice(&0u64.to_le_bytes());
    p[72..80].copy_from_slice(&(80u64 | 1).to_le_bytes());
    p[80..88].copy_from_slice(&(ATEXIT_TABLE.get() - 8).to_le_bytes());
    p[88..96].copy_from_slice(&session_addr.to_le_bytes());
    p
}

fn parse_leaked_address(stdout: &str) -> u64 {
    let line = stdout.lines().find(|l| l.contains("session buffer at")).expect("info leak");
    let hex = line.rsplit("0x").next().expect("hex");
    u64::from_str_radix(hex.trim(), 16).expect("address")
}

fn main() {
    let toolkit = Toolkit::new();

    println!("== Phase 1: reconnaissance (benign request, read the log) ==\n");
    let recon = toolkit.run(&netd(None)).expect("links");
    println!("{}", recon.stdout);
    let session_addr = parse_leaked_address(&recon.stdout);
    println!("attacker learned: session buffer at {session_addr:#x}\n");

    println!("== Phase 2: the attack against the unprotected daemon ==\n");
    let payload = craft_payload(session_addr);
    let owned = toolkit.run(&netd(Some(payload.clone()))).expect("links");
    println!("{}", owned.stdout);
    println!("daemon status: {:?}", owned.status);
    println!("root shell spawned: {}", owned.shell_spawned);
    assert!(
        owned.shell_spawned,
        "the unlink attack must hijack control flow on the unprotected daemon"
    );
    println!("\n*** the attacker owns the box ***\n");

    println!("== Phase 3: the same attack against the security wrapper ==\n");
    let campaign = run_campaign(
        "libsimc.so.1",
        &targets_from_simlibc(),
        process_factory,
        &CampaignConfig::default(),
    );
    let wrapper = toolkit.generate_wrapper(
        WrapperKind::Security,
        &campaign.api,
        &WrapperConfig {
            // Keep the last calls in a flight recorder so the fault
            // report shows what the daemon was doing when it died.
            flight_recorder: Some(8),
            ..WrapperConfig::default()
        },
    );
    println!(
        "security wrapper interposes {} functions (canaries on the allocator family)\n",
        wrapper.len()
    );
    let protected =
        toolkit.run_protected(&netd(Some(payload)), &[&wrapper]).expect("links");
    println!("{}", protected.stdout);
    println!("daemon status: {:?}", protected.status);
    println!("root shell spawned: {}", protected.shell_spawned);
    assert!(
        matches!(protected.status, Err(Fault::SecurityViolation { .. })),
        "the wrapper must detect the overflow and terminate the process"
    );
    assert!(!protected.shell_spawned, "no shell for the attacker");

    let fault = protected.status.as_ref().unwrap_err().to_string();
    let recorder = wrapper.recorder.as_ref().expect("flight recorder enabled");
    println!(
        "{}",
        healers::profiler::render_fault_report("netd", &fault, &recorder.tail())
    );
    println!("*** attack detected, process terminated before the hijack ***");
}
