//! The paper's §3.2 demonstration (Figure 4): "This demo is
//! application-centric. ... Our toolkit can automatically extract the
//! list of libraries linked to this application as well as the list of
//! undefined functions in the application."
//!
//! ```sh
//! cargo run --release --example app_inspect
//! ```

use healers::interpose::{app_info_xml, render_app_info, Executable, Session};
use healers::simproc::Fault;
use healers::Toolkit;

fn noop_entry(_s: &mut Session<'_>) -> Result<i32, Fault> {
    Ok(0)
}

fn main() {
    let toolkit = Toolkit::new();

    // The §3.1 library-centric view first: "Our toolkit can list all
    // libraries in the system."
    println!("== Libraries installed in the system (paper §3.1) ==\n");
    for (soname, nfuncs) in toolkit.list_libraries() {
        println!("  {soname:<16} {nfuncs:>4} functions");
    }
    println!();

    // Three applications of different shapes (the Figure 1 trio).
    let apps = [
        Executable::new(
            "netd",
            &["libsimc.so.1"],
            &["malloc", "free", "strcpy", "fread", "exit", "atexit"],
            noop_entry,
        )
        .setuid(),
        Executable::new(
            "wordcount",
            &["libsimc.so.1"],
            &["fopen", "fread", "strtok", "strcmp", "qsort", "printf", "exit"],
            noop_entry,
        ),
        Executable::new(
            "statcalc",
            &["libsimc.so.1", "libsimm.so.1", "libfancy.so.3"],
            &["atof", "msqrt", "mnorm", "printf", "render_gui"],
            noop_entry,
        ),
    ];

    println!("== Application-centric inspection (paper §3.2, Figure 4) ==\n");
    for exe in &apps {
        let info = toolkit.analyze_executable(exe);
        println!("{}", render_app_info(&info));
        if info.setuid_root {
            println!(
                "  -> runs with root privilege: HEALERS recommends the SECURITY wrapper\n"
            );
        } else {
            println!("  -> user application: robustness or profiling wrapper\n");
        }
    }

    // The machine-readable form.
    let info = toolkit.analyze_executable(&apps[2]);
    println!("--- XML form for `statcalc` ---");
    println!("{}", app_info_xml(&info));

    // Sanity assertions for `cargo test --examples`-style smoke usage.
    assert!(info.libraries.iter().any(|(l, ok)| l == "libfancy.so.3" && !ok));
    assert!(info
        .undefined
        .iter()
        .any(|(s, p)| s == "msqrt" && p.as_deref() == Some("libsimm.so.1")));
    assert!(info.undefined.iter().any(|(s, p)| s == "render_gui" && p.is_none()));
}
