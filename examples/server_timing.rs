//! Threaded-server benchmark: wrapped vs raw request throughput, and
//! per-thread scale-out with shared telemetry.
//!
//! Two measurements:
//!
//! * **Overhead** — the same clean request mix through the
//!   security-wrapped C library vs the bare one, single shard. The
//!   difference is the per-request price of canaries plus terminating
//!   extent checks.
//! * **Scale-out** — 1/2/4/8 **real** host threads, each running an
//!   independent protected server shard (its own simulated process and
//!   wrapper), all recording service telemetry into one shared sharded
//!   [`Stats`] and one shared [`FlightRecorder`]. The merge must be
//!   lossless under genuine parallelism (asserted), and throughput
//!   should scale with cores.
//!
//! Run with `--json` to emit a machine-readable summary (all values
//! integers, suitable for `BENCH_server.json` and the CI perf-smoke
//! gate). `speedup2_x100` is the 2-thread/1-thread throughput ratio
//! times 100; on a 1-core host both serialize and it sits near 100,
//! which is why the CI gate only enforces it on multi-core runners.

use std::sync::Arc;
use std::time::Instant;

use healers_core::{run_server_sim, run_server_sim_with, ServerConfig};
use profiler::{FlightRecorder, Stats};

const OVERHEAD_REQUESTS: u64 = 40_000;
const SCALE_REQUESTS_PER_SHARD: u64 = 10_000;

fn clean_config(requests: u64, seed: u64) -> ServerConfig {
    ServerConfig { workers: 4, requests, seed, protected: true, adversarial: false }
}

/// Requests per second of one run.
fn bench_one(cfg: &ServerConfig) -> u64 {
    let t0 = Instant::now();
    let rep = run_server_sim(cfg);
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(rep.lost, 0, "bench run lost requests");
    (cfg.requests as f64 / elapsed) as u64
}

/// Scale-out: `threads` real host threads, each a protected server
/// shard with the full adversarial mix, recording into the shared
/// sinks. Returns requests/s across all shards.
fn bench_scale(threads: usize, stats: &Arc<Stats>, flight: &Arc<FlightRecorder>) -> u64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let stats = Arc::clone(stats);
            let flight = Arc::clone(flight);
            scope.spawn(move || {
                let cfg = ServerConfig {
                    workers: 4,
                    requests: SCALE_REQUESTS_PER_SHARD,
                    seed: 0xBADC_0FFE ^ t as u64,
                    protected: true,
                    adversarial: true,
                };
                let rep = run_server_sim_with(&cfg, Some(&stats), Some(&flight));
                assert_eq!(rep.lost, 0, "shard {t} lost requests");
                assert_eq!(rep.faulted, 0, "shard {t} leaked a fault");
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    ((threads as u64 * SCALE_REQUESTS_PER_SHARD) as f64 / elapsed) as u64
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Warm-up pass (allocator, branch predictors, wrapper codegen).
    run_server_sim(&clean_config(2_000, 1));

    let wrapped = bench_one(&clean_config(OVERHEAD_REQUESTS, 7));
    let raw =
        bench_one(&ServerConfig { protected: false, ..clean_config(OVERHEAD_REQUESTS, 7) });
    let overhead_pct = if wrapped > 0 {
        ((raw as i64 - wrapped as i64) * 100 / wrapped.max(1) as i64).max(0)
    } else {
        0
    };

    let stats = Arc::new(Stats::default());
    let flight = Arc::new(FlightRecorder::new(64));
    let mut scale = Vec::new();
    let mut expected = 0u64;
    for threads in [1usize, 2, 4, 8] {
        scale.push((threads, bench_scale(threads, &stats, &flight)));
        expected += threads as u64 * SCALE_REQUESTS_PER_SHARD;
    }
    // The sharded merge under real parallelism must be lossless, and
    // the flight recorder must have seen the contained attacks.
    let total = stats.snapshot().total_calls();
    assert_eq!(total, expected, "service telemetry lost records in the merge");
    assert!(!flight.tail().is_empty(), "no contained request reached the recorder");

    let s1 = scale[0].1.max(1);
    let speedup2_x100 = scale[1].1 * 100 / s1;

    if json {
        println!("{{");
        println!("  \"requests\": {OVERHEAD_REQUESTS},");
        println!("  \"wrapped_req_per_s\": {wrapped},");
        println!("  \"raw_req_per_s\": {raw},");
        println!("  \"wrapper_overhead_pct\": {overhead_pct},");
        for (threads, rate) in &scale {
            println!("  \"scale{threads}_req_per_s\": {rate},");
        }
        println!("  \"speedup2_x100\": {speedup2_x100},");
        println!("  \"cores\": {cores}");
        println!("}}");
    } else {
        println!("threaded server benchmark ({cores} cores)");
        println!("  wrapped: {wrapped} req/s");
        println!("  raw:     {raw} req/s  (wrapper overhead {overhead_pct}%)");
        for (threads, rate) in &scale {
            println!("  scale-out x{threads}: {rate} req/s");
        }
        println!("  2-thread speedup: {speedup2_x100} (x100)");
        println!("  service telemetry merged losslessly: {total} records");
    }
}
