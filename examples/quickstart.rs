//! Quickstart: the whole HEALERS pipeline on one function family.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! 1. Fault-inject a few `libsimc.so.1` string functions to derive their
//!    robust APIs.
//! 2. Generate a robustness wrapper from the result.
//! 3. Run a fragile application twice — unprotected (it crashes) and with
//!    the wrapper preloaded (it survives).

use healers::injector::{render_table, run_campaign, targets_from_simlibc, CampaignConfig};
use healers::interpose::{Executable, Session};
use healers::simproc::{CVal, Fault};
use healers::{process_factory, Toolkit, WrapperConfig, WrapperKind};

/// A little application with a classic bug: it never checks `getenv`'s
/// return value before calling `strlen` on it.
fn fragile_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
    let banner = s.literal("config checker starting");
    s.call("puts", &[CVal::Ptr(banner)])?;
    let name = s.literal("HEALERS_CONFIG"); // not set!
    let value = s.call("getenv", &[CVal::Ptr(name)])?;
    let len = s.call("strlen", &[value])?; // strlen(NULL)
    let done = s.literal("config checked");
    s.call("puts", &[CVal::Ptr(done)])?;
    Ok(len.as_int() as i32)
}

fn main() {
    let toolkit = Toolkit::new();

    // --- 1. fault injection: derive the robust API --------------------
    println!("== Step 1: automated fault injection (paper Figure 2) ==\n");
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| ["strlen", "getenv", "strcpy", "puts"].contains(&t.name.as_str()))
        .collect();
    let campaign =
        run_campaign("libsimc.so.1", &targets, process_factory, &CampaignConfig::default());
    println!("{}", render_table(&campaign));

    // --- 2. generate the robustness wrapper ----------------------------
    println!("== Step 2: generate the robustness wrapper (paper §2.3) ==\n");
    let wrapper = toolkit.generate_wrapper(
        WrapperKind::Robustness,
        &campaign.api,
        &WrapperConfig::default(),
    );
    println!(
        "wrapped {} of {} functions: {:?}\n",
        wrapper.len(),
        targets.len(),
        wrapper.wrapped_names()
    );
    println!("--- generated wrapper source (excerpt) ---");
    for line in wrapper.source.lines().take(16) {
        println!("{line}");
    }
    println!("...\n");

    // --- 3. run the fragile application both ways -----------------------
    println!("== Step 3: protect an existing application (paper Figure 1) ==\n");
    let exe = Executable::new(
        "config-checker",
        &["libsimc.so.1"],
        &["puts", "getenv", "strlen"],
        fragile_entry,
    );
    let bare = toolkit.run(&exe).expect("links");
    println!("without wrapper: {:?}", bare.status);
    assert!(bare.status.is_err(), "the unprotected app must crash");

    let protected = toolkit.run_protected(&exe, &[&wrapper]).expect("links");
    println!("with robustness wrapper (LD_PRELOAD): {:?}", protected.status);
    println!("stdout:\n{}", protected.stdout);
    assert_eq!(
        protected.status,
        Ok(-1),
        "contained: strlen(NULL) became -1/EINVAL instead of SIGSEGV"
    );
    println!("the application survived the fault the wrapper contained.");
}
