//! The paper's §3.3 demonstration (Figure 5): "A user executes a program
//! in the system with our profiling wrapper. Upon termination, the
//! wrapper generates a XML-style log file that shows the frequency of
//! function calls in this program, the percentage of execution time in
//! each function, the distribution of function errors, the causes of
//! such errors (classified by errnos), etc."
//!
//! ```sh
//! cargo run --release --example profile_app
//! ```
//!
//! The profiled application is a word-count tool: it reads a text file,
//! tokenises it, counts unique words with a dynamic table, probes a few
//! missing files (errno traffic) and sorts the result with `qsort`.

use healers::injector::{run_campaign, targets_from_simlibc, CampaignConfig};
use healers::interpose::{Executable, Session};
use healers::profiler::{render_report, CollectionServer};
use healers::simproc::{CVal, Fault, Proc};
use healers::{process_factory, Toolkit, WrapperConfig, WrapperKind};

const TEXT: &str = "the quick brown fox jumps over the lazy dog \
the dog barks the fox runs the end";

/// Comparator for `qsort` over (count, word-ptr) records: descending by
/// count. Registered as an in-process function, like compiled app code.
fn cmp_records(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    let a = p.read_u32(args[0].as_ptr())? as i64;
    let b = p.read_u32(args[1].as_ptr())? as i64;
    Ok(CVal::Int(b - a))
}

fn wordcount_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
    s.proc().kernel.install_file("input.txt", TEXT.as_bytes().to_vec());

    // Probe a couple of optional config files (they do not exist — this
    // is the errno traffic Figure 5 charts).
    for missing in ["wordcount.rc", "/etc/wordcount.conf"] {
        let path = s.literal(missing);
        let mode = s.literal("r");
        let f = s.call("fopen", &[CVal::Ptr(path), CVal::Ptr(mode)])?;
        assert!(f.is_null());
    }

    // Read the input.
    let path = s.literal("input.txt");
    let mode = s.literal("r");
    let f = s.call("fopen", &[CVal::Ptr(path), CVal::Ptr(mode)])?;
    let buf = s.malloc(512)?;
    let n = s.call("fread", &[CVal::Ptr(buf), CVal::Int(1), CVal::Int(511), f])?;
    s.proc().write_u8(buf.add(n.as_usize()), 0)?;
    s.call("fclose", &[f])?;

    // Tokenise and count: a table of (count: u32, pad: u32, word: char*).
    let table = s.malloc(16 * 64)?;
    let mut entries = 0u64;
    let delim = s.literal(" \n\t");
    let mut tok = s.call("strtok", &[CVal::Ptr(buf), CVal::Ptr(delim)])?;
    while !tok.is_null() {
        // Linear search for the word.
        let mut found = false;
        for i in 0..entries {
            let slot = table.add(i * 16);
            let word = s.proc().read_ptr(slot.add(8))?;
            let cmp = s.call("strcmp", &[CVal::Ptr(word), tok])?;
            if cmp.as_int() == 0 {
                let count = s.proc().read_u32(slot)?;
                s.proc().write_u32(slot, count + 1)?;
                found = true;
                break;
            }
        }
        if !found {
            let copy = s.call("strdup", &[tok])?;
            let slot = table.add(entries * 16);
            s.proc().write_u32(slot, 1)?;
            s.proc().write_ptr(slot.add(8), copy.as_ptr())?;
            entries += 1;
        }
        tok = s.call("strtok", &[CVal::NULL, CVal::Ptr(delim)])?;
    }

    // Sort by count, descending.
    let cmp = s.proc().register_host_fn("cmp_records", cmp_records);
    s.call(
        "qsort",
        &[CVal::Ptr(table), CVal::Int(entries as i64), CVal::Int(16), CVal::Ptr(cmp)],
    )?;

    // Print the top words.
    let fmt = s.literal("%4d %s\n");
    for i in 0..entries.min(5) {
        let slot = table.add(i * 16);
        let count = s.proc().read_u32(slot)? as i64;
        let word = s.proc().read_ptr(slot.add(8))?;
        s.call("printf", &[CVal::Ptr(fmt), CVal::Int(count), CVal::Ptr(word)])?;
    }
    s.call("exit", &[CVal::Int(0)])?;
    unreachable!()
}

fn main() {
    let toolkit = Toolkit::new();
    let exe = Executable::new(
        "wordcount",
        &["libsimc.so.1"],
        &[
            "fopen", "fclose", "fread", "malloc", "strtok", "strcmp", "strdup", "qsort",
            "printf", "exit",
        ],
        wordcount_entry,
    );

    println!("== Profiling `wordcount` under the HEALERS profiling wrapper ==\n");

    // Build the profiling wrapper (it wraps every function; the campaign
    // provides the prototype list and indices).
    let campaign = run_campaign(
        "libsimc.so.1",
        &targets_from_simlibc(),
        process_factory,
        &CampaignConfig::default(),
    );
    let server = CollectionServer::start();
    let config = WrapperConfig {
        app_name: "wordcount".into(),
        collector: Some(server.collector()),
        policy: None,
        ..WrapperConfig::default()
    };
    let wrapper = toolkit.generate_wrapper(WrapperKind::Profiling, &campaign.api, &config);

    let out = toolkit.run_protected(&exe, &[&wrapper]).expect("links");
    println!("application stdout:\n{}", out.stdout);
    assert_eq!(out.status, Ok(0), "{:?}", out.status);

    // The Figure-5 report.
    let snap = wrapper.stats.snapshot();
    println!("{}", render_report("wordcount", &snap));

    // The self-describing XML document, shipped to the collection server
    // at exit (paper §2.3).
    let collected = server.shutdown();
    assert_eq!(collected.submissions.len(), 1);
    let doc = &collected.submissions[0].document;
    println!("--- XML document received by the collection server (excerpt) ---");
    for line in doc.lines().take(24) {
        println!("{line}");
    }
    println!("... ({} lines total)", doc.lines().count());
}
