//! The paper's §3.1 demonstration plus the full Figure 2 pipeline:
//! select a library, enumerate its functions, emit the XML-style
//! declaration file, run the automated fault-injection campaign, derive
//! the robust API — then prove the generated robustness wrapper contains
//! every crash the campaign found.
//!
//! ```sh
//! cargo run --release --example wrap_library
//! ```

use healers::injector::{render_table, replay_cases, run_campaign, to_xml, CampaignConfig};
use healers::simproc::{CVal, Fault, Proc};
use healers::{process_factory, Toolkit, WrapperConfig, WrapperKind};

fn main() {
    let toolkit = Toolkit::new();

    // --- select a library and enumerate it (§3.1) -----------------------
    println!("== Libraries in the system ==");
    for (soname, nfuncs) in toolkit.list_libraries() {
        println!("  {soname:<16} {nfuncs:>4} functions");
    }
    let soname = "libsimc.so.1";
    let functions = toolkit.list_functions(soname).unwrap();
    println!("\nselected {soname}: {} functions", functions.len());
    println!(
        "first few: {}\n",
        functions.iter().take(8).cloned().collect::<Vec<_>>().join(", ")
    );

    // --- the XML-style declaration file ----------------------------------
    let decl = toolkit.declaration_file(soname).unwrap();
    println!("--- declaration file (excerpt) ---");
    for line in decl.lines().take(12) {
        println!("{line}");
    }
    println!("... ({} lines total)\n", decl.lines().count());

    // --- the automated fault-injection campaign (Figure 2) ----------------
    println!("== Automated fault-injection campaign ==\n");
    let config = CampaignConfig::default();
    let targets = toolkit.targets(soname).unwrap();
    let start = std::time::Instant::now();
    let campaign = run_campaign(soname, &targets, process_factory, &config);
    let elapsed = start.elapsed();
    println!("{}", render_table(&campaign));
    println!(
        "campaign: {} injected calls in {:.2?} ({:.0} calls/s)\n",
        campaign.total_tests(),
        elapsed,
        campaign.total_tests() as f64 / elapsed.as_secs_f64()
    );

    // --- the robust API document ------------------------------------------
    let api_xml = campaign.api.to_xml();
    println!("--- robust API document (excerpt) ---");
    for line in api_xml.lines().take(10) {
        println!("{line}");
    }
    println!("...\n");

    // --- generate the robustness wrapper and replay every crash -----------
    println!("== Containment check: replay every crash through the wrapper ==\n");
    let wrapper = toolkit.generate_wrapper(
        WrapperKind::Robustness,
        &campaign.api,
        &WrapperConfig::default(),
    );
    println!(
        "robustness wrapper interposes {} of {} functions\n",
        wrapper.len(),
        targets.len()
    );
    let mut dispatch = |name: &str, p: &mut Proc, args: &[CVal]| -> Result<CVal, Fault> {
        match wrapper.get(name) {
            Some(w) => w.call(p, args),
            None => {
                let t = healers::simlibc::find_symbol(name).expect("symbol");
                (t.imp)(p, args)
            }
        }
    };
    let summary =
        replay_cases(&campaign.crashes, &targets, process_factory, &config, &mut dispatch);
    println!(
        "replayed {} recorded robustness failures through the wrapper:",
        summary.total
    );
    println!("  still failing     : {}", summary.still_failing);
    println!("  turned into errno : {}", summary.graceful);
    println!(
        "  other containment : {}",
        summary.total - summary.still_failing - summary.graceful - summary.contained
    );
    let contained_pct = 100.0 * (summary.total - summary.still_failing) as f64
        / summary.total.max(1) as f64;
    println!("  containment rate  : {contained_pct:.1}%");
    if summary.still_failing > 0 {
        println!("\nuncontained failures by function (fail/replayed):");
        for (func, fail, total) in summary.uncontained() {
            println!("  {func:<12} {fail:>3}/{total}");
        }
        println!(
            "(format-string traffic through varargs and 3-way relational cases\n\
             are outside what fixed-argument type checks can express — see\n\
             EXPERIMENTS.md)"
        );
    }

    // The campaign XML for the collection server.
    let campaign_xml = to_xml(&campaign);
    println!("\ncampaign document: {} bytes of self-describing XML", campaign_xml.len());
}
