//! # HEALERS — a toolkit for enhancing the robustness and security of existing applications
//!
//! A full reproduction of Fetzer & Xiao's HEALERS system (DSN 2003) in
//! Rust, over a simulated process substrate. The facade re-exports every
//! layer; see the crate-level docs of each for the paper section it
//! implements:
//!
//! | crate | paper artifact |
//! |---|---|
//! | [`simproc`] | simulated process: checked memory, faults-as-values, fuel |
//! | [`simlibc`] | the fragile C library under test (~100 functions, exploitable heap) |
//! | [`cdecl`] | header / man-page prototype extraction (§2.2) |
//! | [`typelattice`] | Ballista-style argument-type hierarchy (§2.2) |
//! | [`injector`] | automated fault-injection campaigns → robust APIs (Figure 2) |
//! | [`wrappergen`] | micro-generator wrapper generation (§2.3, Figure 3) |
//! | [`guardian`] | heap canaries and extent oracles (§3.4) |
//! | [`interpose`] | `LD_PRELOAD` dynamic-loader simulation (§2.1, Figure 1) |
//! | [`profiler`] | profiling wrapper runtime and collection server (§3.3, Figure 5) |
//! | [`analyzer`] | static contract inference + wrapper-soundness lint |
//! | [`healers_core`] | the end-to-end [`Toolkit`] |
//!
//! ```no_run
//! use healers::Toolkit;
//! use healers::wrappergen::{WrapperKind, WrapperConfig};
//!
//! let toolkit = Toolkit::new();
//! let campaign = toolkit.derive_robust_api("libsimc.so.1").unwrap();
//! println!("{}", healers::injector::render_table(&campaign));
//! let wrapper = toolkit.generate_wrapper(
//!     WrapperKind::Robustness,
//!     &campaign.api,
//!     &WrapperConfig::default(),
//! );
//! println!("{} functions wrapped", wrapper.len());
//! ```

#![warn(missing_docs)]

pub use analyzer;
pub use cdecl;
pub use guardian;
pub use healers_core;
pub use injector;
pub use interpose;
pub use profiler;
pub use simlibc;
pub use simproc;
pub use typelattice;
pub use wrappergen;

pub use healers_core::{
    as_preload_library, process_factory, run_server_sim, run_server_sim_with,
    server_wrapper, ServerConfig, ServerReport, Toolkit,
};
pub use injector::{
    run_cross_thread_quorum, CampaignConfig, CampaignResult, CheckpointJournal,
    CrossThreadFault, Outcome,
};
pub use interpose::{Executable, Loader, RunOutcome, Session, System};
pub use profiler::{HealAction, HealEvent, HealingJournal};
pub use typelattice::{repair_hint, Confidence, RepairHint, RobustApi, SafePred};
pub use wrappergen::{
    LowConfidence, Policy, PolicyEngine, ViolationClass, WrapperConfig, WrapperKind,
    WrapperLibrary,
};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let tk = crate::Toolkit::new();
        assert_eq!(tk.list_libraries().len(), 2);
    }
}
