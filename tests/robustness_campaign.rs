//! Integration test for the paper's central claim (§2.2 + §3.1): the
//! automated fault-injection campaign detects the arguments that crash
//! the library, derives safe argument types, and the generated
//! robustness wrapper contains (almost) all of those failures.

use healers::injector::{
    replay_cases, run_campaign, targets_from_simlibc, targets_from_simmath, CampaignConfig,
    Outcome,
};
use healers::simproc::{CVal, Fault, Proc};
use healers::{process_factory, SafePred, Toolkit, WrapperConfig, WrapperKind};

fn config() -> CampaignConfig {
    CampaignConfig { pair_values: 6, fuel: 400_000, ..CampaignConfig::default() }
}

/// The campaign over a representative slice of libc; asserts the shape
/// of the derived robust API against ground truth.
#[test]
fn derived_robust_types_match_ground_truth() {
    let names = [
        "strlen", "strcpy", "strncpy", "memcpy", "isalpha", "abs", "div", "wctrans",
        "free", "time", "qsort", "strtol",
    ];
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| names.contains(&t.name.as_str()))
        .collect();
    let result = run_campaign("libsimc.so.1", &targets, process_factory, &config());

    let pred = |f: &str, i: usize| result.api.function(f).unwrap().preds[i].clone();
    let strip_null = |p: SafePred| match p {
        SafePred::NullOr(inner) => *inner,
        other => other,
    };

    assert_eq!(pred("strlen", 0), SafePred::CStr);
    assert_eq!(strip_null(pred("strcpy", 0)), SafePred::HoldsCStrOf { src: 1 });
    assert_eq!(pred("strcpy", 1), SafePred::CStr);
    assert_eq!(
        strip_null(pred("strncpy", 0)),
        SafePred::WritableAtLeastArg { size: 2, elem: 1 }
    );
    assert_eq!(
        strip_null(pred("memcpy", 0)),
        SafePred::WritableAtLeastArg { size: 2, elem: 1 }
    );
    assert_eq!(pred("isalpha", 0), SafePred::IntInRange { min: -1, max: 255 });
    assert_eq!(pred("abs", 0), SafePred::Always);
    assert_eq!(pred("div", 1), SafePred::IntNonZero);
    assert_eq!(pred("wctrans", 0), SafePred::CStr);
    assert_eq!(strip_null(pred("free", 0)), SafePred::HeapChunkOrNull);
    assert!(matches!(pred("time", 0), SafePred::NullOr(_)), "time(NULL) stays legal");
}

/// Every function marked fully-robust must have zero residual failures,
/// and the campaign must be deterministic for a fixed seed.
#[test]
fn campaign_invariants() {
    let names = ["strcat", "strchr", "memset", "tolower", "atoi"];
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| names.contains(&t.name.as_str()))
        .collect();
    let a = run_campaign("libsimc.so.1", &targets, process_factory, &config());
    let b = run_campaign("libsimc.so.1", &targets, process_factory, &config());
    assert_eq!(a.total_tests(), b.total_tests());
    assert_eq!(a.total_failures(), b.total_failures());
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.histogram, rb.histogram, "{}", ra.name);
        if ra.fully_robust {
            assert_eq!(ra.residual_failures, 0, "{}", ra.name);
        }
    }
    // A different seed still derives the same contracts for these
    // clear-cut functions (the types are properties of the library, not
    // of the randomness).
    let other = run_campaign(
        "libsimc.so.1",
        &targets,
        process_factory,
        &CampaignConfig { seed: 77, ..config() },
    );
    for (x, y) in a.api.functions.iter().zip(&other.api.functions) {
        assert_eq!(x.preds, y.preds, "{}", x.proto.name);
    }
}

/// The before/after containment claim, on a slice large enough to mean
/// something: every recorded failure of the wrapped functions must be
/// contained by the robustness wrapper.
#[test]
fn wrapper_contains_recorded_failures() {
    let names = [
        "strlen", "strcpy", "strcat", "strcmp", "strchr", "strstr", "strdup", "memcpy",
        "memset", "memcmp", "isalpha", "toupper", "atoi", "strtol", "wctrans", "getenv",
        "free", "rand_r", "fclose", "puts",
    ];
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| names.contains(&t.name.as_str()))
        .collect();
    let cfg = config();
    let result = run_campaign("libsimc.so.1", &targets, process_factory, &cfg);
    assert!(
        result.total_failures() > 100,
        "the bare library must be fragile: {}",
        result.total_failures()
    );

    let toolkit = Toolkit::new();
    let wrapper = toolkit.generate_wrapper(
        WrapperKind::Robustness,
        &result.api,
        &WrapperConfig::default(),
    );
    let mut dispatch = |name: &str, p: &mut Proc, args: &[CVal]| -> Result<CVal, Fault> {
        match wrapper.get(name) {
            Some(w) => w.call(p, args),
            None => (healers::simlibc::find_symbol(name).unwrap().imp)(p, args),
        }
    };
    let summary =
        replay_cases(&result.crashes, &targets, process_factory, &cfg, &mut dispatch);
    assert_eq!(summary.total, result.total_failures());
    assert_eq!(
        summary.still_failing, 0,
        "these functions' contracts are complete; every crash must be contained"
    );
    assert!(summary.graceful > summary.total / 2, "most become errno errors");
}

/// The math library campaign: a second library goes through the same
/// pipeline.
#[test]
fn math_library_campaign() {
    let targets = targets_from_simmath();
    let result = run_campaign("libsimm.so.1", &targets, process_factory, &config());
    let f = result.api.function("mnorm").unwrap();
    // vec must be at least readable. Note the honest limitation shared
    // with the original Ballista-style search: out-of-allocation *reads*
    // inside a mapped heap are silent (no crash, no metadata corruption),
    // so the campaign cannot distinguish `readable(8)` from the full
    // relational `readable(n*8)` contract for read-only buffers.
    let stripped = match &f.preds[0] {
        SafePred::NullOr(inner) => (**inner).clone(),
        other => other.clone(),
    };
    assert!(
        stripped == SafePred::ReadableAtLeastArg { size: 1, elem: 8 }
            || stripped == SafePred::Readable(8),
        "{stripped:?}"
    );
    // msqrt is robust for any double.
    assert_eq!(result.api.function("msqrt").unwrap().preds, vec![SafePred::Always]);
}

/// Outcome histograms must classify hangs and silent corruption, not
/// just segfaults: the CRASH scale is fully populated by the library.
#[test]
fn crash_scale_is_exercised() {
    let names = ["strcpy", "mpow"];
    let mut targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| names.contains(&t.name.as_str()))
        .collect();
    targets.extend(
        targets_from_simmath().into_iter().filter(|t| names.contains(&t.name.as_str())),
    );
    let result = run_campaign(
        "mixed",
        &targets,
        process_factory,
        &CampaignConfig { pair_values: 8, fuel: 150_000, ..CampaignConfig::default() },
    );
    let mut seen = std::collections::BTreeSet::new();
    for r in &result.reports {
        for o in r.histogram.keys() {
            seen.insert(*o);
        }
    }
    assert!(seen.contains(&Outcome::Crash), "{seen:?}");
    assert!(seen.contains(&Outcome::Hang), "mpow(i64::MAX) must hang: {seen:?}");
    assert!(seen.contains(&Outcome::Silent), "strcpy overflow must corrupt: {seen:?}");
    assert!(seen.contains(&Outcome::Pass));
}
