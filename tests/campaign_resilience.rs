//! Integration tests for the campaign resilience layer: checkpointed
//! resume, flaky-outcome quorum, the per-function circuit breaker, and
//! graceful degradation under a campaign budget — the acceptance
//! scenarios of the crash-resilient-campaign work.

use std::sync::atomic::{AtomicUsize, Ordering};

use healers::injector::{
    run_campaign, run_campaign_checkpointed, targets_from_simlibc, to_xml, CampaignConfig,
    CheckpointJournal, Outcome, TargetFn,
};
use healers::simproc::{CVal, Fault, Proc};
use healers::{process_factory, Confidence, LowConfidence, WrapperConfig, WrapperKind};

fn slice(names: &[&str]) -> Vec<TargetFn> {
    targets_from_simlibc()
        .into_iter()
        .filter(|t| names.contains(&t.name.as_str()))
        .collect()
}

fn config() -> CampaignConfig {
    CampaignConfig { pair_values: 4, fuel: 300_000, ..CampaignConfig::default() }
}

/// Acceptance scenario 1: a campaign killed partway through (simulated
/// by a hard case budget plus journal serialisation between attempts)
/// resumes from the checkpoint and converges on a robust API — and a
/// campaign report — byte-identical to an uninterrupted run's.
#[test]
fn interrupted_campaign_resumes_to_identical_result() {
    let targets = slice(&["strlen", "div"]);
    let full = run_campaign("libsimc.so.1", &targets, process_factory, &config());
    assert!(full.complete);

    let limited = CampaignConfig { case_budget: Some(25), ..config() };
    let mut journal = CheckpointJournal::new();
    let mut rounds = 0usize;
    let resumed = loop {
        rounds += 1;
        assert!(rounds < 500, "campaign must converge");
        let r = run_campaign_checkpointed(
            "libsimc.so.1",
            &targets,
            process_factory,
            &limited,
            &journal,
        );
        if r.complete {
            break r;
        }
        // Simulate the process dying: only the durable text form of the
        // journal survives into the next attempt.
        journal = CheckpointJournal::from_text(&journal.to_text()).unwrap();
    };
    assert!(rounds > 1, "the budget must actually have interrupted the campaign");
    assert_eq!(resumed.api.to_xml(), full.api.to_xml());
    assert_eq!(to_xml(&resumed), to_xml(&full), "campaign XML is resume-invariant");
    assert!(resumed.checkpoint_hits() > 0);
    for f in &resumed.api.functions {
        assert_eq!(f.confidence, Confidence::High, "{}", f.proto.name);
        assert_eq!(f.coverage, 1.0);
    }
}

static FLIP: AtomicUsize = AtomicUsize::new(0);

fn unstable_imp(_p: &mut Proc, _a: &[CVal]) -> Result<CVal, Fault> {
    if FLIP.fetch_add(1, Ordering::Relaxed).is_multiple_of(2) {
        Err(Fault::Abort { reason: "nondeterministic failure".into() })
    } else {
        Ok(CVal::Int(0))
    }
}

/// Acceptance scenario 2: a target whose classification flips between
/// executions is caught by the outcome quorum and surfaces as the
/// first-class `Flaky` outcome with a `Flaky` confidence annotation —
/// instead of whichever observation happened to come last.
#[test]
fn nondeterministic_target_is_classified_flaky() {
    let table = healers::cdecl::TypedefTable::with_builtins();
    let proto = healers::cdecl::parse_prototype("int unstable(int x);", &table).unwrap();
    let targets = vec![TargetFn { name: "unstable".into(), proto, imp: unstable_imp }];
    let result = run_campaign("libflaky.so.1", &targets, process_factory, &config());

    let report = &result.reports[0];
    let flaky_cases = report.histogram.get(&Outcome::Flaky).copied().unwrap_or(0);
    assert!(flaky_cases > 0, "quorum must expose the disagreement: {report:?}");
    assert_eq!(report.confidence, Confidence::Flaky);
    assert!(result.crashes.iter().any(|c| c.outcome == Outcome::Flaky));

    let f = result.api.function("unstable").unwrap();
    assert_eq!(f.confidence, Confidence::Flaky);
    assert!(f.is_measured(), "flaky is an annotated measurement, not a failure");
    assert!(result.api.to_xml().contains("confidence=\"flaky\""));
}

/// Acceptance scenario 3: when the campaign budget expires the toolkit
/// still emits a partial robust API with confidence/coverage
/// annotations, and wrapper generation warns on — or refuses — the
/// functions whose contracts are guesses.
#[test]
fn budget_exhaustion_yields_partial_api_and_wrapper_reacts() {
    let targets = slice(&["strlen", "strcpy"]);
    let limited = CampaignConfig { case_budget: Some(10), ..config() };
    let result = run_campaign("libsimc.so.1", &targets, process_factory, &limited);

    assert!(!result.complete);
    assert_eq!(result.api.functions.len(), 2, "partial API covers every target");
    let partial: Vec<&str> = result
        .api
        .functions
        .iter()
        .filter(|f| f.confidence == Confidence::Partial)
        .map(|f| f.proto.name.as_str())
        .collect();
    assert!(!partial.is_empty());

    let health = healers::profiler::render_robust_api_health(&result.api);
    assert!(health.contains("budget expired"), "{health}");

    // Default policy: enforce the conservative contracts but say so.
    let warn = healers::wrappergen::build_wrapper(
        WrapperKind::Robustness,
        &result.api,
        &WrapperConfig::default(),
    );
    assert!(!warn.warnings.is_empty(), "low confidence must be surfaced");
    for name in &partial {
        assert!(
            warn.warnings.iter().any(|w| w.contains(name)),
            "{name} missing from {:?}",
            warn.warnings
        );
    }

    // Strict policy: refuse to wrap guessed contracts at all.
    let strict =
        WrapperConfig { low_confidence: LowConfidence::Skip, ..WrapperConfig::default() };
    let skip =
        healers::wrappergen::build_wrapper(WrapperKind::Robustness, &result.api, &strict);
    for name in &partial {
        assert!(skip.get(name).is_none(), "{name} must be left unwrapped");
    }
}

fn crashing_harness_imp(_p: &mut Proc, _a: &[CVal]) -> Result<CVal, Fault> {
    panic!("deliberate sandbox death");
}

/// Acceptance scenario 4: repeated abnormal sandbox deaths trip the
/// per-function circuit breaker; the function is marked inconclusive
/// instead of burning the whole campaign, and harness bugs are never
/// persisted to the checkpoint journal (a fixed harness must re-run).
#[test]
fn circuit_breaker_contains_abnormal_sandbox_deaths() {
    let table = healers::cdecl::TypedefTable::with_builtins();
    let proto = healers::cdecl::parse_prototype("int boom(int x);", &table).unwrap();
    let targets = vec![TargetFn { name: "boom".into(), proto, imp: crashing_harness_imp }];
    let journal = CheckpointJournal::new();
    let result = run_campaign_checkpointed(
        "libboom.so.1",
        &targets,
        process_factory,
        &config(),
        &journal,
    );

    let report = &result.reports[0];
    let host_bugs = report.histogram.get(&Outcome::HostBug).copied().unwrap_or(0);
    assert_eq!(
        host_bugs,
        config().breaker_threshold,
        "probing stops at the threshold: {report:?}"
    );
    assert_eq!(report.confidence, Confidence::Inconclusive);
    assert!(report.coverage < 1.0);

    let f = result.api.function("boom").unwrap();
    assert_eq!(f.confidence, Confidence::Inconclusive);
    assert!(!f.is_measured());
    assert!(journal.is_empty(), "host bugs are never checkpointed");
}
