//! The residual the containment numbers point at (EXPERIMENTS.md C1):
//! format-string traffic. `%s`/`%n` reference *varargs*, which the fixed
//! parameters of `printf`-family prototypes do not type — so no
//! per-argument robust type can contain them. This test pins that
//! limitation down concretely, and shows which parts the wrappers *do*
//! stop.

use healers::injector::{run_campaign, targets_from_simlibc, CampaignConfig};
use healers::interpose::{Executable, Session};
use healers::simproc::{CVal, Fault};
use healers::{process_factory, SafePred, Toolkit, WrapperConfig, WrapperKind};

fn wrappers() -> (healers::WrapperLibrary, healers::WrapperLibrary) {
    let toolkit = Toolkit::new();
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| {
            ["printf", "sprintf", "snprintf", "malloc", "free", "exit"]
                .contains(&t.name.as_str())
        })
        .collect();
    let campaign = run_campaign(
        "libsimc.so.1",
        &targets,
        process_factory,
        &CampaignConfig { pair_values: 4, fuel: 300_000, ..CampaignConfig::default() },
    );
    (
        toolkit.generate_wrapper(
            WrapperKind::Robustness,
            &campaign.api,
            &WrapperConfig::default(),
        ),
        toolkit.generate_wrapper(
            WrapperKind::Security,
            &campaign.api,
            &WrapperConfig::default(),
        ),
    )
}

/// The classic bug: user input used *as* the format string.
fn vulnerable_logger(s: &mut Session<'_>, user_input: &str) -> Result<CVal, Fault> {
    let fmt = s.proc().alloc_cstr(user_input);
    s.call("printf", &[CVal::Ptr(fmt)]) // printf(user_input) — no args!
}

#[test]
fn format_string_reads_are_not_containable_by_arg_types() {
    let (robust, _) = wrappers();
    let toolkit = Toolkit::new();

    fn entry(s: &mut Session<'_>) -> Result<i32, Fault> {
        // `%s` consumes a missing vararg, which reads as garbage 0 — a
        // NULL dereference inside printf.
        vulnerable_logger(s, "injected: %s")?;
        Ok(0)
    }
    let exe = Executable::new("logd", &["libsimc.so.1"], &["printf"], entry);

    // Unprotected: crash.
    let out = toolkit.run(&exe).unwrap();
    assert!(matches!(out.status, Err(Fault::Segv { .. })));

    // With the robustness wrapper: the format *pointer* satisfies its
    // robust type (it IS a valid string), so the check passes and the
    // crash still happens — the honest limitation.
    let out = toolkit.run_protected(&exe, &[&robust]).unwrap();
    assert!(
        matches!(out.status, Err(Fault::Segv { .. })),
        "varargs are invisible to per-argument checks: {:?}",
        out.status
    );
}

#[test]
fn percent_n_write_primitive_survives_arg_checks_but_canaries_catch_the_heap_damage() {
    let (_, secure) = wrappers();
    let toolkit = Toolkit::new();

    fn entry(s: &mut Session<'_>) -> Result<i32, Fault> {
        // An attacker-chosen %n target: sprintf writes the rendered
        // length through the first vararg. Point it at a heap canary.
        let victim = s.malloc(16)?;
        let dst = s.malloc(64)?;
        let fmt = s.proc().alloc_cstr("AAAAAAAA%n");
        s.call("sprintf", &[CVal::Ptr(dst), CVal::Ptr(fmt), CVal::Ptr(victim.add(16))])?;
        s.call("free", &[CVal::Ptr(victim)])?;
        s.call("exit", &[CVal::Int(0)])?;
        unreachable!()
    }
    let exe = Executable::new(
        "fmtd",
        &["libsimc.so.1"],
        &["malloc", "free", "sprintf", "exit"],
        entry,
    )
    .setuid();

    // Unprotected: the %n write silently corrupts and the run "succeeds".
    let out = toolkit.run(&exe).unwrap();
    assert_eq!(out.status, Ok(0), "{:?}", out.status);

    // Security wrapper: the %n write lands past the 16-byte allocation —
    // straight onto the canary — and free() detects it.
    let out = toolkit.run_protected(&exe, &[&secure]).unwrap();
    assert!(matches!(out.status, Err(Fault::SecurityViolation { .. })), "{:?}", out.status);
}

#[test]
fn derived_format_contract_is_only_the_fixed_params() {
    let targets: Vec<_> =
        targets_from_simlibc().into_iter().filter(|t| t.name == "snprintf").collect();
    let campaign = run_campaign(
        "libsimc.so.1",
        &targets,
        process_factory,
        &CampaignConfig { pair_values: 4, fuel: 300_000, ..CampaignConfig::default() },
    );
    let f = campaign.api.function("snprintf").unwrap();
    assert_eq!(f.preds.len(), 3, "only str/size/format are typed; varargs are not");
    assert_eq!(f.preds[2], SafePred::CStr, "the format itself is checked");
    assert!(
        !f.fully_robust,
        "the campaign honestly reports that no contract over the fixed \
         parameters contains all failures"
    );
}
