//! Integration tests for the sharded wrapper telemetry: concurrent
//! recording merges losslessly, the merged XML document is deterministic
//! (and byte-identical to the pre-shard single-mutex format), and the
//! flight recorder captures the last calls before a detected attack.

use std::sync::Arc;

use healers::injector::{run_campaign, targets_from_simlibc, CampaignConfig};
use healers::interpose::{Executable, Session};
use healers::profiler::{render_fault_report, to_xml, MutexStats, Stats};
use healers::simproc::{CVal, Fault};
use healers::{process_factory, Toolkit, WrapperConfig, WrapperKind};

const THREADS: usize = 8;
const FUNCS: [&str; 4] = ["strlen", "strcpy", "malloc", "fopen"];

/// The deterministic workload thread `t` records: the per-thread slice
/// of the ground truth, independent of scheduling.
fn record_thread_workload(stats: &Stats, t: usize) {
    for i in 0..500u64 {
        let func = FUNCS[(t + i as usize) % FUNCS.len()];
        let errno = if i % 10 == 0 { Some(2) } else { None };
        stats.record_call(func, 100 + (i % 7), errno);
        stats.record_latency(func, "call", 100 + (i % 7));
    }
    stats.record_global_errno(22);
}

/// The same workload replayed serially into the single-mutex baseline —
/// the ground truth the sharded merge must reproduce exactly.
fn ground_truth() -> MutexStats {
    let stats = MutexStats::default();
    for t in 0..THREADS {
        for i in 0..500u64 {
            let func = FUNCS[(t + i as usize) % FUNCS.len()];
            let errno = if i % 10 == 0 { Some(2) } else { None };
            stats.record_call(func, 100 + (i % 7), errno);
            stats.record_latency(func, "call", 100 + (i % 7));
        }
        stats.record_global_errno(22);
    }
    stats
}

fn concurrent_run() -> Arc<Stats> {
    let stats = Arc::new(Stats::default());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let stats = Arc::clone(&stats);
            scope.spawn(move || record_thread_workload(&stats, t));
        }
    });
    stats
}

#[test]
fn concurrent_merge_equals_serial_ground_truth() {
    let stats = concurrent_run();
    assert_eq!(
        stats.snapshot(),
        ground_truth().snapshot(),
        "sharded merge must lose nothing and invent nothing"
    );
}

#[test]
fn merged_xml_is_byte_identical_across_runs() {
    // Two racy 8-thread runs of the same workload: the shard each thread
    // lands on differs between runs, but the merged document must not.
    let a = to_xml("app", "profiling", &concurrent_run().snapshot());
    let b = to_xml("app", "profiling", &concurrent_run().snapshot());
    assert_eq!(a, b, "snapshot merge order leaked into the XML document");
}

#[test]
fn sharded_xml_matches_the_mutex_baseline_format() {
    // Single-threaded, identical recording sequence into both designs:
    // the sharded document must be byte-for-byte the pre-shard format.
    let sharded = Stats::default();
    let mutexed = MutexStats::default();
    for i in 0..200u64 {
        let func = FUNCS[i as usize % FUNCS.len()];
        let errno = if i % 9 == 0 { Some(13) } else { None };
        sharded.record_call(func, 50 + i, errno);
        mutexed.record_call(func, 50 + i, errno);
        sharded.record_latency(func, "check", i + 1);
        mutexed.record_latency(func, "check", i + 1);
    }
    let a = to_xml("app", "profiling", &sharded.snapshot());
    let b = to_xml("app", "profiling", &mutexed.snapshot());
    assert_eq!(a, b);
}

/// The server-scale merge-discipline check: the telemetry document an
/// 8-worker threaded server ships must be byte-identical to the serial
/// (1-worker) ground truth for the same seed. Worker-private state
/// (stacks, errno, memo tables) must never leak into the wrapper's
/// sharded stats; only the global request order may.
#[test]
fn threaded_server_xml_is_byte_identical_to_the_serial_ground_truth() {
    let base =
        healers::ServerConfig { requests: 2_500, ..healers::ServerConfig::default() };
    let serial =
        healers::run_server_sim(&healers::ServerConfig { workers: 1, ..base.clone() });
    let threaded = healers::run_server_sim(&healers::ServerConfig { workers: 8, ..base });
    let ground_truth = serial.telemetry_xml.expect("protected run carries telemetry");
    let merged = threaded.telemetry_xml.expect("protected run carries telemetry");
    assert_eq!(
        ground_truth, merged,
        "worker-count must not leak into the telemetry document"
    );
    assert_eq!(serial.canonical, threaded.canonical);
}

/// A daemon with a textbook overflow: 8-byte allocation, long `strcpy`.
fn smash_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
    let name = s.literal("hi");
    s.call("strlen", &[CVal::Ptr(name)])?;
    let buf = s.malloc(8)?;
    let long = s.literal("this string is far longer than eight bytes");
    s.call("strcpy", &[CVal::Ptr(buf), CVal::Ptr(long)])?;
    s.call("free", &[CVal::Ptr(buf)])?;
    s.call("exit", &[CVal::Int(0)])?;
    unreachable!()
}

#[test]
fn fault_report_carries_the_flight_recorder_tail() {
    let toolkit = Toolkit::new();
    let campaign = run_campaign(
        "libsimc.so.1",
        &targets_from_simlibc()
            .into_iter()
            .filter(|t| {
                ["strlen", "strcpy", "malloc", "free", "exit"].contains(&t.name.as_str())
            })
            .collect::<Vec<_>>(),
        process_factory,
        &CampaignConfig { pair_values: 2, fuel: 200_000, ..CampaignConfig::default() },
    );
    let wrapper = toolkit.generate_wrapper(
        WrapperKind::Security,
        &campaign.api,
        &WrapperConfig { flight_recorder: Some(6), ..WrapperConfig::default() },
    );
    let exe = Executable::new(
        "smashd",
        &["libsimc.so.1"],
        &["strlen", "strcpy", "malloc", "free", "exit"],
        smash_entry,
    );
    let out = toolkit.run_protected(&exe, &[&wrapper]).unwrap();
    assert!(matches!(out.status, Err(Fault::SecurityViolation { .. })), "{:?}", out.status);

    let recorder = wrapper.recorder.as_ref().expect("flight recorder was enabled");
    let tail = recorder.tail();
    assert!(!tail.is_empty(), "the recorder must have seen the calls");
    // The canary check in `free` detects the smash; the `strcpy` that
    // did the damage sits right before it in the tail — the smoking gun
    // a plain fault message cannot show.
    let last = tail.last().unwrap();
    assert_eq!(last.func, "free", "the detecting call is the newest entry");
    assert_ne!(last.verdict, "ok", "the detecting call's verdict is the fault");
    let culprit = &tail[tail.len() - 2];
    assert_eq!(culprit.func, "strcpy");
    assert_eq!(culprit.verdict, "ok", "the overflow itself went unnoticed");

    let fault = out.status.unwrap_err().to_string();
    let report = render_fault_report("smashd", &fault, &tail);
    assert!(report.contains("smashd"), "{report}");
    assert!(report.contains("Flight recorder"), "{report}");
    assert!(report.contains("strcpy"), "{report}");
    assert!(report.contains(&fault), "{report}");
}
