//! Integration test for the §3.4 demo: the heap-smashing attack against
//! a setuid-root daemon succeeds unprotected and is detected/terminated
//! by the security wrapper. Mirrors `examples/heap_smash.rs`.

use std::sync::Mutex;

use healers::injector::{run_campaign, targets_from_simlibc, CampaignConfig};
use healers::interpose::{Executable, Session};
use healers::simlibc::state::ATEXIT_TABLE;
use healers::simproc::{CVal, Fault, Proc, SHELLCODE_MAGIC};
use healers::{process_factory, Toolkit, WrapperConfig, WrapperKind};

static REQUEST: Mutex<Option<Vec<u8>>> = Mutex::new(None);

fn logger(p: &mut Proc, _args: &[CVal]) -> Result<CVal, Fault> {
    p.kernel.stdout.extend_from_slice(b"[netd] clean shutdown\n");
    Ok(CVal::Void)
}

fn netd_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
    let request =
        REQUEST.lock().unwrap().clone().unwrap_or_else(|| b"GET /status".to_vec());
    s.proc().kernel.install_file("request.bin", request);

    let path = s.literal("request.bin");
    let mode = s.literal("rb");
    let f = s.call("fopen", &[CVal::Ptr(path), CVal::Ptr(mode)])?;
    assert!(!f.is_null());

    let session = s.malloc(64)?;
    let spare = s.malloc(64)?;
    let _pin = s.malloc(16)?;
    s.call("free", &[CVal::Ptr(spare)])?;

    let fmt = s.literal("[netd] session buffer at %p\n");
    s.call("printf", &[CVal::Ptr(fmt), CVal::Ptr(session)])?;

    let logger_addr = s.proc().register_host_fn("netd_logger", logger);
    s.call("atexit", &[CVal::Ptr(logger_addr)])?;

    s.call("fread", &[CVal::Ptr(session), CVal::Int(1), CVal::Int(256), f])?;
    s.call("free", &[CVal::Ptr(session)])?;
    s.call("exit", &[CVal::Int(0)])?;
    unreachable!()
}

fn netd() -> Executable {
    Executable::new(
        "netd",
        &["libsimc.so.1"],
        &["puts", "printf", "malloc", "free", "atexit", "fopen", "fread", "exit"],
        netd_entry,
    )
    .setuid()
}

fn craft_payload(session_addr: u64) -> Vec<u8> {
    let mut p = vec![0x90u8; 96];
    p[16..16 + SHELLCODE_MAGIC.len()].copy_from_slice(SHELLCODE_MAGIC);
    p[72..80].copy_from_slice(&(80u64 | 1).to_le_bytes());
    p[80..88].copy_from_slice(&(ATEXIT_TABLE.get() - 8).to_le_bytes());
    p[88..96].copy_from_slice(&session_addr.to_le_bytes());
    p
}

fn leaked_address(stdout: &str) -> u64 {
    let line = stdout.lines().find(|l| l.contains("session buffer at")).expect("info leak");
    u64::from_str_radix(line.rsplit("0x").next().unwrap().trim(), 16).unwrap()
}

/// The whole §3.4 story in one deterministic test. Serialised through
/// the REQUEST lock because the "attacker-controlled file" is global.
#[test]
fn heap_smashing_attack_and_its_containment() {
    let toolkit = Toolkit::new();

    // Recon run.
    *REQUEST.lock().unwrap() = None;
    let recon = toolkit.run(&netd()).unwrap();
    assert_eq!(recon.status, Ok(0), "{:?}", recon.status);
    assert!(recon.stdout.contains("clean shutdown"));
    assert!(!recon.shell_spawned);
    let session_addr = leaked_address(&recon.stdout);

    // Attack, unprotected: control-flow hijack, root shell.
    *REQUEST.lock().unwrap() = Some(craft_payload(session_addr));
    let owned = toolkit.run(&netd()).unwrap();
    assert!(matches!(owned.status, Err(Fault::WildJump { .. })), "{:?}", owned.status);
    assert!(owned.shell_spawned, "attacker must get the shell");
    assert!(!owned.stdout.contains("clean shutdown"), "the real handler never ran");

    // Attack, with the security wrapper: detected and terminated.
    let campaign = run_campaign(
        "libsimc.so.1",
        &targets_from_simlibc(),
        process_factory,
        &CampaignConfig { pair_values: 4, fuel: 300_000, ..CampaignConfig::default() },
    );
    let wrapper = toolkit.generate_wrapper(
        WrapperKind::Security,
        &campaign.api,
        &WrapperConfig::default(),
    );
    let protected = toolkit.run_protected(&netd(), &[&wrapper]).unwrap();
    match &protected.status {
        Err(Fault::SecurityViolation { detail }) => {
            assert!(detail.contains("canary"), "{detail}");
        }
        other => panic!("expected a security violation, got {other:?}"),
    }
    assert!(!protected.shell_spawned, "no shell under the wrapper");

    // And a benign request still works under the wrapper.
    *REQUEST.lock().unwrap() = None;
    let benign = toolkit.run_protected(&netd(), &[&wrapper]).unwrap();
    assert_eq!(benign.status, Ok(0), "{:?}", benign.status);
    assert!(benign.stdout.contains("clean shutdown"));
}

/// The stack-smashing variant: a return address clobbered in a stack
/// frame transfers control on return; the frame-bound extent oracle used
/// by the security wrapper prevents the overflowing copy entirely.
#[test]
fn stack_smashing_is_prevented_by_frame_bounds() {
    let toolkit = Toolkit::new();
    let campaign = run_campaign(
        "libsimc.so.1",
        &targets_from_simlibc()
            .into_iter()
            .filter(|t| t.name == "strcpy")
            .collect::<Vec<_>>(),
        process_factory,
        &CampaignConfig { pair_values: 4, fuel: 300_000, ..CampaignConfig::default() },
    );
    let wrapper = toolkit.generate_wrapper(
        WrapperKind::Security,
        &campaign.api,
        &WrapperConfig::default(),
    );

    fn vuln_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
        // A classic: strcpy of attacker data into a stack buffer. The
        // 47-byte string covers the 32-byte buffer, the saved frame
        // pointer and the saved return address exactly.
        let attack = s.literal(&"A".repeat(47));
        s.proc().push_frame("handle_request")?;
        let buf = s.proc().stack_alloc(32)?;
        s.call("strcpy", &[CVal::Ptr(buf), CVal::Ptr(attack)])?;
        s.proc().pop_frame()?;
        Ok(0)
    }
    let exe =
        Executable::new("stackd", &["libsimc.so.1"], &["strcpy"], vuln_entry).setuid();

    // Unprotected: the return address is clobbered; `ret` goes wild.
    let out = toolkit.run(&exe).unwrap();
    assert!(matches!(out.status, Err(Fault::WildJump { .. })), "{:?}", out.status);

    // Security wrapper: the copy is refused before it reaches the
    // saved return address (libsafe's rule via the frame-bound oracle).
    let out = toolkit.run_protected(&exe, &[&wrapper]).unwrap();
    assert!(matches!(out.status, Err(Fault::SecurityViolation { .. })), "{:?}", out.status);
}
