//! Integration test for Figure 1: different applications using
//! different wrappers — or sharing one — through the preload mechanism,
//! with each paying only for the protection it selected.

use std::sync::Arc;

use healers::injector::{run_campaign, targets_from_simlibc, CampaignConfig};
use healers::interpose::{Executable, Session};
use healers::simproc::{CVal, Fault};
use healers::{process_factory, CampaignResult, Toolkit, WrapperConfig, WrapperKind};

fn quick_campaign(funcs: &[&str]) -> CampaignResult {
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| funcs.contains(&t.name.as_str()))
        .collect();
    run_campaign(
        "libsimc.so.1",
        &targets,
        process_factory,
        &CampaignConfig { pair_values: 6, fuel: 300_000, ..CampaignConfig::default() },
    )
}

fn crasher_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
    let r = s.call("strlen", &[CVal::NULL])?;
    Ok(r.as_int() as i32)
}

fn crasher() -> Executable {
    Executable::new("crasher", &["libsimc.so.1"], &["strlen"], crasher_entry)
}

#[test]
fn wrapper_choice_is_per_application() {
    let toolkit = Toolkit::new();
    let campaign = quick_campaign(&["strlen", "strcpy", "malloc", "free"]);
    let robust = toolkit.generate_wrapper(
        WrapperKind::Robustness,
        &campaign.api,
        &WrapperConfig::default(),
    );
    let secure = toolkit.generate_wrapper(
        WrapperKind::Security,
        &campaign.api,
        &WrapperConfig::default(),
    );

    // Unprotected: crash.
    let out = toolkit.run(&crasher()).unwrap();
    assert!(matches!(out.status, Err(Fault::Segv { .. })));

    // Robustness wrapper: contained, app continues with -1.
    let out = toolkit.run_protected(&crasher(), &[&robust]).unwrap();
    assert_eq!(out.status, Ok(-1));

    // Security wrapper only: strlen is read-only, not interposed by the
    // security wrapper, so the app still crashes — protection is paid
    // for only where chosen.
    let out = toolkit.run_protected(&crasher(), &[&secure]).unwrap();
    assert!(matches!(out.status, Err(Fault::Segv { .. })));

    // Both preloaded: first wrapper in LD_PRELOAD order wins for the
    // symbols it defines.
    let out = toolkit.run_protected(&crasher(), &[&robust, &secure]).unwrap();
    assert_eq!(out.status, Ok(-1));
}

#[test]
fn applications_can_share_one_wrapper() {
    let toolkit = Toolkit::new();
    let campaign = quick_campaign(&["strlen"]);
    let robust = toolkit.generate_wrapper(
        WrapperKind::Robustness,
        &campaign.api,
        &WrapperConfig::default(),
    );
    // Two different applications run under the same wrapper instance.
    for _ in 0..2 {
        let out = toolkit.run_protected(&crasher(), &[&robust]).unwrap();
        assert_eq!(out.status, Ok(-1));
    }
}

fn mixed_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
    // One protected and one unprotected call.
    let msg = s.literal("ok");
    let good = s.call("strlen", &[CVal::Ptr(msg)])?;
    assert_eq!(good, CVal::Int(2));
    let bad = s.call("strlen", &[CVal::NULL])?;
    Ok(bad.as_int() as i32)
}

#[test]
fn valid_calls_flow_through_untouched() {
    let toolkit = Toolkit::new();
    let campaign = quick_campaign(&["strlen"]);
    let robust = toolkit.generate_wrapper(
        WrapperKind::Robustness,
        &campaign.api,
        &WrapperConfig::default(),
    );
    let exe = Executable::new("mixed", &["libsimc.so.1"], &["strlen"], mixed_entry);
    let out = toolkit.run_protected(&exe, &[&robust]).unwrap();
    assert_eq!(out.status, Ok(-1));
}

#[test]
fn custom_wrapper_composition_interposes_too() {
    use healers::wrappergen::hooks::LogCallHook;
    use healers::wrappergen::WrapperBuilder;

    let toolkit = Toolkit::new();
    let log: healers::wrappergen::CallLog = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let mut builder = WrapperBuilder::new("libtrace.so");
    builder.hook("strlen", Arc::new(LogCallHook::new(Arc::clone(&log))));
    let tracer = builder.build();

    fn entry(s: &mut Session<'_>) -> Result<i32, Fault> {
        let msg = s.literal("abc");
        s.call("strlen", &[CVal::Ptr(msg)])?;
        Ok(0)
    }
    let exe = Executable::new("traced", &["libsimc.so.1"], &["strlen"], entry);
    let out = toolkit.run_protected(&exe, &[&tracer]).unwrap();
    assert!(out.success());
    let entries = log.lock().clone();
    assert_eq!(entries.len(), 1);
    assert!(entries[0].starts_with("strlen("));
}
