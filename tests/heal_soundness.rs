//! Property test for the healing wrapper's soundness envelope: arbitrary
//! argument vectors thrown at the wrapped string/memory family must never
//! produce a fault (segfault, abort, hang), never corrupt the heap, and
//! never touch memory the call was not given — healed calls either pass
//! semantically or degrade to a contained errno error.

use std::sync::OnceLock;

use proptest::prelude::*;

use healers::injector::{run_campaign, targets_from_simlibc, CampaignConfig};
use healers::simproc::{CVal, Proc, VirtAddr};
use healers::{process_factory, Toolkit, WrapperConfig, WrapperLibrary};

const FAMILY: [&str; 6] = ["strcpy", "strcat", "strncpy", "memcpy", "memset", "strlen"];

/// One healing wrapper derived from a real (small) campaign, shared by
/// every proptest case.
fn wrapper() -> &'static WrapperLibrary {
    static W: OnceLock<WrapperLibrary> = OnceLock::new();
    W.get_or_init(|| {
        let targets: Vec<_> = targets_from_simlibc()
            .into_iter()
            .filter(|t| FAMILY.contains(&t.name.as_str()))
            .collect();
        let cfg =
            CampaignConfig { pair_values: 4, fuel: 200_000, ..CampaignConfig::default() };
        let result = run_campaign("libsimc.so.1", &targets, process_factory, &cfg);
        Toolkit::new().generate_healing_wrapper(&result.api, &WrapperConfig::default())
    })
}

/// The argument materializer: index-coded nasty values, resolved against
/// a fresh process per case so pointers stay meaningful.
fn materialize(p: &mut Proc, code: u8, canary: VirtAddr) -> CVal {
    match code % 9 {
        0 => CVal::NULL,
        1 => CVal::Ptr(healers::simproc::layout::WILD_ADDR),
        2 => CVal::Ptr(p.alloc_cstr("a perfectly fine string")),
        3 => CVal::Ptr(healers::simlibc::heap::malloc(p, 32).unwrap()),
        4 => CVal::Ptr(p.alloc_cstr_literal("read-only")),
        5 => {
            // Unterminated bytes at the very end of the data segment.
            let end = healers::simproc::layout::DATA_BASE
                .add(healers::simproc::layout::DATA_SIZE)
                .sub(4);
            p.mem.poke_bytes(end, &[1, 1, 1, 1]);
            CVal::Ptr(end)
        }
        6 => CVal::Int(-1),
        7 => CVal::Int(i64::MAX),
        _ => CVal::Int((code as i64) * 37),
    }
    .pick_over(canary)
}

trait PickOver {
    fn pick_over(self, canary: VirtAddr) -> CVal;
}
impl PickOver for CVal {
    /// Never hand the call the canary chunk itself.
    fn pick_over(self, canary: VirtAddr) -> CVal {
        match self {
            CVal::Ptr(a) if a == canary => CVal::NULL,
            other => other,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 160, ..ProptestConfig::default() })]

    #[test]
    fn healed_family_never_faults_or_corrupts(
        which in 0usize..FAMILY.len(),
        codes in proptest::collection::vec(any::<u8>(), 3),
    ) {
        let w = wrapper();
        let name = FAMILY[which];
        let Some(f) = w.get(name) else {
            // A fully-robust-for-anything function may be unwrapped;
            // nothing to test then.
            return Ok(());
        };
        let mut p = process_factory();
        p.set_fuel_limit(Some(2_000_000));

        // A bystander allocation the call is never given: its bytes must
        // survive any healed/contained call untouched.
        let canary = healers::simlibc::heap::malloc(&mut p, 64).unwrap();
        p.mem.write_bytes(canary, &[0xAB; 64]).unwrap();

        let arity = match name {
            "strlen" => 1,
            "strcpy" | "strcat" => 2,
            _ => 3,
        };
        let args: Vec<CVal> = codes[..arity]
            .iter()
            .map(|c| materialize(&mut p, *c, canary))
            .collect();

        // Soundness #1: the wrapped call never faults, whatever the args.
        let r = f.call(&mut p, &args);
        prop_assert!(r.is_ok(), "{name}{args:?} faulted: {r:?}");

        // Soundness #2: pass-or-contain — a contained call reports errno,
        // a healed/passing call returns a well-typed value. Either way the
        // process is still standing, which faults would have disproved.
        let _ = r.unwrap();

        // Soundness #3: the heap allocator's invariants still hold (no
        // silent metadata corruption).
        prop_assert!(
            healers::simlibc::heap::check_invariants(&p).is_ok(),
            "{name}{args:?} corrupted the heap"
        );

        // Soundness #4: the bystander chunk is untouched.
        let bytes = p.mem.peek_bytes(canary, 64).unwrap();
        prop_assert!(
            bytes.iter().all(|b| *b == 0xAB),
            "{name}{args:?} wrote outside its arguments"
        );
    }
}
