//! Integration test for §3.1 + §3.2 (Figure 4): library-centric and
//! application-centric analysis, declaration files included.

use healers::cdecl::xml::parse_declaration_file;
use healers::cdecl::TypedefTable;
use healers::interpose::{Executable, Session};
use healers::simproc::Fault;
use healers::Toolkit;

fn noop(_s: &mut Session<'_>) -> Result<i32, Fault> {
    Ok(0)
}

#[test]
fn system_library_listing() {
    let tk = Toolkit::new();
    let libs = tk.list_libraries();
    assert_eq!(libs.len(), 2);
    assert_eq!(libs[0].0, "libsimc.so.1");
    assert!(libs[0].1 >= 90, "libc exports {}", libs[0].1);
    assert_eq!(libs[1], ("libsimm.so.1".to_string(), 5));
}

#[test]
fn declaration_files_roundtrip_for_every_library() {
    let tk = Toolkit::new();
    let table = TypedefTable::with_builtins();
    for (soname, nfuncs) in tk.list_libraries() {
        let doc = tk.declaration_file(&soname).unwrap();
        let (lib, protos) = parse_declaration_file(&doc, &table).unwrap();
        assert_eq!(lib, soname);
        assert_eq!(protos.len(), nfuncs, "{soname}");
        // Every prototype has a return type and plausible params.
        for p in &protos {
            assert!(!p.name.is_empty());
        }
    }
}

#[test]
fn header_and_manpage_prototype_sources_agree() {
    // Figure 2's two prototype sources must extract the same contracts.
    let mut table = TypedefTable::with_builtins();
    let header = healers::simlibc::header_text();
    let info = healers::cdecl::parse_header(&header, &mut table);
    assert_eq!(info.prototypes.len(), healers::simlibc::symbols().len());
    assert!(info.skipped.is_empty(), "{:?}", info.skipped);

    for name in ["strcpy", "qsort", "snprintf", "wctrans", "fread"] {
        let page = healers::simlibc::man_page(name).unwrap();
        let man = healers::cdecl::parse_manpage(&page, &table);
        assert_eq!(man.prototypes.len(), 1, "{name}");
        let from_man = &man.prototypes[0];
        let from_header = info.prototypes.iter().find(|p| p.name == name).unwrap();
        assert_eq!(from_man, from_header, "{name}: header and man page disagree");
    }
}

#[test]
fn application_inspection_matches_figure4() {
    let tk = Toolkit::new();
    let exe = Executable::new(
        "editor",
        &["libsimc.so.1", "libsimm.so.1", "libgui.so.2"],
        &["malloc", "strtok", "msqrt", "draw_window"],
        noop,
    );
    let info = tk.analyze_executable(&exe);
    assert_eq!(info.name, "editor");
    assert_eq!(
        info.libraries,
        vec![
            ("libsimc.so.1".to_string(), true),
            ("libsimm.so.1".to_string(), true),
            ("libgui.so.2".to_string(), false),
        ]
    );
    let provider = |sym: &str| {
        info.undefined.iter().find(|(s, _)| s == sym).and_then(|(_, p)| p.clone())
    };
    assert_eq!(provider("malloc").as_deref(), Some("libsimc.so.1"));
    assert_eq!(provider("msqrt").as_deref(), Some("libsimm.so.1"));
    assert_eq!(provider("draw_window"), None);

    let text = healers::interpose::render_app_info(&info);
    assert!(text.contains("editor"));
    assert!(text.contains("UNRESOLVED"));
    let xml = healers::interpose::app_info_xml(&info);
    assert!(xml.contains("<application name=\"editor\""));
}

#[test]
fn linking_enforces_what_inspection_reports() {
    let tk = Toolkit::new();
    // Inspection says draw_window is unresolved -> the loader refuses.
    let exe = Executable::new("editor", &["libsimc.so.1"], &["draw_window"], noop);
    let err = tk.run(&exe).unwrap_err();
    assert!(err.to_string().contains("draw_window"));
    // And a missing NEEDED library refuses even without symbols.
    let exe = Executable::new("editor", &["libgui.so.2"], &[], noop);
    let err = tk.run(&exe).unwrap_err();
    assert!(err.to_string().contains("libgui.so.2"));
}
