//! The adaptivity claim (§1): "Due to the fast software update cycle ...
//! the protection method should be able to adapt quickly to new software
//! releases." This test simulates a new library release and shows the
//! pipeline re-deriving the contracts automatically:
//!
//! * a *fixed* function (an `atoi` that handles NULL) loses its
//!   precondition — the regenerated wrapper stops interposing it;
//! * a *newly added* function is picked up from the new header and gets a
//!   contract with zero manual work;
//! * the BSD `strlcpy` (safe by design) derives a strictly weaker
//!   contract than `strcpy` from the very same campaign.

use healers::injector::{run_campaign, targets_from_simlibc, CampaignConfig, TargetFn};
use healers::simproc::{CVal, Fault, Proc};
use healers::{process_factory, SafePred, Toolkit, WrapperConfig, WrapperKind};

fn config() -> CampaignConfig {
    CampaignConfig { pair_values: 6, fuel: 300_000, ..CampaignConfig::default() }
}

/// The "v2" atoi: the vendor fixed the NULL-pointer crash.
fn atoi_v2(p: &mut Proc, args: &[CVal]) -> Result<CVal, Fault> {
    let ptr = args.first().copied().unwrap_or(CVal::NULL);
    if ptr.is_null() {
        return Ok(CVal::Int(0));
    }
    (simlibc::find_symbol("atoi").unwrap().imp)(p, args)
}

#[test]
fn fixed_function_loses_its_wrapper() {
    // v1: the shipping atoi crashes on NULL -> contract `cstr`.
    let v1: Vec<_> =
        targets_from_simlibc().into_iter().filter(|t| t.name == "atoi").collect();
    let r1 = run_campaign("libsimc.so.1", &v1, process_factory, &config());
    assert_eq!(r1.api.function("atoi").unwrap().preds, vec![SafePred::CStr]);

    // v2 release: same prototype, fixed implementation.
    let v2 = vec![TargetFn { imp: atoi_v2, ..v1[0].clone() }];
    let r2 = run_campaign("libsimc.so.2", &v2, process_factory, &config());
    let pred = r2.api.function("atoi").unwrap().preds[0].clone();
    assert_eq!(
        pred,
        SafePred::NullOr(Box::new(SafePred::CStr)),
        "the fixed release tolerates NULL; the derived contract widens"
    );

    // The regenerated wrappers differ accordingly: v2's check is weaker
    // (still a wrapper — wild pointers remain fatal — but NULL passes).
    let toolkit = Toolkit::new();
    let w1 = toolkit.generate_wrapper(
        WrapperKind::Robustness,
        &r1.api,
        &WrapperConfig::default(),
    );
    // The v2 wrapper must bind v2's implementations (the point of a
    // release: same symbol, new code).
    let w2 = healers::wrappergen::build_wrapper_with_impls(
        WrapperKind::Robustness,
        &r2.api,
        &WrapperConfig::default(),
        &|name| {
            if name == "atoi" {
                Some(atoi_v2 as healers::simproc::HostFn)
            } else {
                simlibc::find_symbol(name).map(|s| s.imp)
            }
        },
    );
    let mut p = process_factory();
    // Under v1's wrapper, NULL is rejected with EINVAL before the call.
    let r = w1.get("atoi").unwrap().call(&mut p, &[CVal::NULL]).unwrap();
    assert_eq!(r, CVal::Int(-1));
    assert_eq!(p.errno(), healers::simproc::errno::EINVAL);
    // Under v2's wrapper, NULL flows through to the fixed function.
    p.set_errno(0);
    let r = w2.get("atoi").unwrap().call(&mut p, &[CVal::NULL]).unwrap();
    assert_eq!(r, CVal::Int(0));
    assert_eq!(p.errno(), 0, "no spurious error for the fixed release");
}

#[test]
fn new_function_in_a_release_is_picked_up_from_the_header() {
    // The new release's header gains a function; nothing else changes in
    // the pipeline invocation.
    let mut table = healers::cdecl::TypedefTable::with_builtins();
    let v2_header = format!(
        "{}\nsize_t strlcpy(char *dst, const char *src, size_t size);\n",
        "size_t strlen(const char *s);"
    );
    let info = healers::cdecl::parse_header(&v2_header, &mut table);
    let targets: Vec<TargetFn> = info
        .prototypes
        .iter()
        .map(|proto| TargetFn {
            name: proto.name.clone(),
            proto: proto.clone(),
            imp: simlibc::find_symbol(&proto.name).unwrap().imp,
        })
        .collect();
    assert_eq!(targets.len(), 2);
    let result = run_campaign("libsimc.so.2", &targets, process_factory, &config());
    assert!(result.api.function("strlcpy").is_some(), "new function covered");
    assert!(result.reports.iter().all(|r| r.fully_robust));
}

#[test]
fn safe_by_design_functions_derive_weaker_contracts() {
    let names = ["strcpy", "strlcpy", "strcat", "strlcat"];
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| names.contains(&t.name.as_str()))
        .collect();
    let result = run_campaign("libsimc.so.1", &targets, process_factory, &config());
    let dest = |f: &str| {
        let p = result.api.function(f).unwrap().preds[0].clone();
        match p {
            SafePred::NullOr(inner) => *inner,
            other => other,
        }
    };
    // The unbounded classics need the relational contract...
    assert_eq!(dest("strcpy"), SafePred::HoldsCStrOf { src: 1 });
    assert_eq!(dest("strcat"), SafePred::HoldsCStrOf { src: 1 });
    // ...the BSD pair's dest needs only bare writability — the API's own
    // size bound does the relational work. (The size parameter itself
    // derives `any`: misusing it requires small-dest AND long-src AND
    // big-size simultaneously, a 3-way combination outside the pairwise
    // validation's reach — the same blind spot the original
    // Ballista-style search has by construction; see EXPERIMENTS.md.)
    assert_eq!(dest("strlcpy"), SafePred::Writable(1));
    assert_eq!(dest("strlcat"), SafePred::Writable(1));
    let size_pred = |f: &str| result.api.function(f).unwrap().preds[2].clone();
    assert_eq!(size_pred("strlcpy"), SafePred::Always);
    // And the robustness wrapper therefore lets a truncating strlcpy
    // call through that it would reject as strcpy.
    let toolkit = Toolkit::new();
    let w = toolkit.generate_wrapper(
        WrapperKind::Robustness,
        &result.api,
        &WrapperConfig::default(),
    );
    let mut p = process_factory();
    let small = simlibc::heap::malloc(&mut p, 8).unwrap();
    let long = p.alloc_cstr(&"y".repeat(100));
    let denied = w
        .get("strcpy")
        .unwrap()
        .call(&mut p, &[CVal::Ptr(small), CVal::Ptr(long)])
        .unwrap();
    assert!(denied.is_null(), "strcpy into 8 bytes is rejected");
    let ok = w
        .get("strlcpy")
        .unwrap()
        .call(&mut p, &[CVal::Ptr(small), CVal::Ptr(long), CVal::Int(8)])
        .unwrap();
    assert_eq!(ok, CVal::Int(100), "strlcpy truncates safely and passes");
    assert_eq!(p.read_cstr_lossy(small), "y".repeat(7));
}
