//! The full HEALERS pipeline end to end, exactly as Figure 2 draws it:
//! header text → prototypes → fault injection → robust API → generated
//! wrapper → protected application. Nothing here uses pre-baked
//! prototypes: the pipeline starts from the (synthetic) header file, as
//! the real toolkit started from /usr/include.

use healers::cdecl::{parse_header, TypedefTable};
use healers::injector::{run_campaign, CampaignConfig, TargetFn};
use healers::interpose::{Executable, Session};
use healers::simproc::{CVal, Fault};
use healers::{process_factory, Toolkit, WrapperConfig, WrapperKind};

#[test]
fn header_to_protected_application() {
    // --- 1. parse the header (the §2.2 entry point) --------------------
    let mut table = TypedefTable::with_builtins();
    let header = healers::simlibc::header_text();
    let info = parse_header(&header, &mut table);
    assert!(info.prototypes.len() >= 90);

    // --- 2. pair prototypes with implementations -----------------------
    let wanted = ["strlen", "strcpy", "atoi", "isalpha"];
    let targets: Vec<TargetFn> = info
        .prototypes
        .iter()
        .filter(|p| wanted.contains(&p.name.as_str()))
        .map(|p| TargetFn {
            name: p.name.clone(),
            proto: p.clone(),
            imp: healers::simlibc::find_symbol(&p.name).unwrap().imp,
        })
        .collect();
    assert_eq!(targets.len(), wanted.len());

    // --- 3. fault injection ---------------------------------------------
    let config =
        CampaignConfig { pair_values: 6, fuel: 300_000, ..CampaignConfig::default() };
    let campaign = run_campaign("libsimc.so.1", &targets, process_factory, &config);
    assert!(campaign.total_failures() > 0);
    assert!(campaign.reports.iter().all(|r| r.fully_robust), "these four are containable");

    // --- 4. wrapper generation ------------------------------------------
    let toolkit = Toolkit::new();
    let wrapper = toolkit.generate_wrapper(
        WrapperKind::Robustness,
        &campaign.api,
        &WrapperConfig::default(),
    );
    assert!(wrapper.get("strlen").is_some());
    assert!(wrapper.source.contains("/* Prefix code by micro-gen arg check */"));

    // --- 5. the protected application ------------------------------------
    fn entry(s: &mut Session<'_>) -> Result<i32, Fault> {
        // Parses a "config line" that is sometimes garbage.
        let name = s.literal("GONE");
        let junk = s.call("getenv", &[CVal::Ptr(name)])?;
        // atoi(NULL) crashes the bare library.
        let n = s.call("atoi", &[junk])?;
        Ok(n.as_int() as i32)
    }
    let exe =
        Executable::new("pipeline-demo", &["libsimc.so.1"], &["getenv", "atoi"], entry);
    let bare = toolkit.run(&exe).unwrap();
    assert!(bare.status.is_err());

    // getenv isn't in this wrapper (not in `wanted`) but atoi is; the
    // preload chain falls through per symbol, like real LD_PRELOAD.
    let protected = toolkit.run_protected(&exe, &[&wrapper]).unwrap();
    assert_eq!(protected.status, Ok(-1), "{:?}", protected.status);
}

#[test]
fn toolkit_facade_runs_the_whole_math_pipeline() {
    let toolkit = Toolkit::new().with_config(CampaignConfig {
        pair_values: 6,
        fuel: 300_000,
        ..CampaignConfig::default()
    });
    // One call derives the robust API of the math library.
    let campaign = toolkit.derive_robust_api("libsimm.so.1").unwrap();
    assert_eq!(campaign.reports.len(), 5);
    let wrapper = toolkit.generate_wrapper(
        WrapperKind::Robustness,
        &campaign.api,
        &WrapperConfig::default(),
    );
    // mnorm(NULL, n) crashes bare, is contained wrapped.
    let mut p = process_factory();
    let bare = healers::simlibc::math::mnorm(&mut p, &[CVal::NULL, CVal::Int(4)]);
    assert!(bare.is_err());
    let wrapped = wrapper.get("mnorm").unwrap();
    let r = wrapped.call(&mut p, &[CVal::NULL, CVal::Int(4)]).unwrap();
    assert_eq!(r, CVal::F64(0.0), "contained with the float error value");
    assert_eq!(p.errno(), healers::simproc::errno::EINVAL);

    // Unknown libraries are reported, not guessed at.
    assert!(toolkit.derive_robust_api("libunknown.so").is_none());
}

#[test]
fn all_three_wrappers_from_one_campaign() {
    let toolkit = Toolkit::new();
    let config =
        CampaignConfig { pair_values: 4, fuel: 300_000, ..CampaignConfig::default() };
    let targets: Vec<_> = healers::injector::targets_from_simlibc()
        .into_iter()
        .filter(|t| {
            ["strcpy", "malloc", "free", "exit", "strlen"].contains(&t.name.as_str())
        })
        .collect();
    let campaign = run_campaign("libsimc.so.1", &targets, process_factory, &config);

    let robust = toolkit.generate_wrapper(
        WrapperKind::Robustness,
        &campaign.api,
        &WrapperConfig::default(),
    );
    let secure = toolkit.generate_wrapper(
        WrapperKind::Security,
        &campaign.api,
        &WrapperConfig::default(),
    );
    let profile = toolkit.generate_wrapper(
        WrapperKind::Profiling,
        &campaign.api,
        &WrapperConfig::default(),
    );

    // Same robust API, three different protection profiles (Figure 1).
    assert!(robust.get("strlen").is_some());
    assert!(secure.get("strlen").is_none(), "read-only contract: no security wrapping");
    assert!(secure.get("malloc").is_some());
    assert!(profile.get("strlen").is_some());
    assert!(profile.get("exit").is_some());

    // Their generated sources carry their own micro-generators.
    assert!(robust.source.contains("arg check"));
    assert!(secure.source.contains("canary check"));
    assert!(profile.source.contains("call counter"));
    assert!(!robust.source.contains("canary check"));
}
