//! Integration test for the self-healing wrapper runtime: the full
//! fault-injection campaign is replayed through the healing wrapper and
//! its outcome distribution compared against the plain containment
//! wrapper. Healing must (a) keep the zero-failure guarantee, (b) never
//! crash/abort/hang/terminate/corrupt, (c) convert a measurable share of
//! contained calls into semantic passes, and (d) journal every action.

use healers::injector::{
    replay_cases, run_campaign, targets_from_simlibc, CampaignConfig, Outcome,
};
use healers::simproc::{CVal, Fault, Proc};
use healers::{process_factory, Toolkit, WrapperConfig, WrapperKind, WrapperLibrary};

fn config() -> CampaignConfig {
    CampaignConfig { pair_values: 6, fuel: 400_000, ..CampaignConfig::default() }
}

const NAMES: [&str; 20] = [
    "strlen", "strcpy", "strcat", "strcmp", "strchr", "strstr", "strdup", "memcpy",
    "memset", "memcmp", "isalpha", "toupper", "atoi", "strtol", "wctrans", "getenv",
    "free", "rand_r", "fclose", "puts",
];

fn dispatch_through(
    wrapper: &WrapperLibrary,
) -> impl FnMut(&str, &mut Proc, &[CVal]) -> Result<CVal, Fault> + '_ {
    move |name, p, args| match wrapper.get(name) {
        Some(w) => w.call(p, args),
        None => (healers::simlibc::find_symbol(name).unwrap().imp)(p, args),
    }
}

/// The tentpole acceptance check: healing strictly dominates containment
/// on the same recorded crash corpus.
#[test]
fn healing_dominates_containment_on_the_full_campaign() {
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| NAMES.contains(&t.name.as_str()))
        .collect();
    let cfg = config();
    let result = run_campaign("libsimc.so.1", &targets, process_factory, &cfg);
    assert!(
        result.total_failures() > 100,
        "the bare library must be fragile: {}",
        result.total_failures()
    );

    let toolkit = Toolkit::new();
    let containment = toolkit.generate_wrapper(
        WrapperKind::Robustness,
        &result.api,
        &WrapperConfig::default(),
    );
    let healing = toolkit.generate_healing_wrapper(&result.api, &WrapperConfig::default());

    let contained_summary = {
        let mut dispatch = dispatch_through(&containment);
        replay_cases(&result.crashes, &targets, process_factory, &cfg, &mut dispatch)
    };
    let healed_summary = {
        let mut dispatch = dispatch_through(&healing);
        replay_cases(&result.crashes, &targets, process_factory, &cfg, &mut dispatch)
    };

    // (a) The healing wrapper keeps the containment wrapper's guarantee.
    assert_eq!(contained_summary.still_failing, 0);
    assert_eq!(
        healed_summary.still_failing, 0,
        "healing must not reintroduce failures: {:?}",
        healed_summary.histogram
    );

    // (b) No catastrophic outcome survives healing.
    for bad in [
        Outcome::Crash,
        Outcome::Abort,
        Outcome::Hang,
        Outcome::Terminated,
        Outcome::Silent,
    ] {
        assert_eq!(
            healed_summary.histogram.get(&bad).copied().unwrap_or(0),
            0,
            "{bad:?} outcomes must be eliminated: {:?}",
            healed_summary.histogram
        );
    }

    // (c) Healing converts contained calls into semantic passes.
    let passes = |s: &healers::injector::ReplaySummary| {
        s.histogram.get(&Outcome::Pass).copied().unwrap_or(0)
    };
    assert!(
        passes(&healed_summary) > passes(&contained_summary),
        "healing must convert contained calls into passes: healed {:?} vs contained {:?}",
        healed_summary.histogram,
        contained_summary.histogram
    );

    // (d) Every repair was journaled — the audit trail covers at least
    // every non-pass-through replayed case, and renders in both report
    // and XML forms.
    assert!(
        healed_summary.total <= healing.journal.len(),
        "every replayed crash case exercises at least one journaled action: {} cases, {} events",
        healed_summary.total,
        healing.journal.len()
    );
    let events = healing.journal.snapshot();
    assert!(events.iter().any(|e| e.action == healers::HealAction::Repaired));

    let xml = healers::profiler::to_xml_with_healing(
        "campaign-replay",
        "healing",
        &healers::profiler::Snapshot::default(),
        &events,
    );
    assert!(
        xml.contains(&format!("<healing events=\"{}\">", events.len())),
        "the self-describing document must carry the journal"
    );
    let report = healers::profiler::render_report_with_healing(
        "campaign-replay",
        &healers::profiler::Snapshot::default(),
        &events,
    );
    assert!(report.contains("Healing audit journal"));
}

/// Per-violation-class policies are honoured end to end: a function
/// routed to `Oblivious` never touches errno, one routed to `Contain`
/// behaves exactly like the robustness wrapper.
#[test]
fn policy_overrides_route_per_function() {
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| ["strlen", "puts"].contains(&t.name.as_str()))
        .collect();
    let cfg = config();
    let result = run_campaign("libsimc.so.1", &targets, process_factory, &cfg);

    let engine = healers::PolicyEngine::healing()
        .with_func("strlen", healers::Policy::Oblivious)
        .with_func("puts", healers::Policy::Contain);
    let toolkit = Toolkit::new().with_healing_policy(engine);
    let wrapper = toolkit.generate_healing_wrapper(&result.api, &WrapperConfig::default());

    let mut p = process_factory();
    p.set_errno(0);
    let r = wrapper.get("strlen").unwrap().call(&mut p, &[CVal::NULL]).unwrap();
    assert_eq!(r, CVal::Int(0), "oblivious scans NULL as a manufactured empty string");
    assert_eq!(p.errno(), 0, "without touching errno");

    let r = wrapper.get("puts").unwrap().call(&mut p, &[CVal::NULL]).unwrap();
    assert_eq!(r, CVal::Int(-1));
    assert_ne!(p.errno(), 0, "containment sets errno");

    let actions: Vec<_> = wrapper.journal.snapshot().iter().map(|e| e.action).collect();
    assert!(actions.contains(&healers::HealAction::Obliviated));
    assert!(actions.contains(&healers::HealAction::Contained));
}
