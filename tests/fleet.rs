//! Fleet-scale collection and closed-loop remediation, end to end:
//! zero acked-submission loss under a 256-instance fleet, exact shed
//! accounting under saturation for every shed policy, the
//! Observe → Contain → Heal escalation driven by an injected crash
//! burst, rollback + circuit breaker on a non-improving escalation,
//! and byte-identical same-seed reports.

use healers_core::{run_fleet_sim, FleetSimConfig};
use profiler::{
    Director, DirectorConfig, EscalationLevel, FleetConfig, FleetMeta, FleetService,
    RemedyAction, ShedPolicy, Stats, SubmitOutcome, WindowFunc, WindowStats,
};

fn sample_doc(app: &str, instance: u64, window: u64) -> String {
    let stats = Stats::new();
    stats.record_call("strcpy", 40, None);
    let meta = FleetMeta { instance, window, crashed_in: None, fault: None };
    profiler::to_xml_for_fleet(app, "healing", &meta, &stats.snapshot(), None)
}

// -------------------------------------------------------------------------
// tentpole: the 256-instance fleet simulation

#[test]
fn fleet_of_256_instances_loses_nothing_and_walks_the_ladder() {
    let out = run_fleet_sim(&FleetSimConfig {
        instances: 256,
        rounds: 8,
        ..FleetSimConfig::default()
    });

    // Zero acked-submission loss: one document per instance per round,
    // every one merged, accounting balanced, nothing shed.
    assert!(out.lossless(), "accounting: {:?}", out.accounting);
    assert_eq!(out.rollup.docs, 256 * 8);
    assert_eq!(out.rollup.rejected, 0);
    assert_eq!(out.accounting.accepted(), 256 * 8);

    // The burst crashes a visible slice of the editor population.
    assert!(out.rollup.crash_docs > 20, "crash docs: {}", out.rollup.crash_docs);
    let strcpy = &out.rollup.per_func["strcpy"];
    assert!(strcpy.crashes > 20, "strcpy crashes: {}", strcpy.crashes);
    assert_eq!(out.rollup.top_crashing(1)[0].0, "strcpy", "report: {}", out.fleet_report);
    // Crashes concentrate in the bursting application.
    assert!(
        out.rollup.per_app["editor"].crashes > 20,
        "editor health: {:?}",
        out.rollup.per_app["editor"]
    );
    assert_eq!(out.rollup.per_app["webd"].crashes, 0);
    assert_eq!(out.rollup.per_app["gamed"].crashes, 0);

    // The injected burst provably drives the two-step escalation:
    // Observe -> Contain (shape A contained, shape B keeps crashing),
    // then Contain -> Heal, each confirmed by its observation window.
    let ladder: Vec<_> = out
        .journal
        .iter()
        .filter(|e| e.func == "strcpy")
        .map(|e| (e.action, e.from, e.to))
        .collect();
    assert!(
        ladder.contains(&(
            RemedyAction::Escalate,
            EscalationLevel::Observe,
            EscalationLevel::Contain
        )),
        "journal: {}",
        out.escalation_report
    );
    assert!(
        ladder.contains(&(
            RemedyAction::Escalate,
            EscalationLevel::Contain,
            EscalationLevel::Heal
        )),
        "journal: {}",
        out.escalation_report
    );
    let confirms = ladder.iter().filter(|(a, _, _)| *a == RemedyAction::Confirm).count();
    assert!(confirms >= 2, "both escalations confirmed: {}", out.escalation_report);
    assert!(
        !ladder.iter().any(|(a, _, _)| *a == RemedyAction::Rollback),
        "improving escalations must not roll back: {}",
        out.escalation_report
    );
    assert_eq!(out.final_levels["strcpy"], EscalationLevel::Heal);

    // Healing is visible in the rollup: once strcpy runs at Heal, the
    // editor population journals repairs instead of crashing.
    assert!(out.rollup.per_app["editor"].heals > 0, "report: {}", out.fleet_report);

    // Windowed crash rates: the burst window is hot, the post-Heal
    // windows are quiet.
    let hot = &out.rollup.windows[&healers_core::BURST_WINDOW];
    assert!(hot.per_func["strcpy"].crashes > 0, "burst window must show crashes");
    let last = &out.rollup.windows[&7];
    assert_eq!(
        last.per_func["strcpy"].crashes, 0,
        "Heal stops both crash shapes: {}",
        out.fleet_report
    );
}

#[test]
fn same_seed_runs_render_byte_identical_reports() {
    let config = FleetSimConfig {
        instances: 96,
        rounds: 6,
        threads: 7,
        ..FleetSimConfig::default()
    };
    let a = run_fleet_sim(&config);
    let b = run_fleet_sim(&FleetSimConfig { threads: 3, ..config.clone() });
    assert_eq!(a.rollup, b.rollup, "rollup independent of thread interleaving");
    assert_eq!(a.fleet_report, b.fleet_report, "fleet report byte-identical");
    assert_eq!(a.journal, b.journal, "escalation journal byte-identical");
    assert_eq!(a.escalation_report, b.escalation_report);
    // Shard count changes the per-shard accounting table but must not
    // change the merged rollup (or anything derived from it).
    let c = run_fleet_sim(&FleetSimConfig { shards: 2, ..config });
    assert_eq!(a.rollup, c.rollup, "rollup independent of sharding");
    assert_eq!(a.journal, c.journal);
}

#[test]
fn different_seeds_still_lossless() {
    for seed in [1u64, 0xDEAD_BEEF] {
        let out = run_fleet_sim(&FleetSimConfig {
            instances: 32,
            rounds: 4,
            seed,
            ..FleetSimConfig::default()
        });
        assert!(out.lossless(), "seed {seed}: {:?}", out.accounting);
    }
}

// -------------------------------------------------------------------------
// satellite: acked == collected and shed == drop-counter total under
// saturating concurrent submitters, for every shed policy

#[test]
fn saturation_accounting_is_exact_for_every_shed_policy() {
    let policies =
        [ShedPolicy::Shed, ShedPolicy::Retry { backoff_micros: 5 }, ShedPolicy::Block];
    for shed in policies {
        let service = FleetService::start(FleetConfig {
            shards: 2,
            queue_capacity: 8,
            shed,
            ..FleetConfig::default()
        });
        let submitters = 8u64;
        let per_thread = 300u64;
        let totals: Vec<(u64, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..submitters)
                .map(|t| {
                    let c = service.collector();
                    scope.spawn(move || {
                        let mut acked = 0u64;
                        let mut shed_seen = 0u64;
                        for i in 0..per_thread {
                            let doc = sample_doc("stress", t, i % 4);
                            match shed {
                                // Retry policy: resolve back-pressure in
                                // place; every document must land.
                                ShedPolicy::Retry { .. } => {
                                    if c.submit_until_accepted(&doc) {
                                        acked += 1;
                                    }
                                }
                                _ => match c.submit(&doc) {
                                    SubmitOutcome::Accepted => acked += 1,
                                    SubmitOutcome::Shed => shed_seen += 1,
                                    SubmitOutcome::Retry { .. } => {
                                        unreachable!("policy {shed:?} never hints retry")
                                    }
                                },
                            }
                        }
                        (acked, shed_seen)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let acked: u64 = totals.iter().map(|(a, _)| a).sum();
        let shed_seen: u64 = totals.iter().map(|(_, s)| s).sum();

        let out = service.shutdown();
        // acked == collected: every ack is a merged (or traced-reject)
        // document, nothing lost after an ack.
        assert_eq!(out.accounting.accepted(), acked, "{shed:?}");
        assert_eq!(out.rollup.docs + out.rollup.rejected, acked, "{shed:?}");
        assert!(out.accounting.balanced(), "{shed:?}: {:?}", out.accounting);
        // shed == drop-counter total: every refused submission is on a
        // named counter, exactly once.
        assert_eq!(out.accounting.shed_total(), shed_seen, "{shed:?}");
        match shed {
            ShedPolicy::Shed => {
                assert_eq!(acked + shed_seen, submitters * per_thread, "{shed:?}")
            }
            // Retry and Block policies admit everything eventually.
            _ => {
                assert_eq!(acked, submitters * per_thread, "{shed:?}");
                assert_eq!(shed_seen, 0, "{shed:?}");
            }
        }
    }
}

// -------------------------------------------------------------------------
// satellite: a retry storm against one saturated shard — capped
// exponential backoff with seeded jitter must still resolve every
// submission and keep the accepted == merged + rejected invariant exact

#[test]
fn retry_storm_on_saturated_shard_keeps_exact_accounting() {
    let service = FleetService::start(FleetConfig {
        shards: 1,
        queue_capacity: 2,
        shed: ShedPolicy::Retry { backoff_micros: 1 },
        ..FleetConfig::default()
    });
    let submitters = 8u64;
    let per_thread = 300u64;
    let acked: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..submitters)
            .map(|t| {
                let c = service.collector();
                scope.spawn(move || {
                    let mut acked = 0u64;
                    for i in 0..per_thread {
                        let doc = sample_doc("storm", t, i % 4);
                        if c.submit_until_accepted(&doc) {
                            acked += 1;
                        }
                    }
                    acked
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    assert_eq!(acked, submitters * per_thread, "retry always resolves to an ack");
    let out = service.shutdown();
    assert_eq!(out.accounting.accepted(), acked);
    assert!(out.accounting.balanced(), "{:?}", out.accounting);
    assert_eq!(out.rollup.docs + out.rollup.rejected, acked);
    assert_eq!(out.accounting.shed_total(), 0, "retry policy never sheds");
    assert!(out.accounting.retry_signals > 0, "the storm must actually have retried");
}

// -------------------------------------------------------------------------
// director-level: rollback and circuit breaker over the journal

fn burst_window(func: &str, calls: u64, crashes: u64) -> WindowStats {
    let mut w = WindowStats::default();
    w.per_func.insert(func.into(), WindowFunc { calls, errors: 0, crashes });
    w.docs = calls + crashes;
    w
}

#[test]
fn non_improving_escalation_is_rolled_back() {
    let mut d = Director::new(DirectorConfig::default());
    // An unabating burst: escalation cannot help (the crash shape is
    // not what the level fixes), so the verdict must be a rollback.
    let burst = burst_window("gets", 40, 60);
    let changes = d.observe_window(0, &burst);
    assert_eq!(changes.len(), 1);
    assert_eq!(changes[0].level, EscalationLevel::Contain);
    assert!(d.observe_window(1, &burst).is_empty());
    let verdict = d.observe_window(2, &burst);
    assert_eq!(verdict.len(), 1, "rollback must be applied to the fleet");
    assert_eq!(verdict[0].level, EscalationLevel::Observe);
    let rollback = d
        .journal()
        .iter()
        .find(|e| e.action == RemedyAction::Rollback)
        .expect("rollback journaled");
    assert_eq!(rollback.from, EscalationLevel::Contain);
    assert_eq!(rollback.to, EscalationLevel::Observe);
    assert_eq!(d.level_of("gets"), EscalationLevel::Observe);
}

#[test]
fn circuit_breaker_prevents_flapping() {
    let cfg = DirectorConfig::default();
    let cooldown = cfg.cooldown_windows;
    let mut d = Director::new(cfg);
    let burst = burst_window("gets", 40, 60);
    d.observe_window(0, &burst);
    d.observe_window(1, &burst);
    let rollback_at = 2;
    d.observe_window(rollback_at, &burst);
    // While the breaker is open the ongoing anomaly produces Suppress
    // journal entries and zero policy changes — no flapping.
    for w in (rollback_at + 1)..(rollback_at + cooldown) {
        let changes = d.observe_window(w, &burst);
        assert!(changes.is_empty(), "window {w} must be suppressed: {changes:?}");
    }
    let suppressed =
        d.journal().iter().filter(|e| e.action == RemedyAction::Suppress).count();
    assert!(suppressed >= (cooldown - 1) as usize, "journal: {:?}", d.journal());
    // After cooldown the breaker closes and escalation is allowed again.
    let after = d.observe_window(rollback_at + cooldown, &burst);
    assert_eq!(after.len(), 1, "breaker must close after cooldown");
    assert_eq!(after[0].level, EscalationLevel::Contain);
}
