//! Integration tests for the static analyzer: seeded-unsoundness
//! fixtures the linter must flag, lint-cleanliness of the toolkit's own
//! generated wrappers, contract-seeded campaign equivalence (same
//! verdicts, fewer cases), and determinism of both reports.

use std::sync::Arc;

use healers::analyzer::{self, Fact, LintRule, PRESEED_THRESHOLD};
use healers::guardian::{CanaryRegistry, GuardOracle};
use healers::injector::{
    run_campaign, run_campaign_with_hints, targets_from_simlibc, CampaignConfig, TargetFn,
};
use healers::simproc::CVal;
use healers::typelattice::SafePred;
use healers::wrappergen::{Hook, HookOp, WrapperBuilder};
use healers::{
    process_factory, simlibc, PolicyEngine, Toolkit, WrapperConfig, WrapperKind,
};

fn quick_config() -> CampaignConfig {
    CampaignConfig { pair_values: 4, fuel: 200_000, ..CampaignConfig::default() }
}

fn subset_targets() -> Vec<TargetFn> {
    const SUBSET: &[&str] =
        &["strlen", "strcpy", "strcmp", "printf", "free", "time", "isalpha", "memcpy"];
    targets_from_simlibc()
        .into_iter()
        .filter(|t| SUBSET.contains(&t.name.as_str()))
        .collect()
}

fn infer_subset() -> (Vec<TargetFn>, analyzer::ContractBase) {
    let targets = subset_targets();
    let protos: Vec<_> = targets.iter().map(|t| t.proto.clone()).collect();
    let base = analyzer::infer_contracts("libsimc.so.1", &protos, &simlibc::man_page);
    (targets, base)
}

// ---- seeded-unsoundness fixtures ------------------------------------

/// Deliberately defective: clamps `n` and only then checks it, so the
/// check validates the clamped value instead of the caller's.
struct MutateThenCheckHook;

impl Hook for MutateThenCheckHook {
    fn name(&self) -> &'static str {
        "fixture clamp"
    }
    fn describe(&self, _proto: &healers::cdecl::Prototype) -> Vec<HookOp> {
        vec![
            HookOp::Mutate { arg: 2, label: "clamp n to the buffer".into() },
            HookOp::Check {
                arg: 2,
                pred: Some(SafePred::SizeBelow(1 << 16)),
                label: "n below 2^16".into(),
                null_guarded: true,
                memoized: false,
            },
        ]
    }
}

/// Deliberately defective: range-checks far beyond what the 4-byte
/// register truncation at the call boundary can represent.
struct NarrowMaskHook;

impl Hook for NarrowMaskHook {
    fn name(&self) -> &'static str {
        "fixture range"
    }
    fn describe(&self, _proto: &healers::cdecl::Prototype) -> Vec<HookOp> {
        vec![HookOp::Check {
            arg: 0,
            pred: Some(SafePred::IntInRange { min: 0, max: 1 << 40 }),
            label: "wide range".into(),
            null_guarded: false,
            memoized: false,
        }]
    }
}

/// Deliberately defective: scans the string without establishing the
/// pointer is non-NULL first.
struct RawScanHook;

impl Hook for RawScanHook {
    fn name(&self) -> &'static str {
        "fixture scan"
    }
    fn describe(&self, _proto: &healers::cdecl::Prototype) -> Vec<HookOp> {
        vec![HookOp::Check {
            arg: 0,
            pred: Some(SafePred::CStr),
            label: "raw cstr scan".into(),
            null_guarded: false,
            memoized: false,
        }]
    }
}

fn fixture_library() -> healers::WrapperLibrary {
    let mut b = WrapperBuilder::new("libfixture.so.1");
    b.hook("strncpy", Arc::new(MutateThenCheckHook));
    b.hook("isalpha", Arc::new(NarrowMaskHook));
    b.hook("strlen", Arc::new(RawScanHook));
    b.build()
}

#[test]
fn linter_flags_every_seeded_defect() {
    let findings = analyzer::lint_library(&fixture_library());
    let mut rules: Vec<(&str, LintRule)> =
        findings.iter().map(|f| (f.func.as_str(), f.rule)).collect();
    rules.sort_unstable();
    // isalpha's wide range check is also an unguarded check on an int —
    // the scan rule keys on null_guarded, which the fixture leaves
    // false — so the defect inventory is exactly:
    assert!(rules.contains(&("strncpy", LintRule::CheckAfterMutation)), "{findings:?}");
    assert!(rules.contains(&("isalpha", LintRule::NarrowMask)), "{findings:?}");
    assert!(rules.contains(&("strlen", LintRule::UnguardedScan)), "{findings:?}");
    let report = analyzer::render_findings("libfixture.so.1", &findings);
    assert!(report.contains("check-after-mutation"), "{report}");
    assert!(report.contains("narrow-mask"), "{report}");
    assert!(report.contains("unguarded-cstr-scan"), "{report}");
}

#[test]
fn lint_report_is_deterministic_across_runs() {
    let a = analyzer::render_findings(
        "libfixture.so.1",
        &analyzer::lint_library(&fixture_library()),
    );
    let b = analyzer::render_findings(
        "libfixture.so.1",
        &analyzer::lint_library(&fixture_library()),
    );
    assert_eq!(a, b, "two same-input lint runs must render byte-identically");
}

#[test]
fn contract_base_is_deterministic_across_runs() {
    let (_, a) = infer_subset();
    let (_, b) = infer_subset();
    assert_eq!(a.to_text(), b.to_text());
}

// ---- contract-seeded campaign equivalence ---------------------------

#[test]
fn seeded_campaign_keeps_verdicts_and_prunes_cases() {
    let (targets, base) = infer_subset();
    let protos: Vec<_> = targets.iter().map(|t| t.proto.clone()).collect();
    let hints = analyzer::ladder_hints(&base, &protos);
    assert!(!hints.is_empty(), "{}", base.to_text());

    let config = quick_config();
    let plain = run_campaign("libsimc.so.1", &targets, process_factory, &config);
    let seeded =
        run_campaign_with_hints("libsimc.so.1", &targets, process_factory, &config, &hints);

    assert_eq!(
        seeded.api.to_xml(),
        plain.api.to_xml(),
        "pre-seeding must not change any robust-API verdict"
    );
    assert_eq!(plain.total_pruned(), 0);
    assert!(seeded.total_pruned() > 0, "contracts must prune injection cases");
    assert!(seeded.executed_cases() < plain.executed_cases());
    // The pruned counts surface in the campaign XML for EXPERIMENTS.md.
    let xml = healers::injector::to_xml(&seeded);
    assert!(xml.contains(&format!("pruned=\"{}\"", seeded.total_pruned())), "{xml}");
    // NULL-tolerant functions must keep their permissive verdicts: free
    // and time accept NULL, and their contracts say so (NullOk), so no
    // floor may have been applied to them.
    assert_eq!(hints.floor("free", 0), 0);
    assert_eq!(hints.floor("time", 0), 0);
    assert!(hints.floor("strlen", 0) > 0);
}

// ---- the toolkit's own wrappers are lint-clean ----------------------

#[test]
fn generated_wrappers_have_no_findings() {
    let (targets, base) = infer_subset();
    let protos: Vec<_> = targets.iter().map(|t| t.proto.clone()).collect();
    let hints = analyzer::ladder_hints(&base, &protos);
    let seeded = run_campaign_with_hints(
        "libsimc.so.1",
        &targets,
        process_factory,
        &quick_config(),
        &hints,
    );
    let toolkit = Toolkit::new();
    for kind in [
        WrapperKind::Robustness,
        WrapperKind::Security,
        WrapperKind::Healing,
        WrapperKind::Profiling,
        WrapperKind::Tracing,
    ] {
        let wrapper =
            toolkit.generate_wrapper(kind, &seeded.api, &WrapperConfig::default());
        let findings = analyzer::lint_library(&wrapper);
        assert!(findings.is_empty(), "{kind:?}: {findings:?}");
    }
    assert!(analyzer::lint_contracts(&base).is_empty());
}

#[test]
fn substitute_wrapper_is_proven_and_lint_clean() {
    let (targets, base) = infer_subset();
    let seeded = run_campaign_with_hints(
        "libsimc.so.1",
        &targets,
        process_factory,
        &quick_config(),
        &analyzer::ladder_hints(
            &base,
            &targets.iter().map(|t| t.proto.clone()).collect::<Vec<_>>(),
        ),
    );
    let toolkit = Toolkit::new();
    let security = toolkit.generate_wrapper(
        WrapperKind::Security,
        &seeded.api,
        &WrapperConfig::default(),
    );
    let analysis = toolkit.analyze_substitutions(&security, Some(&base));
    assert!(
        analysis.plans.iter().any(|p| p.func == "strcpy"),
        "strcpy proof must discharge over the security wrapper:\n{}",
        analysis.to_text()
    );
    let substitute = toolkit.generate_substitute_wrapper(
        &seeded.api,
        &WrapperConfig::default(),
        &analysis.plans,
    );
    assert!(!substitute.is_empty(), "proven plans must produce wrapped functions");
    // The rerouted wrappers stay fully lintable — real check/mutate ops,
    // never an opaque fallback — and produce no findings.
    for (name, f) in substitute.iter() {
        let model = f.call_model();
        assert!(
            !model.ops.is_empty()
                && !model.ops.iter().any(|op| matches!(op.op, HookOp::Opaque)),
            "{name} went unlintable: {model:?}"
        );
    }
    assert!(analyzer::lint_library(&substitute).is_empty());
}

// ---- contract-derived hooks -----------------------------------------

#[test]
fn contract_hook_protects_with_contract_provenance() {
    let (targets, base) = infer_subset();
    let strlen = targets.iter().find(|t| t.name == "strlen").unwrap();
    let contract = base.function("strlen").unwrap();
    assert!(contract.confidence(&Fact::CStr(0)) >= PRESEED_THRESHOLD);

    let oracle = GuardOracle::new(Arc::new(CanaryRegistry::new()));
    let hook = analyzer::contract_hook(
        contract,
        &strlen.proto,
        oracle,
        PolicyEngine::containment(),
    );
    let mut b = WrapperBuilder::new("libcontract.so.1");
    b.hook("strlen", Arc::new(hook));
    let lib = b.build();

    // The statically-derived check is visible in the call model, tagged.
    let model = lib.get("strlen").unwrap().call_model();
    assert!(model.ops.iter().any(|op| op.provenance == "contract"), "{model:?}");
    assert!(analyzer::lint_library(&lib).is_empty());

    // And it protects: strlen(NULL) is contained without any campaign.
    let mut p = process_factory();
    let r = lib.get("strlen").unwrap().call(&mut p, &[CVal::NULL]).unwrap();
    assert_eq!(r, CVal::Int(-1), "contained by a contract-derived check");
}
