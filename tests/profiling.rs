//! Integration test for §3.3 / Figure 5: the profiling wrapper gathers
//! call frequencies, execution-time shares and errno distributions, and
//! ships a self-describing XML document to the collection server at
//! termination.

use healers::injector::{run_campaign, targets_from_simlibc, CampaignConfig};
use healers::interpose::{Executable, Session};
use healers::profiler::{parse_header_fields, render_report, CollectionServer};
use healers::simproc::{errno, CVal, Fault};
use healers::{process_factory, Toolkit, WrapperConfig, WrapperKind};

fn workload_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
    // Strings: many short calls.
    let text = s.literal("alpha beta gamma");
    for _ in 0..10 {
        s.call("strlen", &[CVal::Ptr(text)])?;
    }
    // A couple of allocations.
    let buf = s.malloc(128)?;
    s.call("strcpy", &[CVal::Ptr(buf), CVal::Ptr(text)])?;
    // errno traffic: two *different* errnos so both are recorded.
    let missing = s.literal("no-such-file");
    let mode = s.literal("r");
    s.call("fopen", &[CVal::Ptr(missing), CVal::Ptr(mode)])?;
    let bad_mode = s.literal("frobnicate");
    s.call("fopen", &[CVal::Ptr(missing), CVal::Ptr(bad_mode)])?;
    s.call("exit", &[CVal::Int(0)])?;
    unreachable!()
}

fn workload() -> Executable {
    Executable::new(
        "workload",
        &["libsimc.so.1"],
        &["strlen", "malloc", "strcpy", "fopen", "exit"],
        workload_entry,
    )
}

#[test]
fn profiling_wrapper_gathers_figure5_data() {
    let toolkit = Toolkit::new();
    let campaign = run_campaign(
        "libsimc.so.1",
        &targets_from_simlibc(),
        process_factory,
        &CampaignConfig { pair_values: 2, fuel: 200_000, ..CampaignConfig::default() },
    );
    let server = CollectionServer::start();
    let config = WrapperConfig {
        app_name: "workload".into(),
        collector: Some(server.collector()),
        policy: None,
        ..WrapperConfig::default()
    };
    let wrapper = toolkit.generate_wrapper(WrapperKind::Profiling, &campaign.api, &config);
    let out = toolkit.run_protected(&workload(), &[&wrapper]).unwrap();
    assert_eq!(out.status, Ok(0), "{:?}", out.status);

    // Call frequencies.
    let snap = wrapper.stats.snapshot();
    assert_eq!(snap.per_func["strlen"].calls, 10);
    assert_eq!(snap.per_func["strcpy"].calls, 1);
    assert_eq!(snap.per_func["fopen"].calls, 2);
    assert_eq!(snap.per_func["exit"].calls, 1);

    // Execution-time shares sum to ~100%.
    let total: f64 = snap.per_func.keys().map(|f| snap.time_share(f)).sum();
    assert!((total - 100.0).abs() < 0.5, "{total}");

    // errno distribution: both causes recorded, classified by errno.
    assert_eq!(snap.per_func["fopen"].errnos[&errno::ENOENT], 1);
    assert_eq!(snap.per_func["fopen"].errnos[&errno::EINVAL], 1);
    assert_eq!(snap.global_errnos[&errno::ENOENT], 1);
    assert_eq!(snap.global_errnos[&errno::EINVAL], 1);

    // The text report renders the same facts.
    let report = render_report("workload", &snap);
    assert!(report.contains("strlen"));
    assert!(report.contains("ENOENT"));
    assert!(report.contains("Invalid argument"));

    // The XML document reached the central server at exit (§2.3).
    let collected = server.shutdown();
    assert_eq!(collected.submissions.len(), 1);
    let s = &collected.submissions[0];
    assert_eq!(s.application, "workload");
    assert_eq!(s.wrapper, "profiling");
    assert!(s.functions.contains(&"strlen".to_string()));
    let (app, wrapper_tag, funcs) = parse_header_fields(&s.document).unwrap();
    assert_eq!(app, "workload");
    assert_eq!(wrapper_tag, "profiling");
    assert!(funcs.len() >= 5);
}

#[test]
fn profiling_is_transparent_to_results() {
    // The profiled run must compute exactly what the bare run computes.
    let toolkit = Toolkit::new();
    fn entry(s: &mut Session<'_>) -> Result<i32, Fault> {
        let text = s.literal("0x2a");
        let v = s.call("strtol", &[CVal::Ptr(text), CVal::NULL, CVal::Int(0)])?;
        Ok(v.as_int() as i32)
    }
    let exe = Executable::new("calc", &["libsimc.so.1"], &["strtol"], entry);
    let bare = toolkit.run(&exe).unwrap();
    assert_eq!(bare.status, Ok(42));

    let campaign = run_campaign(
        "libsimc.so.1",
        &targets_from_simlibc()
            .into_iter()
            .filter(|t| t.name == "strtol")
            .collect::<Vec<_>>(),
        process_factory,
        &CampaignConfig { pair_values: 2, fuel: 200_000, ..CampaignConfig::default() },
    );
    let wrapper = toolkit.generate_wrapper(
        WrapperKind::Profiling,
        &campaign.api,
        &WrapperConfig::default(),
    );
    let profiled = toolkit.run_protected(&exe, &[&wrapper]).unwrap();
    assert_eq!(profiled.status, Ok(42), "profiling must not change behaviour");
    assert_eq!(wrapper.stats.snapshot().per_func["strtol"].calls, 1);
}

#[test]
fn many_processes_report_to_one_server() {
    let toolkit = Toolkit::new();
    let campaign = run_campaign(
        "libsimc.so.1",
        &targets_from_simlibc()
            .into_iter()
            .filter(|t| ["strlen", "exit"].contains(&t.name.as_str()))
            .collect::<Vec<_>>(),
        process_factory,
        &CampaignConfig { pair_values: 2, fuel: 200_000, ..CampaignConfig::default() },
    );
    let server = CollectionServer::start();

    fn entry(s: &mut Session<'_>) -> Result<i32, Fault> {
        let t = s.literal("x");
        s.call("strlen", &[CVal::Ptr(t)])?;
        s.call("exit", &[CVal::Int(0)])?;
        unreachable!()
    }
    for app in ["app-a", "app-b", "app-c"] {
        let config = WrapperConfig {
            app_name: app.into(),
            collector: Some(server.collector()),
            policy: None,
            ..WrapperConfig::default()
        };
        let wrapper =
            toolkit.generate_wrapper(WrapperKind::Profiling, &campaign.api, &config);
        let exe = Executable::new(app, &["libsimc.so.1"], &["strlen", "exit"], entry);
        let out = toolkit.run_protected(&exe, &[&wrapper]).unwrap();
        assert_eq!(out.status, Ok(0));
    }
    let collected = server.shutdown();
    assert_eq!(collected.submissions.len(), 3);
    let apps = collected.per_application();
    assert_eq!(apps.len(), 3);
    assert!(apps.contains_key("app-b"));
}
