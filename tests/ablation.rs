//! Ablation assertions: the two campaign-engine design choices
//! (silent-failure detection, pairwise validation) are both load-bearing
//! for relational contracts, and the Tracing wrapper demonstrates the
//! flexible-composition claim.

use healers::injector::{run_campaign, targets_from_simlibc, CampaignConfig};
use healers::interpose::{Executable, Session};
use healers::simproc::{CVal, Fault};
use healers::{process_factory, SafePred, Toolkit, WrapperConfig, WrapperKind};

fn strcpy_targets() -> Vec<healers::injector::TargetFn> {
    targets_from_simlibc().into_iter().filter(|t| t.name == "strcpy").collect()
}

fn dest_pred(config: &CampaignConfig) -> SafePred {
    let result = run_campaign("libsimc.so.1", &strcpy_targets(), process_factory, config);
    let pred = result.api.function("strcpy").unwrap().preds[0].clone();
    match pred {
        SafePred::NullOr(inner) => *inner,
        other => other,
    }
}

#[test]
fn both_detectors_are_needed_for_relational_contracts() {
    let base =
        CampaignConfig { pair_values: 6, fuel: 300_000, ..CampaignConfig::default() };

    // Full configuration: the relational strcpy contract.
    assert_eq!(dest_pred(&base), SafePred::HoldsCStrOf { src: 1 });

    // Without silent detection, in-arena overflows are invisible and the
    // contract degrades to bare writability.
    let no_silent = CampaignConfig { detect_silent: false, ..base.clone() };
    assert_eq!(dest_pred(&no_silent), SafePred::Writable(1));

    // Without pairwise validation, the relational case is never tested.
    let no_pairs = CampaignConfig { validate_pairs: false, ..base.clone() };
    assert_eq!(dest_pred(&no_pairs), SafePred::Writable(1));
}

#[test]
fn ablated_campaigns_run_fewer_tests() {
    let base =
        CampaignConfig { pair_values: 6, fuel: 300_000, ..CampaignConfig::default() };
    let full = run_campaign("libsimc.so.1", &strcpy_targets(), process_factory, &base);
    let no_pairs = run_campaign(
        "libsimc.so.1",
        &strcpy_targets(),
        process_factory,
        &CampaignConfig { validate_pairs: false, ..base },
    );
    assert!(full.total_tests() > no_pairs.total_tests());
    assert!(full.total_failures() >= no_pairs.total_failures());
}

#[test]
fn tracing_wrapper_logs_every_interposed_call() {
    let toolkit = Toolkit::new();
    let config =
        CampaignConfig { pair_values: 4, fuel: 300_000, ..CampaignConfig::default() };
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| ["strlen", "abs", "puts"].contains(&t.name.as_str()))
        .collect();
    let campaign = run_campaign("libsimc.so.1", &targets, process_factory, &config);
    let tracer = toolkit.generate_wrapper(
        WrapperKind::Tracing,
        &campaign.api,
        &WrapperConfig::default(),
    );
    assert_eq!(tracer.len(), 3, "tracing wraps everything");
    assert_eq!(tracer.soname, "libhealers_trace.so.1");
    assert!(tracer.source.contains("micro-gen log call"), "{}", tracer.source);

    fn entry(s: &mut Session<'_>) -> Result<i32, Fault> {
        let msg = s.literal("trace me");
        s.call("strlen", &[CVal::Ptr(msg)])?;
        s.call("abs", &[CVal::Int(-9)])?;
        s.call("puts", &[CVal::Ptr(msg)])?;
        Ok(0)
    }
    let exe =
        Executable::new("traced", &["libsimc.so.1"], &["strlen", "abs", "puts"], entry);
    let out = toolkit.run_protected(&exe, &[&tracer]).unwrap();
    assert!(out.success());
    let log = tracer.log.lock().clone();
    assert_eq!(log.len(), 3, "{log:?}");
    assert!(log[1].starts_with("abs(-9"), "{log:?}");
}
