//! End-to-end tests of the context-aware failure-oblivious availability
//! mode (`DESIGN.md` §14): a victim that strcpy-overflows, scans NULL
//! and consumes a contract-derived default keeps running under a
//! `Policy::Oblivious` healing wrapper — and every manufactured read,
//! suppressed write and tainted downstream use lands on the audit
//! record, in the journal and in the shipped XML document.

use healers::injector::{run_campaign, targets_from_simlibc, CampaignConfig};
use healers::interpose::{Executable, Session};
use healers::profiler::CollectionServer;
use healers::simproc::{CVal, Fault};
use healers::{
    process_factory, HealAction, Policy, PolicyEngine, Toolkit, WrapperConfig,
    WrapperLibrary,
};

const FUNCS: [&str; 7] = ["strcpy", "strlen", "strstr", "malloc", "free", "puts", "exit"];

/// 60 'A's: strcpy'ing it (61 bytes with the NUL) into an 8-byte chunk
/// is the canonical out-of-bounds write.
const LONG: &str = "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA";

fn victim_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
    // (1) Out-of-bounds write: suppressed, measured, attributed.
    let dest = s.malloc(8)?;
    let long = s.literal(LONG);
    s.call("strcpy", &[CVal::Ptr(dest), CVal::Ptr(long)])?;
    // (2) NULL CStr scan: reads as a manufactured empty string.
    let n = s.call("strlen", &[CVal::NULL])?;
    if n != CVal::Int(0) {
        return Ok(1);
    }
    // (3) Contract-derived default: strstr is NULL-tolerant by contract,
    // so its pointer return is a manufactured (tainted) empty string...
    let needle = s.literal("x");
    let hit = s.call("strstr", &[CVal::NULL, CVal::Ptr(needle)])?;
    let CVal::Ptr(p) = hit else { return Ok(2) };
    if p.is_null() {
        return Ok(3);
    }
    // ...(4) whose downstream consumption is a recorded tainted use.
    let n = s.call("strlen", &[hit])?;
    if n != CVal::Int(0) {
        return Ok(4);
    }
    s.call("exit", &[CVal::Int(0)])?;
    unreachable!()
}

fn victim() -> Executable {
    Executable::new(
        "obl-victim",
        &["libsimc.so.1"],
        &["strcpy", "strlen", "strstr", "malloc", "free", "puts", "exit"],
        victim_entry,
    )
}

/// Builds the oblivious healing wrapper; `collector` decides whether an
/// exit document ships.
fn oblivious_wrapper(
    toolkit: &Toolkit,
    collector: Option<healers::profiler::Collector>,
) -> WrapperLibrary {
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| FUNCS.contains(&t.name.as_str()))
        .collect();
    let campaign = run_campaign(
        "libsimc.so.1",
        &targets,
        process_factory,
        &CampaignConfig { pair_values: 4, fuel: 300_000, ..CampaignConfig::default() },
    );
    toolkit.generate_healing_wrapper(
        &campaign.api,
        &WrapperConfig {
            app_name: "obl-victim".into(),
            collector,
            policy: Some(PolicyEngine::new(Policy::Oblivious)),
            oblivious_null_defaults: vec!["strstr".into()],
            ..WrapperConfig::default()
        },
    )
}

#[test]
fn oblivious_mode_survives_the_victim_with_a_full_audit_trail() {
    let toolkit = Toolkit::new();
    let server = CollectionServer::start();
    let wrapper = oblivious_wrapper(&toolkit, Some(server.collector()));

    let out = toolkit.run_protected(&victim(), &[&wrapper]).unwrap();
    assert_eq!(out.status, Ok(0), "{:?}", out.status);

    // The ledger attributes each kind of absorption.
    let snap = wrapper.oblivious.as_ref().expect("oblivious wrapper carries an audit");
    let snap = snap.snapshot();
    assert_eq!(snap.dropped, 0, "{snap:?}");
    let w = snap
        .writes
        .iter()
        .find(|w| w.func == "strcpy")
        .expect("suppressed strcpy write on the ledger");
    assert_eq!(w.attempted, LONG.len() as u64 + 1, "60 chars + NUL: {w:?}");
    assert!(w.object_extent >= 8, "attributed to the real 8-byte chunk: {w:?}");
    assert_eq!(w.addr, w.object_base, "write starts at the chunk base: {w:?}");
    assert!(w.clipped > 0 && w.clipped < w.attempted, "{w:?}");
    assert!(
        snap.reads.iter().any(|r| r.func == "strlen"),
        "NULL scan is a manufactured read: {snap:?}"
    );
    assert!(
        snap.reads.iter().any(|r| r.func == "strstr" && r.role == "contract-default"),
        "contract-derived default recorded: {snap:?}"
    );
    assert!(
        snap.uses.iter().any(|u| u.func == "strlen"),
        "downstream consumption of the tainted value recorded: {snap:?}"
    );

    // Every absorption is journaled as Obliviated.
    let events = wrapper.journal.snapshot();
    let obliviated = events.iter().filter(|e| e.action == HealAction::Obliviated).count();
    assert!(
        obliviated >= snap.reads.len() + snap.writes.len(),
        "no silent absorption: {obliviated} journal events for {} ledger entries",
        snap.reads.len() + snap.writes.len()
    );

    // The exit document carries the <oblivious> section.
    let collected = server.shutdown();
    assert_eq!(collected.submissions.len(), 1);
    let doc = &collected.submissions[0].document;
    assert!(doc.contains("<oblivious "), "{doc}");
    assert!(doc.contains("<write function=\"strcpy\""), "{doc}");
    assert!(doc.contains("<read function=\"strlen\""), "{doc}");
    assert!(doc.contains("<use function=\"strlen\""), "{doc}");
}

#[test]
fn same_seed_oblivious_runs_ship_byte_identical_documents() {
    let run = || {
        let toolkit = Toolkit::new();
        let server = CollectionServer::start();
        let wrapper = oblivious_wrapper(&toolkit, Some(server.collector()));
        let out = toolkit.run_protected(&victim(), &[&wrapper]).unwrap();
        assert_eq!(out.status, Ok(0), "{:?}", out.status);
        let collected = server.shutdown();
        assert_eq!(collected.submissions.len(), 1);
        collected.submissions[0].document.clone()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "the audited availability mode must be deterministic");
}
