//! The second classic heap attack of the era: double free. Freeing a
//! chunk twice re-inserts it into the free list it is already on,
//! corrupting the list so a later `malloc`/`free` follows attacker-
//! influenced links. The wrappers derived from the campaign stop it:
//! the robust `free` contract (`NULL or live heap chunk`) rejects the
//! second free, and the security wrapper's registry does the same.

use healers::injector::{
    run_campaign, run_cross_thread_quorum, targets_from_simlibc, CampaignConfig,
    CrossThreadFault, Outcome,
};
use healers::interpose::{Executable, Session};
use healers::simproc::{CVal, Fault};
use healers::{
    process_factory, HealAction, Policy, PolicyEngine, Toolkit, WrapperConfig, WrapperKind,
};

fn wrappers() -> (healers::WrapperLibrary, healers::WrapperLibrary) {
    let toolkit = Toolkit::new();
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| ["malloc", "free", "exit", "puts"].contains(&t.name.as_str()))
        .collect();
    let campaign = run_campaign(
        "libsimc.so.1",
        &targets,
        process_factory,
        &CampaignConfig { pair_values: 4, fuel: 300_000, ..CampaignConfig::default() },
    );
    (
        toolkit.generate_wrapper(
            WrapperKind::Robustness,
            &campaign.api,
            &WrapperConfig::default(),
        ),
        toolkit.generate_wrapper(
            WrapperKind::Security,
            &campaign.api,
            &WrapperConfig::default(),
        ),
    )
}

fn double_free_entry(s: &mut Session<'_>) -> Result<i32, Fault> {
    let a = s.malloc(48)?;
    let _pin = s.malloc(16)?;
    s.call("free", &[CVal::Ptr(a)])?;
    s.call("free", &[CVal::Ptr(a)])?; // the bug
                                      // Follow-up traffic that walks the corrupted free list.
    let b = s.call("malloc", &[CVal::Int(48)])?;
    let c = s.call("malloc", &[CVal::Int(48)])?;
    // Classic symptom: the same chunk handed out twice.
    if b == c {
        let msg = s.literal("allocator handed out one chunk twice");
        s.call("puts", &[CVal::Ptr(msg)])?;
    }
    Ok(if b == c { 99 } else { 0 })
}

fn victim() -> Executable {
    Executable::new(
        "dfree",
        &["libsimc.so.1"],
        &["malloc", "free", "puts", "exit"],
        double_free_entry,
    )
}

#[test]
fn double_free_corrupts_the_bare_allocator() {
    let toolkit = Toolkit::new();
    let out = toolkit.run(&victim()).unwrap();
    // The bare allocator either hands out the same chunk twice (silent
    // corruption an attacker exploits) or dies in the list walk.
    match out.status {
        Ok(99) => {} // duplicate allocation observed
        Ok(other) => panic!("expected corruption, got clean exit {other}"),
        Err(_) => {} // or it crashed/hung — also a failure
    }
}

#[test]
fn robustness_wrapper_rejects_the_second_free() {
    let (robust, _) = wrappers();
    let toolkit = Toolkit::new();
    let out = toolkit.run_protected(&victim(), &[&robust]).unwrap();
    // The second free violates `NULL or live heap chunk` and is turned
    // into a no-op error; the allocator stays intact.
    assert_eq!(out.status, Ok(0), "{:?}", out.status);
}

/// The oblivious soundness contract: under `Policy::Oblivious` the
/// double free is absorbed — the process keeps running and the
/// allocator stays intact — but **never silently**. The skipped free is
/// a suppressed write on the audit ledger, attributed to the function,
/// and journaled as `Obliviated`.
#[test]
fn oblivious_wrapper_absorbs_the_double_free_on_the_audit_record() {
    let targets: Vec<_> = targets_from_simlibc()
        .into_iter()
        .filter(|t| ["malloc", "free", "exit", "puts"].contains(&t.name.as_str()))
        .collect();
    let campaign = run_campaign(
        "libsimc.so.1",
        &targets,
        process_factory,
        &CampaignConfig { pair_values: 4, fuel: 300_000, ..CampaignConfig::default() },
    );
    let toolkit = Toolkit::new();
    let oblivious = toolkit.generate_healing_wrapper(
        &campaign.api,
        &WrapperConfig {
            policy: Some(PolicyEngine::new(Policy::Oblivious)),
            ..WrapperConfig::default()
        },
    );

    let out = toolkit.run_protected(&victim(), &[&oblivious]).unwrap();
    // The second free is suppressed, so the free list never corrupts and
    // malloc never hands out one chunk twice (exit code 99).
    assert_eq!(out.status, Ok(0), "{:?}", out.status);

    let snap = oblivious.oblivious.as_ref().expect("audit attached").snapshot();
    assert_eq!(snap.dropped, 0, "{snap:?}");
    assert!(
        snap.writes.iter().any(|w| w.func == "free"),
        "the skipped free must be a suppressed write on the ledger: {snap:?}"
    );
    let events = oblivious.journal.snapshot();
    let obliviated: Vec<_> =
        events.iter().filter(|e| e.action == HealAction::Obliviated).collect();
    assert!(
        obliviated.iter().any(|e| e.func == "free"),
        "the absorption must be journaled, never silent: {events:?}"
    );
    assert!(
        obliviated.len() >= snap.reads.len() + snap.writes.len(),
        "every ledger entry has a journal record: {} events, {} entries",
        obliviated.len(),
        snap.reads.len() + snap.writes.len()
    );
}

/// The threaded variant of the same bug: two simulated threads sharing
/// one heap race `free` on one chunk. Under the outcome-quorum
/// discipline every seed (= pinned interleaving) must replay to the
/// identical verdict — never `Flaky` — and at least one interleaving
/// must corrupt the bare allocator, which is what the server's wrapper
/// has to contain.
#[test]
fn racing_cross_thread_double_free_has_a_deterministic_quorum_verdict() {
    let config = CampaignConfig { fuel: 300_000, quorum: 2, ..CampaignConfig::default() };
    let mut corrupting_seeds = 0;
    for seed in 0..10 {
        let first = run_cross_thread_quorum(
            CrossThreadFault::RacingDoubleFree,
            process_factory,
            seed,
            &config,
        );
        let replay = run_cross_thread_quorum(
            CrossThreadFault::RacingDoubleFree,
            process_factory,
            seed,
            &config,
        );
        assert_eq!(
            first.outcome, replay.outcome,
            "seed {seed}: a pinned thread schedule must replay identically"
        );
        assert_ne!(
            first.outcome,
            Outcome::Flaky,
            "seed {seed}: quorum disagreement means nondeterminism in the substrate"
        );
        if first.outcome.is_failure() {
            corrupting_seeds += 1;
        }
    }
    assert!(corrupting_seeds > 0, "some interleaving must corrupt the bare allocator");
}

/// The wrapped counterpart, at server scale: the security wrapper turns
/// every racing double-free in the adversarial request mix into a
/// contained request — the server loses nothing and the verdict
/// (the full canonical report) is deterministic across replays.
#[test]
fn server_contains_racing_double_frees_deterministically() {
    let config = healers::ServerConfig {
        workers: 4,
        requests: 3_000,
        ..healers::ServerConfig::default()
    };
    let first = healers::run_server_sim(&config);
    let replay = healers::run_server_sim(&config);
    assert_eq!(first.lost, 0, "{first:?}");
    assert_eq!(first.faulted, 0, "every attack must be contained: {first:?}");
    assert!(first.contained > 0, "the racing frees must be exercised: {first:?}");
    assert_eq!(first.canonical, replay.canonical, "verdict must replay identically");
}

#[test]
fn security_wrapper_registry_also_stops_it() {
    let (_, secure) = wrappers();
    let toolkit = Toolkit::new();
    let out = toolkit.run_protected(&victim(), &[&secure]).unwrap();
    // The first free releases the registration; the second is caught by
    // the Terminate-mode contract check.
    assert!(
        matches!(out.status, Err(Fault::SecurityViolation { .. })) || out.status == Ok(0),
        "{:?}",
        out.status
    );
    assert_ne!(out.status, Ok(99), "no duplicate chunk under the wrapper");
}
